//! The CLI's subcommand implementations, kept separate from argument
//! handling so they are directly testable.

use std::fmt::Write as _;

use stencil_core::{
    verify_plan, MappingPolicy, MemorySystemPlan, ModuloSchedulePlan, ReuseAnalysis, StencilSpec,
};
use stencil_engine::{
    max_rel_error, pack_grid, CompiledKernel, Datapath, ExecMode, InputGrid, KernelBackend,
    MappedGrid, MmapSink, MmapSource, Session, SessionKernel, SliceSource, VecSink,
};
use stencil_fpga::{estimate_nonuniform, estimate_uniform};
use stencil_kernels::{KernelExpr, KernelOps, KernelStage};
use stencil_sim::{trace_to_vcd, Machine};
use stencil_telemetry::{validate_report, MetricsReport};
use stencil_uniform::{best_uniform, multidim_cyclic, survey, unpartitioned};

/// A command error: human-readable message, exit-code 1 semantics.
pub type CmdError = Box<dyn std::error::Error + Send + Sync>;

/// Relative tolerance for f32-vs-f64 verification of the spec-file
/// window-sum datapath — the same default bound `Benchmark::f32_rtol`
/// uses for shallow dataflow graphs.
const F32_VERIFY_RTOL: f64 = 1e-5;

/// `stencil plan`: generate and verify the memory system; render the
/// Table 2-style report.
///
/// # Errors
///
/// Propagates planning/analysis failures.
pub fn cmd_plan(spec: &StencilSpec) -> Result<String, CmdError> {
    let analysis = ReuseAnalysis::of(spec)?;
    let plan = MemorySystemPlan::generate(spec)?;
    let report = verify_plan(&plan, &analysis);
    let mut out = String::new();
    let _ = writeln!(out, "{plan}");
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "linearity of max reuse distances holds: {}",
        analysis.linearity_holds()
    );
    match ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default()) {
        Ok(m) => {
            let _ = writeln!(
                out,
                "modulo-scheduled alternative: feasible ({} banks, delays {:?})",
                m.bank_count(),
                m.delays()
            );
        }
        Err(e) => {
            let _ = writeln!(out, "modulo-scheduled alternative: infeasible ({e})");
        }
    }
    Ok(out)
}

/// `stencil simulate`: run the design cycle-accurately, check the
/// paper's bounds against the live counters, and optionally emit a VCD
/// of the first `trace_cycles` cycles. The third result element is the
/// telemetry report as JSON (for `--metrics-out`); the fourth is the
/// validator's violation count, which drives the process exit code.
///
/// # Errors
///
/// Propagates planning and simulation failures.
pub fn cmd_simulate(
    spec: &StencilSpec,
    streams: usize,
    trace_cycles: usize,
) -> Result<(String, Option<String>, String, usize), CmdError> {
    let plan = MemorySystemPlan::generate(spec)?.with_offchip_streams(streams)?;
    let mut machine = Machine::new(&plan)?;
    machine.enable_occupancy_sampling();
    if trace_cycles > 0 {
        machine.enable_trace(0, trace_cycles);
    }
    let stats = machine.run(1_u64 << 34)?;
    let mut out = String::new();
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(
        out,
        "bandwidth-limited: {} (ideal {} cycles)",
        stats.fully_pipelined(),
        stats.ideal_cycles
    );
    let mut report = MetricsReport::new(spec.name());
    report.machine = Some(machine.metrics());
    let violations = append_bound_checks(&mut out, &report);
    let vcd = machine
        .trace(0)
        .filter(|t| !t.is_empty())
        .map(|t| trace_to_vcd(t, spec.name(), 5.0));
    Ok((out, vcd, report.to_json(), violations))
}

/// Renders the validator's verdict on a telemetry report and returns
/// the violation count (the CLI exits non-zero when it is positive).
fn append_bound_checks(out: &mut String, report: &MetricsReport) -> usize {
    let violations = validate_report(report);
    if violations.is_empty() {
        let _ = writeln!(out, "runtime bound checks: all passed");
    } else {
        let _ = writeln!(out, "runtime bound checks: {} FAILED", violations.len());
        for v in &violations {
            let _ = writeln!(out, "  violation: {v}");
        }
    }
    violations.len()
}

/// `stencil engine`: execute the kernel through the unified [`Session`]
/// layer on a deterministic input grid, cross-check the result against
/// a direct nested-loop evaluation, and report throughput per band.
/// With `streaming`, additionally run the bounded-memory streaming mode
/// (band height `chunk_rows`) and verify it bit-exact against the
/// in-core run. With `chain`, append one temporally chained stage per
/// name and verify the pipeline against running the stages
/// sequentially. With `iterate`, apply the kernel to its own output for
/// the requested number of time steps as a self-chained ring and verify
/// it against sequential materialized runs — or, with `epsilon`, stop
/// early once the per-step max-abs delta falls under the threshold. The
/// second result element is the telemetry report as JSON (for
/// `--metrics-out`); the third is the validator's violation count,
/// which drives the exit code.
///
/// With `input_grid`, the input values come from a packed `.sgrid`
/// file instead of the deterministic generator: the file is
/// memory-mapped ([`MappedGrid`]) and both the in-core run and the
/// streaming run read the mapping directly — the streaming path pulls
/// zero payload copies, which the session's grid-io telemetry records.
/// With `output_grid` (streaming only), output rows are written
/// straight into a pre-sized mapped `.sgrid` file ([`MmapSink`]) and
/// the file is re-opened afterwards to verify it bit-exact against the
/// in-core outputs.
///
/// The datapath is the spec-file fallback (plain window sum), since a
/// spec file carries window geometry but no arithmetic. With
/// `backend == Compiled` (the default) the sum is authored as a
/// [`KernelExpr`], compiled to stack bytecode validated against the
/// closure, and executed through the vectorized row sweep; `Closure`
/// keeps the original per-window call. `unroll` sets the compiled
/// sweep's outputs-per-dispatch; `datapath` its arithmetic width — f32
/// runs always route through the compiled expression (the raw closure
/// cannot narrow), and the direct-loop verification switches from
/// bit-exact to a relative-tolerance bound. `crosscheck` runs *both*
/// backends and demands bit-identical outputs on the f64 datapath, or
/// agreement within the f32 tolerance otherwise.
///
/// # Errors
///
/// Propagates planning and engine failures, and reports any mismatch
/// against the direct loop or between the two execution paths.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn cmd_engine(
    spec: &StencilSpec,
    streams: usize,
    tiles: Option<usize>,
    threads: usize,
    streaming: bool,
    chunk_rows: Option<u64>,
    backend: KernelBackend,
    unroll: usize,
    datapath: Datapath,
    crosscheck: bool,
    chain: &[String],
    iterate: Option<usize>,
    epsilon: Option<f64>,
    input_grid: Option<&std::path::Path>,
    output_grid: Option<&std::path::Path>,
) -> Result<(String, String, usize), CmdError> {
    if iterate.is_some() && !chain.is_empty() {
        return Err("--iterate cannot be combined with --chain; \
                    the ring is already a temporal chain of the kernel with itself"
            .into());
    }
    if datapath == Datapath::F32 && (!chain.is_empty() || iterate.is_some()) {
        return Err(
            "--datapath f32 cannot be combined with --chain or --iterate; \
                    their sequential references are defined bit-exactly on f64"
                .into(),
        );
    }
    if output_grid.is_some() && !streaming {
        return Err("--output-grid needs --streaming; only the streaming \
                    path writes rows through a mapped sink"
            .into());
    }
    let plan = MemorySystemPlan::generate(spec)?.with_offchip_streams(streams)?;
    let in_idx = plan.input_domain().index()?;

    // Input values: a memory-mapped `.sgrid` file when given, otherwise
    // deterministic pseudo-random values in rank order.
    let mapped_input = match input_grid {
        Some(path) => {
            let grid = MappedGrid::open(path)
                .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
            let bb = in_idx
                .bounding_box()
                .ok_or("the plan's input domain is empty")?;
            let want: Vec<u64> = bb.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).collect();
            if grid.header().extents() != want.as_slice() {
                return Err(format!(
                    "{}: grid extents {:?} do not match the plan's input domain extents {want:?}",
                    path.display(),
                    grid.header().extents(),
                )
                .into());
            }
            Some(grid)
        }
        None => None,
    };
    let generated: Vec<f64>;
    let in_vals: &[f64] = if let Some(grid) = &mapped_input {
        grid.values()
    } else {
        let mut state = 0x5EED_BA5E_D00Du64;
        generated = (0..in_idx.len())
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005u64)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f64) / 256.0
            })
            .collect();
        &generated
    };
    let input = InputGrid::new(&in_idx, in_vals)?;
    let compute = stencil_kernels::default_compute();

    // The spec-file datapath as an expression: compile it to bytecode,
    // validated bit-for-bit against the closure it mirrors.
    let kernel = CompiledKernel::compile_checked(
        &KernelExpr::window_sum(spec.window_size()),
        spec.window_size(),
        &compute,
    )?;

    let mode = match tiles {
        None => ExecMode::InCore,
        Some(n) => ExecMode::Tiled { tiles: n },
    };
    // f32 always routes through the compiled expression: under the
    // Closure backend it runs the scalar f32 bytecode, so both backends
    // stay available for cross-checking at either width.
    let session_kernel = match (backend, datapath) {
        (KernelBackend::Compiled, _) | (_, Datapath::F32) => SessionKernel::Compiled(&kernel),
        (KernelBackend::Closure, Datapath::F64) => SessionKernel::Closure(&compute),
    };
    let run = Session::new(&plan)
        .kernel(session_kernel)
        .backend(backend)
        .unroll(unroll)
        .datapath(datapath)
        .mode(mode)
        .threads(threads)
        .run(&input)?;
    let engine_report = run.report.stages[0]
        .engine
        .clone()
        .ok_or("session produced no in-core stage report")?;

    // Cross-check against a direct nested loop in declared offset
    // order. The reference always computes in f64; the f64 datapath
    // must reproduce it bit for bit, the f32 datapath within the
    // relative tolerance.
    let iter_idx = spec.iteration_domain().index()?;
    let mut expected = Vec::with_capacity(run.outputs.len());
    let mut cur = iter_idx.cursor();
    let mut window = vec![0.0; spec.window_size()];
    while let Some(p) = cur.point(&iter_idx) {
        for (slot, off) in window.iter_mut().zip(spec.offsets()) {
            *slot = input
                .value_at(&(p + *off))
                .ok_or_else(|| format!("input domain misses {:?}", p + *off))?;
        }
        expected.push(compute(&window));
        cur.advance(&iter_idx);
    }
    let rank = expected.len();
    let verify_line = match datapath {
        Datapath::F64 => {
            if let Some(k) = (0..rank).find(|&k| run.outputs[k] != expected[k]) {
                return Err(format!(
                    "engine mismatch at output rank {k}: got {}, direct loop says {}",
                    run.outputs[k], expected[k]
                )
                .into());
            }
            format!("verified against direct loop: {rank} outputs match")
        }
        Datapath::F32 => {
            let err = max_rel_error(&run.outputs, &expected);
            if err > F32_VERIFY_RTOL {
                return Err(format!(
                    "f32 engine drifted from the f64 direct loop: \
                     max rel error {err:.3e} exceeds tolerance {F32_VERIFY_RTOL:.1e}"
                )
                .into());
            }
            format!(
                "verified against f64 direct loop: {rank} outputs within \
                 {F32_VERIFY_RTOL:.1e} (max rel error {err:.3e})"
            )
        }
    };

    let mut out = String::new();
    let _ = write!(out, "{engine_report}");
    let _ = writeln!(
        out,
        "fetch overhead vs single band: {:.3}x",
        engine_report.fetch_overhead(in_idx.len())
    );
    let _ = writeln!(out, "{verify_line}");
    let mut report = MetricsReport::new(spec.name());
    report.engine = Some(engine_report.metrics());

    if crosscheck {
        // Run the *other* backend over the same plan. On f64 the
        // backends must agree bit for bit; on f32 the unrolled lane
        // program and the scalar f32 bytecode are compared within the
        // verification tolerance.
        let other_backend = match backend {
            KernelBackend::Compiled => KernelBackend::Closure,
            KernelBackend::Closure => KernelBackend::Compiled,
        };
        let other_kernel = match (other_backend, datapath) {
            (KernelBackend::Compiled, _) | (_, Datapath::F32) => SessionKernel::Compiled(&kernel),
            (KernelBackend::Closure, Datapath::F64) => SessionKernel::Closure(&compute),
        };
        let other = Session::new(&plan)
            .kernel(other_kernel)
            .backend(other_backend)
            .unroll(unroll)
            .datapath(datapath)
            .mode(mode)
            .threads(threads)
            .run(&input)?;
        match datapath {
            Datapath::F64 => {
                if other.outputs != run.outputs {
                    return Err("cross-check failed: compiled and closure backends diverge".into());
                }
                let _ = writeln!(
                    out,
                    "cross-check compiled vs closure: {} outputs bit-identical",
                    run.outputs.len()
                );
            }
            Datapath::F32 => {
                let err = max_rel_error(&run.outputs, &other.outputs);
                if err > F32_VERIFY_RTOL {
                    return Err(format!(
                        "f32 cross-check failed: backends diverge by max rel error \
                         {err:.3e} (tolerance {F32_VERIFY_RTOL:.1e})"
                    )
                    .into());
                }
                let _ = writeln!(
                    out,
                    "cross-check compiled vs closure (f32): {} outputs within \
                     {F32_VERIFY_RTOL:.1e} (max rel error {err:.3e})",
                    run.outputs.len()
                );
            }
        }
    }

    if streaming {
        // Mapped inputs stream straight off the page cache; plain runs
        // keep the in-memory slice source.
        let mut source: Box<dyn stencil_engine::RowSource> = match &mapped_input {
            Some(grid) => Box::new(MmapSource::from_grid(grid.clone())),
            None => Box::new(SliceSource::new(in_vals)),
        };
        let session = Session::new(&plan)
            .kernel(session_kernel)
            .backend(backend)
            .unroll(unroll)
            .datapath(datapath)
            .mode(ExecMode::Streaming { chunk_rows })
            .threads(threads);
        let stream = match output_grid {
            Some(path) => {
                let out_bb = iter_idx
                    .bounding_box()
                    .ok_or("the iteration domain is empty")?;
                let out_extents: Vec<u64> = out_bb
                    .iter()
                    .map(|&(lo, hi)| (hi - lo + 1) as u64)
                    .collect();
                let mut sink = MmapSink::create(path, &out_extents)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
                let stream = session.run_streaming(&mut source, &mut sink)?;
                // Re-open the finished file: the bytes on disk, not the
                // in-flight buffer, must match the in-core run.
                let written = MappedGrid::open(path)?;
                if written.values() != run.outputs.as_slice() {
                    return Err(format!(
                        "{}: streamed output grid diverged from the in-core run",
                        path.display()
                    )
                    .into());
                }
                let _ = writeln!(
                    out,
                    "output grid written to {} ({} values, verified bit-exact)",
                    path.display(),
                    written.values().len()
                );
                stream
            }
            None => {
                let mut sink = VecSink::new();
                let stream = session.run_streaming(&mut source, &mut sink)?;
                if sink.values != run.outputs {
                    return Err("streaming run diverged from the in-core run".into());
                }
                let _ = writeln!(
                    out,
                    "verified streaming against in-core: {} outputs match",
                    sink.values.len()
                );
                stream
            }
        };
        let stream_report = stream.stages[0]
            .stream
            .clone()
            .ok_or("session produced no streaming stage report")?;
        let _ = write!(out, "{stream_report}");
        if let Some(io) = &stream.grid_io {
            let _ = writeln!(out, "{io}");
        }
        report.stream = Some(stream_report.metrics());
        if mapped_input.is_some() || output_grid.is_some() {
            // Surface the grid-io block so the validator can check it.
            report.session = Some(stream.metrics());
        }
    }

    if !chain.is_empty() {
        let (chain_out, session_metrics) = run_chain(
            &plan,
            &input,
            spec,
            session_kernel,
            backend,
            unroll,
            threads,
            streaming,
            chunk_rows,
            chain,
        )?;
        out.push_str(&chain_out);
        report.session = Some(session_metrics);
    }

    if let Some(steps) = iterate {
        let (iter_out, session_metrics) = run_iterate(
            &plan,
            &input,
            spec,
            session_kernel,
            backend,
            unroll,
            threads,
            streaming,
            chunk_rows,
            steps,
            epsilon,
        )?;
        out.push_str(&iter_out);
        report.session = Some(session_metrics);
    }

    let violations = append_bound_checks(&mut out, &report);
    Ok((out, report.to_json(), violations))
}

/// Runs the iterated time-stepping ring for `cmd_engine`: the spec's
/// kernel applied to its own output for `steps` time steps through
/// [`Session::iterate`], verified bit-exact against folding the grid
/// through one materialized single-step run per time step. With
/// `epsilon`, runs [`Session::iterate_until`] instead and reports
/// whether the per-step max-abs delta converged within the step budget
/// (the spec-file window-sum datapath is expansive, so expect
/// convergence only for loose thresholds).
#[allow(clippy::too_many_arguments)]
fn run_iterate(
    plan: &MemorySystemPlan,
    input: &InputGrid<'_>,
    spec: &StencilSpec,
    session_kernel: SessionKernel<'_>,
    backend: KernelBackend,
    unroll: usize,
    threads: usize,
    streaming: bool,
    chunk_rows: Option<u64>,
    steps: usize,
    epsilon: Option<f64>,
) -> Result<(String, stencil_telemetry::SessionMetrics), CmdError> {
    let mut out = String::new();

    if let Some(eps) = epsilon {
        let run = Session::new(plan)
            .kernel(session_kernel)
            .backend(backend)
            .unroll(unroll)
            .threads(threads)
            .iterate_until(input, eps, steps)?;
        let it = run
            .report
            .iterate
            .clone()
            .ok_or("iterate_until produced no iterate report")?;
        let _ = write!(out, "{}", run.report);
        let _ = writeln!(
            out,
            "convergence: {} after {} of {} step(s) (epsilon {eps}, final delta {:.6e})",
            if it.converged {
                "reached"
            } else {
                "NOT reached"
            },
            it.steps,
            it.max_steps,
            it.final_delta
        );
        return Ok((out, run.report.metrics()));
    }

    let mode = if streaming {
        ExecMode::Streaming { chunk_rows }
    } else {
        ExecMode::InCore
    };
    let session = Session::new(plan)
        .kernel(session_kernel)
        .backend(backend)
        .unroll(unroll)
        .mode(mode)
        .threads(threads)
        .iterate(steps)?;
    let planned_bound = streaming
        .then(|| session.planned_residency_bound(chunk_rows))
        .transpose()?;
    let run = session.run(input)?;

    // Sequential reference: fold the grid through one materialized
    // single-step run per time step — each step is a self-chained stage
    // over the spec's own window.
    let compute = stencil_kernels::default_compute();
    let step_stages: Vec<KernelStage> = (1..steps)
        .map(|k| {
            KernelStage::new(
                format!("{}@t{}", plan.name(), k + 1),
                spec.offsets().to_vec(),
                compute,
            )
        })
        .collect();
    let first = Session::new(plan)
        .kernel(session_kernel)
        .backend(backend)
        .run(input)?
        .outputs;
    if run.outputs != sequential_fold(plan, first, &step_stages)? {
        return Err("iterated ring diverged from sequential time steps".into());
    }

    let _ = write!(out, "{}", run.report);
    if let Some(bound) = planned_bound {
        let _ = writeln!(
            out,
            "iterate residency: peak {} values, planned bound {bound}",
            run.report.peak_resident
        );
        if run.report.peak_resident > bound {
            return Err(format!(
                "iterate peak residency {} exceeds the planned bound {bound}",
                run.report.peak_resident
            )
            .into());
        }
    }
    let _ = writeln!(
        out,
        "verified iterate({steps}) against sequential time steps: {} outputs match",
        run.outputs.len()
    );
    Ok((out, run.report.metrics()))
}

/// Folds a materialized grid through one single-stage closure session
/// per chained stage, deriving each stage's eroded plan with
/// [`MemorySystemPlan::chain_next`] from that stage's *own* window.
/// Both `--chain` and `--iterate` verify their fused pipelines
/// bit-exactly against this reference.
fn sequential_fold(
    plan: &MemorySystemPlan,
    seed: Vec<f64>,
    stages: &[KernelStage],
) -> Result<Vec<f64>, CmdError> {
    let mut cur_plan = plan.clone();
    let mut cur = seed;
    for stage in stages {
        let next = cur_plan.chain_next(stage.name(), stage.window())?;
        let idx = next.input_domain().index()?;
        let grid = InputGrid::new(&idx, &cur)?;
        let f = stage.compute_fn();
        cur = Session::new(&next)
            .kernel(SessionKernel::Closure(&f))
            .run(&grid)?
            .outputs;
        cur_plan = next;
    }
    Ok(cur)
}

/// Runs the temporally chained pipeline for `cmd_engine`: one stage per
/// name in `chain` appended after the spec's kernel, executed through
/// [`Session::then`] in the requested mode, and verified bit-exact
/// against running the stages sequentially with a materialized
/// intermediate grid between each pair. A chain name that matches a
/// suite benchmark (e.g. `blur3x3`) brings that benchmark's own window
/// and datapath, so stages may be heterogeneous; other names fall back
/// to the spec's window with the window-sum datapath.
#[allow(clippy::too_many_arguments)]
fn run_chain(
    plan: &MemorySystemPlan,
    input: &InputGrid<'_>,
    spec: &StencilSpec,
    session_kernel: SessionKernel<'_>,
    backend: KernelBackend,
    unroll: usize,
    threads: usize,
    streaming: bool,
    chunk_rows: Option<u64>,
    chain: &[String],
) -> Result<(String, stencil_telemetry::SessionMetrics), CmdError> {
    let compute = stencil_kernels::default_compute();
    // A chain name naming a suite benchmark chains that benchmark's own
    // window and datapath (heterogeneous chains like
    // `--chain denoise,blur3x3`); any other name reuses the spec's
    // window with the spec-file window-sum datapath, where compiled
    // backends get the expression form so chained stages sweep too.
    let stages: Vec<KernelStage> = chain
        .iter()
        .map(|name| match stencil_kernels::find_benchmark(name) {
            Some(bench) => bench.stage(),
            None => {
                let stage = KernelStage::new(name.clone(), spec.offsets().to_vec(), compute);
                match backend {
                    KernelBackend::Compiled => {
                        stage.with_expr(KernelExpr::window_sum(spec.window_size()))
                    }
                    KernelBackend::Closure => stage,
                }
            }
        })
        .collect();

    let mode = if streaming {
        ExecMode::Streaming { chunk_rows }
    } else {
        ExecMode::InCore
    };
    let mut session = Session::new(plan)
        .kernel(session_kernel)
        .backend(backend)
        .unroll(unroll)
        .mode(mode)
        .threads(threads);
    for stage in &stages {
        session = session.then(stage)?;
    }
    let planned_bound = session.planned_residency_bound(chunk_rows)?;
    let run = session.run(input)?;

    // Sequential reference: fold the grid through one single-stage
    // session per chained kernel, materializing every intermediate.
    let first = Session::new(plan)
        .kernel(session_kernel)
        .backend(backend)
        .run(input)?
        .outputs;
    if run.outputs != sequential_fold(plan, first, &stages)? {
        return Err("chained pipeline diverged from sequential stage execution".into());
    }

    let mut out = String::new();
    let _ = write!(out, "{}", run.report);
    let _ = writeln!(
        out,
        "chained residency: peak {} values, planned bound {}",
        run.report.peak_resident, planned_bound
    );
    let _ = writeln!(
        out,
        "stage backends: {}",
        run.report
            .stages
            .iter()
            .map(|s| format!("{}={}", s.label, s.backend))
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    let _ = writeln!(
        out,
        "verified chained pipeline against sequential stages: {} outputs match",
        run.outputs.len()
    );
    if run.report.peak_resident > planned_bound {
        return Err(format!(
            "chained peak residency {} exceeds the planned bound {planned_bound}",
            run.report.peak_resident
        )
        .into());
    }
    Ok((out, run.report.metrics()))
}

/// `stencil rtl`: generate the Verilog bundle.
///
/// # Errors
///
/// Propagates planning and RTL-generation failures.
pub fn cmd_rtl(spec: &StencilSpec) -> Result<stencil_rtl::RtlBundle, CmdError> {
    let plan = MemorySystemPlan::generate(spec)?;
    let bundle = stencil_rtl::generate(&plan)?;
    let problems = bundle.lint();
    if !problems.is_empty() {
        return Err(format!("generated RTL failed lint: {problems:?}").into());
    }
    Ok(bundle)
}

/// `stencil compare`: ours vs the best uniform partitioning, with
/// resource estimates.
///
/// # Errors
///
/// Propagates planning failures.
pub fn cmd_compare(spec: &StencilSpec, extents: &[i64]) -> Result<String, CmdError> {
    let plan = MemorySystemPlan::generate(spec)?;
    let base = best_uniform(spec.offsets(), extents);
    let orig = unpartitioned(spec.offsets(), extents);
    let ops = KernelOps::default();
    let ours_est = estimate_nonuniform(&plan, ops);
    let base_est = estimate_uniform(
        &base,
        spec.window_size(),
        spec.element_bits(),
        spec.iteration_domain(),
        ops,
    );
    let mut out = String::new();
    if let Some(art) = stencil_polyhedral::render_window(spec.offsets()) {
        out.push_str(&art);
    }
    let _ = writeln!(out, "original (1 bank):      II = {}", orig.ii);
    for r in survey(spec.offsets(), extents) {
        let _ = writeln!(out, "  {r}");
    }
    let _ = writeln!(
        out,
        "best uniform:           {} banks, size {}, {}",
        base.banks, base.total_size, base_est
    );
    let _ = writeln!(
        out,
        "non-uniform (ours):     {} banks, size {}, {}",
        plan.bank_count(),
        plan.total_buffer_size(),
        ours_est
    );
    let _ = writeln!(
        out,
        "savings: {} bank(s), {} buffer elements, {} BRAM18K",
        base.banks - plan.bank_count(),
        base.total_size - plan.total_buffer_size(),
        base_est.bram18k.saturating_sub(ours_est.bram18k),
    );
    Ok(out)
}

/// `stencil suite`: the paper's benchmark suite summary — Table 4's
/// partitioning columns plus Table 5's resource estimates, in one view.
///
/// # Errors
///
/// Propagates planning failures.
pub fn cmd_suite() -> Result<String, CmdError> {
    use stencil_fpga::Table5;
    use stencil_kernels::paper_suite;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>4} | {:>9} {:>9} | {:>12} {:>12}",
        "benchmark", "n", "[8] banks", "our banks", "[8] size", "our size"
    );
    for bench in paper_suite() {
        let spec = bench.spec()?;
        let plan = MemorySystemPlan::generate(&spec)?;
        let base = multidim_cyclic(bench.window(), bench.extents());
        let _ = writeln!(
            out,
            "{:<18} {:>4} | {:>9} {:>9} | {:>12} {:>12}",
            bench.name(),
            bench.window().len(),
            base.banks,
            plan.bank_count(),
            base.total_size,
            plan.total_buffer_size()
        );
    }
    let table = Table5::build(&paper_suite())?;
    let _ = writeln!(out);
    let _ = write!(out, "{table}");
    Ok(out)
}

/// `stencil grid pack`: generate a deterministic pseudo-random grid
/// (the same LCG recipe the `engine` subcommand uses) and pack it into
/// a `.sgrid` binary file that `engine --input-grid` and `serve`
/// manifests can memory-map without parsing.
///
/// # Errors
///
/// Rejects extents whose element count overflows, and propagates
/// filesystem failures from the packer.
pub fn cmd_grid_pack(
    path: &std::path::Path,
    extents: &[u64],
    seed: u64,
) -> Result<String, CmdError> {
    let elements = extents
        .iter()
        .try_fold(1u64, |acc, &e| acc.checked_mul(e))
        .ok_or_else(|| format!("grid extents {extents:?} overflow the element count"))?;
    let elements = usize::try_from(elements)
        .map_err(|_| format!("grid extents {extents:?} exceed the address space"))?;
    let mut state = seed;
    let values: Vec<f64> = (0..elements)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    pack_grid(path, extents, &values)
        .map_err(|e| format!("cannot pack {}: {e}", path.display()))?;
    Ok(format!(
        "packed {} values ({} bytes) into {} (extents {:?}, seed {seed:#x})\n",
        values.len(),
        values.len() * 8,
        path.display(),
        extents,
    ))
}

/// `stencil grid inspect`: decode and print a `.sgrid` header, then map
/// the payload and report its value range — a quick integrity check
/// that exercises the same validation path the engine uses.
///
/// # Errors
///
/// Propagates the typed format errors for missing, truncated, or
/// corrupt files.
pub fn cmd_grid_inspect(path: &std::path::Path) -> Result<String, CmdError> {
    let header =
        stencil_engine::inspect_grid(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let grid = MappedGrid::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = String::new();
    let _ = writeln!(out, "{}: sgrid v1, dtype f64le", path.display());
    let _ = writeln!(
        out,
        "extents {:?}: {} values, {} payload bytes at offset {}",
        header.extents(),
        header.elements(),
        header.payload_bytes(),
        header.payload_offset(),
    );
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in grid.values() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let _ = writeln!(
        out,
        "value range [{lo}, {hi}], {} bytes mapped",
        grid.bytes_mapped()
    );
    Ok(out)
}

/// One parsed manifest line: a job template, possibly repeated.
struct ManifestJob {
    bench: stencil_kernels::Benchmark,
    extents: Option<Vec<i64>>,
    mode: ExecMode,
    shards: stencil_engine::ShardPolicy,
    repeat: usize,
    input: Option<std::path::PathBuf>,
}

/// Parses one job-manifest line:
///
/// ```text
/// <benchmark> [e0 e1 ...] [mode=incore|streaming[:ROWS]|tiled:N]
///             [shards=auto|whole|N] [repeat=N] [input=FILE.sgrid]
/// ```
///
/// Bare integers are grid extents (defaulting to the benchmark's paper
/// problem size); `#` starts a comment. With `input=`, the job's input
/// values come from a memory-mapped `.sgrid` file instead of the
/// per-line pseudo-random generator, and the file's extents must agree
/// with any explicit extents on the line.
fn parse_manifest_line(line: &str, lineno: usize) -> Result<Option<ManifestJob>, CmdError> {
    use stencil_engine::ShardPolicy;
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let name = tokens.next().expect("non-empty line has a first token");
    let bench = stencil_kernels::find_benchmark(name)
        .ok_or_else(|| format!("manifest line {lineno}: unknown benchmark `{name}`"))?;
    let mut extents: Vec<i64> = Vec::new();
    let mut mode = ExecMode::Streaming { chunk_rows: None };
    let mut shards = ShardPolicy::Auto;
    let mut repeat = 1usize;
    let mut input: Option<std::path::PathBuf> = None;
    for tok in tokens {
        if let Ok(e) = tok.parse::<i64>() {
            if e <= 0 {
                return Err(format!("manifest line {lineno}: extent {e} must be positive").into());
            }
            extents.push(e);
        } else if let Some(v) = tok.strip_prefix("mode=") {
            mode =
                match v.split_once(':') {
                    None if v == "incore" => ExecMode::InCore,
                    None if v == "streaming" => ExecMode::Streaming { chunk_rows: None },
                    Some(("streaming", rows)) => ExecMode::Streaming {
                        chunk_rows: Some(rows.parse().map_err(|_| {
                            format!("manifest line {lineno}: bad chunk rows `{rows}`")
                        })?),
                    },
                    Some(("tiled", n)) => ExecMode::Tiled {
                        tiles: n
                            .parse()
                            .map_err(|_| format!("manifest line {lineno}: bad tile count `{n}`"))?,
                    },
                    _ => return Err(format!("manifest line {lineno}: bad mode `{v}`").into()),
                };
        } else if let Some(v) = tok.strip_prefix("shards=") {
            shards = match v {
                "auto" => ShardPolicy::Auto,
                "whole" => ShardPolicy::Whole,
                n => ShardPolicy::Fixed(
                    n.parse()
                        .map_err(|_| format!("manifest line {lineno}: bad shard count `{n}`"))?,
                ),
            };
        } else if let Some(v) = tok.strip_prefix("repeat=") {
            repeat = v
                .parse()
                .ok()
                .filter(|&r: &usize| r > 0)
                .ok_or_else(|| format!("manifest line {lineno}: bad repeat `{v}`"))?;
        } else if let Some(v) = tok.strip_prefix("input=") {
            if v.is_empty() {
                return Err(format!("manifest line {lineno}: input= needs a path").into());
            }
            input = Some(std::path::PathBuf::from(v));
        } else {
            return Err(format!("manifest line {lineno}: unknown token `{tok}`").into());
        }
    }
    Ok(Some(ManifestJob {
        bench,
        extents: if extents.is_empty() {
            None
        } else {
            Some(extents)
        },
        mode,
        shards,
        repeat,
        input,
    }))
}

/// `stencil serve`: drive a batch of grid jobs from a manifest file
/// through the sharded serving front-end ([`ServiceFront`]) — a worker
/// pool of sessions behind a bounded queue with residency-budget
/// admission control. Rejected submissions are retried after the
/// front-end's `retry_after` hint (so backpressure shows up in the
/// telemetry as rejections, not as dropped jobs). The second result
/// element is the aggregated telemetry report as JSON (for
/// `--metrics-out`); the third is the validator's violation count,
/// which drives the exit code.
///
/// Inputs are deterministic pseudo-random grids seeded per manifest
/// line, so repeated jobs exercise the shared plan cache with
/// bit-identical expectations — unless the line names an
/// `input=FILE.sgrid`, in which case the file is memory-mapped once and
/// every repeat (and every shard) reads the same mapping with zero
/// payload copies.
///
/// # Errors
///
/// Propagates manifest parse errors and typed engine failures; a job
/// still rejected after `SERVE_MAX_RETRIES` backoffs is an error too.
pub fn cmd_serve(
    manifest: &str,
    workers: usize,
    queue_depth: usize,
    memory_budget: u64,
) -> Result<(String, String, usize), CmdError> {
    use std::sync::Arc;
    use stencil_engine::{JobRequest, ServiceConfig, ServiceFront, Submission};

    /// Backoff attempts before a persistently rejected job is an error.
    const SERVE_MAX_RETRIES: usize = 1000;

    let mut jobs: Vec<ManifestJob> = Vec::new();
    for (i, line) in manifest.lines().enumerate() {
        if let Some(job) = parse_manifest_line(line, i + 1)? {
            jobs.push(job);
        }
    }
    if jobs.is_empty() {
        return Err("manifest lists no jobs".into());
    }

    let front = ServiceFront::new(ServiceConfig {
        workers,
        queue_depth,
        memory_budget,
        session_threads: 1,
    });
    let mut labels: Vec<String> = Vec::new();
    for (line_idx, job) in jobs.iter().enumerate() {
        let (extents, input): (Vec<i64>, stencil_engine::JobInput) = match &job.input {
            Some(path) => {
                // Map the grid file once; repeats and shards share it.
                let grid = MappedGrid::open(path)
                    .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
                let file_extents: Vec<i64> = grid
                    .header()
                    .extents()
                    .iter()
                    .map(|&e| {
                        i64::try_from(e)
                            .map_err(|_| format!("{}: extent {e} too large", path.display()))
                    })
                    .collect::<Result<_, _>>()?;
                if let Some(explicit) = &job.extents {
                    if *explicit != file_extents {
                        return Err(format!(
                            "{}: grid extents {file_extents:?} contradict the manifest \
                             extents {explicit:?}",
                            path.display()
                        )
                        .into());
                    }
                }
                (file_extents, stencil_engine::JobInput::Mapped(grid))
            }
            None => {
                let extents: Vec<i64> = job
                    .extents
                    .clone()
                    .unwrap_or_else(|| job.bench.extents().to_vec());
                let len: i64 = extents.iter().product();
                let len = usize::try_from(len).map_err(|_| "manifest grid too large")?;
                // Deterministic pseudo-random input, seeded per line.
                let mut state = 0x5EED_BA5E_D00Du64 ^ ((line_idx as u64) << 17);
                let input: Arc<Vec<f64>> = Arc::new(
                    (0..len)
                        .map(|_| {
                            state = state
                                .wrapping_mul(6364136223846793005u64)
                                .wrapping_add(1442695040888963407);
                            ((state >> 40) as f64) / 256.0
                        })
                        .collect(),
                );
                (extents, input.into())
            }
        };
        let req = JobRequest {
            benchmark: job.bench.clone(),
            extents: Some(extents),
            mode: job.mode,
            shards: job.shards,
            input,
        };
        for r in 0..job.repeat {
            let mut attempts = 0usize;
            loop {
                match front.submit(&req)? {
                    Submission::Admitted(_) => break,
                    Submission::Rejected(rej) => {
                        attempts += 1;
                        if attempts > SERVE_MAX_RETRIES {
                            return Err(format!(
                                "job {}[{r}] still rejected ({:?}) after {SERVE_MAX_RETRIES} \
                                 retries; raise --queue-depth or --memory-budget",
                                job.bench.name(),
                                rej.reason
                            )
                            .into());
                        }
                        std::thread::sleep(rej.retry_after);
                    }
                }
            }
            labels.push(format!("{}[{r}]", job.bench.name()));
        }
    }

    let outcome = front.finish();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>7} {:>12}  status",
        "job", "shards", "outputs"
    );
    let mut failed = 0usize;
    for (label, job) in labels.iter().zip(&outcome.jobs) {
        let status = match &job.error {
            None => "ok".to_string(),
            Some(e) => {
                failed += 1;
                format!("FAILED: {e}")
            }
        };
        let _ = writeln!(
            out,
            "{:<22} {:>7} {:>12}  {}",
            label,
            job.shards,
            job.outputs.len(),
            status
        );
    }
    let m = &outcome.metrics;
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "pool: {} worker(s), queue depth {}, budget {}",
        m.workers,
        m.queue_depth,
        if m.memory_budget == 0 {
            "unbounded".to_string()
        } else {
            m.memory_budget.to_string()
        }
    );
    let _ = writeln!(
        out,
        "jobs: {} submitted, {} admitted, {} rejected (retried), {} failed",
        m.jobs_submitted, m.jobs_admitted, m.jobs_rejected, m.jobs_failed
    );
    let _ = writeln!(
        out,
        "shards: {} executed, peak resident {} of {} admitted bound",
        m.shards_executed, m.peak_resident, m.admitted_bound_peak
    );
    let _ = writeln!(
        out,
        "plan cache: {} hit(s), {} miss(es), {} tile plan(s) built in sessions",
        m.plan_cache_hits, m.plan_cache_misses, m.tile_plans_built
    );
    let _ = writeln!(
        out,
        "aggregate throughput: {:.1} Melem/s",
        m.throughput / 1e6
    );

    let report = outcome.report("serve");
    let mut violations = append_bound_checks(&mut out, &report);
    if failed > 0 {
        let _ = writeln!(out, "{failed} job(s) FAILED");
        violations += failed;
    }
    Ok((out, report.to_json(), violations))
}

/// `stencil report`: a complete markdown design report — window art,
/// plan, optimality, baseline comparison, resources, and simulation.
///
/// # Errors
///
/// Propagates planning and simulation failures.
pub fn cmd_report(spec: &StencilSpec, extents: &[i64]) -> Result<String, CmdError> {
    let analysis = ReuseAnalysis::of(spec)?;
    let plan = MemorySystemPlan::generate(spec)?;
    let report = verify_plan(&plan, &analysis);
    let mut out = String::new();
    let _ = writeln!(out, "# Design report: `{}`", spec.name());
    let _ = writeln!(out);
    if let Some(art) = stencil_polyhedral::render_window(spec.offsets()) {
        let _ = writeln!(out, "## Stencil window ({} points)", spec.window_size());
        let _ = writeln!(out, "```");
        out.push_str(&art);
        let _ = writeln!(out, "```");
    }
    let _ = writeln!(out, "## Memory system");
    let _ = writeln!(out, "```");
    let _ = writeln!(out, "{plan}");
    let _ = writeln!(out, "```");
    let _ = writeln!(out, "## Optimality");
    let _ = writeln!(out, "```");
    let _ = writeln!(out, "{report}");
    let _ = writeln!(out, "```");

    let _ = writeln!(out, "## Versus uniform partitioning");
    let orig = unpartitioned(spec.offsets(), extents);
    let best = best_uniform(spec.offsets(), extents);
    let gmp = multidim_cyclic(spec.offsets(), extents);
    let _ = writeln!(out, "| design | banks | buffer | II |");
    let _ = writeln!(out, "|---|---|---|---|");
    let _ = writeln!(out, "| original | 1 | {} | {} |", orig.total_size, orig.ii);
    let _ = writeln!(
        out,
        "| [8] multidim cyclic | {} | {} | 1 |",
        gmp.banks, gmp.total_size
    );
    let _ = writeln!(
        out,
        "| best uniform | {} | {} | 1 |",
        best.banks, best.total_size
    );
    let _ = writeln!(
        out,
        "| **non-uniform (ours)** | **{}** | **{}** | 1 |",
        plan.bank_count(),
        plan.total_buffer_size()
    );

    let _ = writeln!(
        out,
        "
## Resources (synthetic Virtex-7 model)"
    );
    let ops = KernelOps::default();
    let ours = estimate_nonuniform(&plan, ops);
    let base = estimate_uniform(
        &gmp,
        spec.window_size(),
        spec.element_bits(),
        spec.iteration_domain(),
        ops,
    );
    let _ = writeln!(out, "| design | BRAM18K | slices | DSP | CP (ns) |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    let _ = writeln!(
        out,
        "| [8] | {} | {} | {} | {:.2} |",
        base.bram18k,
        base.slices(),
        base.dsps,
        base.cp_ns
    );
    let _ = writeln!(
        out,
        "| ours | {} | {} | {} | {:.2} |",
        ours.bram18k,
        ours.slices(),
        ours.dsps,
        ours.cp_ns
    );

    let _ = writeln!(
        out,
        "
## Cycle-accurate simulation"
    );
    let mut machine = Machine::new(&plan)?;
    let stats = machine.run(1_u64 << 34)?;
    let _ = writeln!(out, "```");
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(
        out,
        "bandwidth-limited: {} (ideal {} cycles)",
        stats.fully_pipelined(),
        stats.ideal_cycles
    );
    let _ = writeln!(out, "```");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_file::SpecFile;

    fn denoise_spec() -> StencilSpec {
        SpecFile::parse(
            "name denoise\ngrid 64 96\nelement_bits 16\noffset -1 0\noffset 0 -1\n\
             offset 0 0\noffset 0 1\noffset 1 0\n",
        )
        .unwrap()
        .to_spec()
        .unwrap()
    }

    #[test]
    fn plan_command_reports_optimality() {
        let out = cmd_plan(&denoise_spec()).unwrap();
        assert!(out.contains("OPTIMAL"), "{out}");
        assert!(out.contains("deadlock-free: true"), "{out}");
        assert!(
            out.contains("modulo-scheduled alternative: feasible"),
            "{out}"
        );
    }

    #[test]
    fn simulate_command_runs_and_traces() {
        let (out, vcd, metrics, violations) = cmd_simulate(&denoise_spec(), 1, 32).unwrap();
        assert!(out.contains("bandwidth-limited: true"), "{out}");
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        let vcd = vcd.expect("trace requested");
        assert!(vcd.contains("$enddefinitions"), "{vcd}");
        let report = MetricsReport::parse(&metrics).unwrap();
        assert_eq!(report.name, "denoise");
        assert!(report.machine.is_some());
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn simulate_with_tradeoff_streams() {
        let (out, vcd, metrics, violations) = cmd_simulate(&denoise_spec(), 3, 0).unwrap();
        assert!(out.contains("bandwidth-limited: true"), "{out}");
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        assert!(vcd.is_none());
        let report = MetricsReport::parse(&metrics).unwrap();
        assert_eq!(report.machine.as_ref().unwrap().offchip_streams, 3);
    }

    #[test]
    fn engine_command_reports_bands_and_verifies() {
        // Default config shards one band per off-chip stream.
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            3,
            None,
            2,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &[],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("3 band(s)"), "{out}");
        assert!(out.contains("[compiled kernel]"), "{out}");
        assert!(out.contains("verified against direct loop"), "{out}");
        assert!(out.contains("fetch overhead"), "{out}");
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let engine = report.engine.as_ref().unwrap();
        assert_eq!(engine.tiles, 3);
        assert_eq!(engine.backend, "compiled");
        assert!(engine.throughput.is_finite());
        assert_eq!(validate_report(&report), Vec::new());

        // Explicit band count wins over the stream default.
        let (out, _, _) = cmd_engine(
            &denoise_spec(),
            1,
            Some(4),
            4,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &[],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("4 band(s)"), "{out}");
    }

    #[test]
    fn engine_closure_backend_crosschecks_against_compiled() {
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            2,
            false,
            None,
            KernelBackend::Closure,
            1,
            Datapath::F64,
            true,
            &[],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("[closure kernel]"), "{out}");
        assert!(
            out.contains("cross-check compiled vs closure: 5828 outputs bit-identical"),
            "{out}"
        );
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        assert_eq!(report.engine.as_ref().unwrap().backend, "closure");
    }

    #[test]
    fn engine_unrolled_f64_stays_bit_exact_and_reports_shape() {
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            2,
            false,
            None,
            KernelBackend::Compiled,
            4,
            Datapath::F64,
            true,
            &[],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("[compiled kernel] (unroll 4)"), "{out}");
        assert!(out.contains("verified against direct loop"), "{out}");
        assert!(out.contains("outputs bit-identical"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let engine = report.engine.as_ref().unwrap();
        assert_eq!(engine.unroll, 4);
        assert_eq!(engine.datapath, "f64");
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn engine_f32_datapath_verifies_within_tolerance() {
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            true,
            Some(3),
            KernelBackend::Compiled,
            4,
            Datapath::F32,
            true,
            &[],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("(unroll 4, f32)"), "{out}");
        assert!(out.contains("verified against f64 direct loop"), "{out}");
        assert!(
            out.contains("cross-check compiled vs closure (f32)"),
            "{out}"
        );
        assert!(out.contains("verified streaming against in-core"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let engine = report.engine.as_ref().unwrap();
        assert_eq!(engine.unroll, 4);
        assert_eq!(engine.datapath, "f32");
        let stream = report.stream.as_ref().unwrap();
        assert_eq!(stream.unroll, 4);
        assert_eq!(stream.datapath, "f32");
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn engine_f32_rejects_chain_and_iterate() {
        let err = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F32,
            false,
            &[],
            Some(2),
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--datapath f32"), "{err}");
    }

    #[test]
    fn engine_streaming_mode_verifies_and_reports_residency() {
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            2,
            true,
            Some(4),
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            true,
            &[],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("streaming run:"), "{out}");
        assert!(out.contains("cross-check compiled vs closure"), "{out}");
        assert!(out.contains("verified streaming against in-core"), "{out}");
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let stream = report.stream.as_ref().unwrap();
        assert_eq!(stream.chunk_rows, 4);
        assert_eq!(stream.backend, "compiled");
        assert!(stream.sweep_rows > 0);
        assert!(stream.peak_resident <= stream.resident_bound);
        assert_eq!(stream.outputs, 62 * 94);
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn engine_chain_flag_runs_and_verifies_the_pipeline() {
        // In-core chained run: session report plus sequential check.
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &["s2".into()],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("session [incore]: 2 stage(s)"), "{out}");
        assert!(
            out.contains("verified chained pipeline against sequential stages"),
            "{out}"
        );
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let session = report.session.as_ref().unwrap();
        assert_eq!(session.mode, "incore");
        assert_eq!(session.stages.len(), 2);
        assert_eq!(session.stages[1].label, "s2");
        // 64x96 grid -> 62x94 after stage 1 -> 60x92 after stage 2.
        assert_eq!(session.outputs, 60 * 92);
        assert_eq!(validate_report(&report), Vec::new());

        // Streaming chained run keeps only the coupled halo windows
        // resident — far below the 62x94 intermediate grid.
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            true,
            Some(1),
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &["s2".into()],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("session [streaming]: 2 stage(s)"), "{out}");
        assert!(out.contains("chained residency: peak"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let session = report.session.as_ref().unwrap();
        assert_eq!(session.mode, "streaming");
        assert_eq!(session.outputs, 60 * 92);
        assert_eq!(session.peak_resident, 3 * 96 + 3 * 94);
        assert!(session.peak_resident < 62 * 94);
        assert!(session.stages.iter().all(|s| s.stream.is_some()));
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn engine_chain_depth_three_composes() {
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            true,
            Some(2),
            KernelBackend::Closure,
            1,
            Datapath::F64,
            false,
            &["s2".into(), "s3".into()],
            None,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("session [streaming]: 3 stage(s)"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let session = report.session.as_ref().unwrap();
        assert_eq!(session.stages.len(), 3);
        assert_eq!(session.outputs, 58 * 90);
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn engine_iterate_flag_runs_the_ring_in_both_modes() {
        // In-core ring: three time steps, verified against three
        // materialized sequential runs.
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &[],
            Some(3),
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("session [incore]: 3 stage(s)"), "{out}");
        assert!(out.contains("iterate: 3 / 3 step(s)"), "{out}");
        assert!(
            out.contains("verified iterate(3) against sequential time steps"),
            "{out}"
        );
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let session = report.session.as_ref().unwrap();
        let it = session.iterate.as_ref().unwrap();
        assert_eq!(it.steps, 3);
        assert!(!it.converged);
        // 64x96 grid erodes one ring per step: 58x90 after three.
        assert_eq!(session.outputs, 58 * 90);
        assert_eq!(validate_report(&report), Vec::new());

        // Streaming ring: the coupled halo windows stay far below the
        // full grid, and the planned bound holds.
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            true,
            Some(1),
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &[],
            Some(3),
            None,
            None,
            None,
        )
        .unwrap();
        assert!(out.contains("session [streaming]: 3 stage(s)"), "{out}");
        assert!(out.contains("iterate residency: peak"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let session = report.session.as_ref().unwrap();
        assert_eq!(session.mode, "streaming");
        assert_eq!(session.outputs, 58 * 90);
        assert!(session.peak_resident < 62 * 94);
        assert!(session.iterate.is_some());
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn engine_iterate_with_epsilon_reports_convergence() {
        // The window-sum datapath is expansive, so a tight epsilon
        // exhausts the step budget without converging — the command
        // still succeeds and reports the outcome honestly.
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &[],
            Some(4),
            Some(1e-6),
            None,
            None,
        )
        .unwrap();
        assert!(
            out.contains("convergence: NOT reached after 4 of 4 step(s)"),
            "{out}"
        );
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let it = report.session.as_ref().unwrap().iterate.as_ref().unwrap();
        assert_eq!(it.steps, 4);
        assert!(!it.converged);
        assert!(it.final_delta > 1e-6);
        assert_eq!(validate_report(&report), Vec::new());

        // An absurdly loose threshold converges after the first
        // measured delta.
        let (out, metrics, _) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            false,
            None,
            KernelBackend::Closure,
            1,
            Datapath::F64,
            false,
            &[],
            Some(4),
            Some(1e12),
            None,
            None,
        )
        .unwrap();
        assert!(
            out.contains("convergence: reached after 1 of 4 step(s)"),
            "{out}"
        );
        let report = MetricsReport::parse(&metrics).unwrap();
        let it = report.session.as_ref().unwrap().iterate.as_ref().unwrap();
        assert!(it.converged);
        assert_eq!(it.steps, 1);
    }

    #[test]
    fn engine_iterate_rejects_chain_combination() {
        let err = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &["s2".into()],
            Some(2),
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--iterate"), "{err}");
    }

    #[test]
    fn rtl_command_generates_clean_bundle() {
        let bundle = cmd_rtl(&denoise_spec()).unwrap();
        assert!(bundle.files().len() > 3);
        assert!(bundle.concat().contains("module denoise_mem_system"));
    }

    #[test]
    fn suite_command_summarizes_everything() {
        let out = cmd_suite().unwrap();
        assert!(out.contains("SEGMENTATION_3D"), "{out}");
        assert!(out.contains("average ours/baseline"), "{out}");
    }

    #[test]
    fn report_command_is_complete() {
        let out = cmd_report(&denoise_spec(), &[64, 96]).unwrap();
        assert!(out.contains("# Design report: `denoise`"), "{out}");
        assert!(
            out.contains(
                ". o .
o o o
. o ."
            ),
            "{out}"
        );
        assert!(out.contains("| **non-uniform (ours)** |"), "{out}");
        assert!(out.contains("bandwidth-limited: true"), "{out}");
        assert!(out.contains("OPTIMAL"), "{out}");
    }

    #[test]
    fn compare_command_shows_savings() {
        let out = cmd_compare(&denoise_spec(), &[64, 96]).unwrap();
        assert!(out.contains("savings: 1 bank(s)"), "{out}");
        assert!(out.contains("II = 5"), "{out}");
    }

    /// The plan's input-domain extents for `denoise_spec`, as the
    /// `.sgrid` header wants them.
    fn input_grid_extents() -> Vec<u64> {
        let plan = MemorySystemPlan::generate(&denoise_spec()).unwrap();
        let bb = plan.input_domain().index().unwrap().bounding_box().unwrap();
        bb.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).collect()
    }

    #[test]
    fn engine_grid_files_round_trip_with_zero_copies() {
        let dir = std::env::temp_dir().join("stencil_cli_gridio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let in_path = dir.join("in.sgrid");
        let out_path = dir.join("out.sgrid");
        // Pack with the engine's own seed: the mapped run must agree
        // with the generator-driven direct-loop cross-check.
        let pack = cmd_grid_pack(&in_path, &input_grid_extents(), 0x5EED_BA5E_D00D).unwrap();
        assert!(pack.contains("packed"), "{pack}");
        let (out, metrics, violations) = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            true,
            Some(4),
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &[],
            None,
            None,
            Some(&in_path),
            Some(&out_path),
        )
        .unwrap();
        assert!(out.contains("output grid written to"), "{out}");
        assert!(out.contains("grid io:"), "{out}");
        assert!(out.contains("/ 0 copied in"), "{out}");
        assert!(out.contains("runtime bound checks: all passed"), "{out}");
        assert_eq!(violations, 0);
        let report = MetricsReport::parse(&metrics).unwrap();
        let io = report.session.as_ref().unwrap().grid_io.as_ref().unwrap();
        assert_eq!(io.values_copied, 0);
        assert!(io.values_mapped > 0);
        assert!(io.sink_finalized);
        let inspect = cmd_grid_inspect(&out_path).unwrap();
        assert!(inspect.contains("sgrid v1"), "{inspect}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_rejects_mismatched_input_grid_extents() {
        let dir = std::env::temp_dir().join("stencil_cli_gridio_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let in_path = dir.join("wrong.sgrid");
        cmd_grid_pack(&in_path, &[4, 4], 1).unwrap();
        let err = cmd_engine(
            &denoise_spec(),
            1,
            None,
            1,
            false,
            None,
            KernelBackend::Compiled,
            1,
            Datapath::F64,
            false,
            &[],
            None,
            None,
            Some(&in_path),
            None,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("do not match"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_manifest_accepts_mapped_input_grids() {
        let dir = std::env::temp_dir().join("stencil_cli_serve_grid");
        std::fs::create_dir_all(&dir).unwrap();
        let grid = dir.join("denoise.sgrid");
        cmd_grid_pack(&grid, &[20, 12], 7).unwrap();
        let manifest = format!(
            "denoise 20 12 mode=incore shards=whole repeat=2 input={}\n",
            grid.display()
        );
        let (out, metrics, violations) = cmd_serve(&manifest, 1, 8, 0).unwrap();
        assert!(out.contains("DENOISE[0]"), "{out}");
        assert!(out.contains("DENOISE[1]"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
        assert_eq!(violations, 0);
        assert!(MetricsReport::parse(&metrics).is_ok());
        // Contradictory explicit extents are a manifest error.
        let bad = format!("denoise 21 12 mode=incore input={}\n", grid.display());
        let err = cmd_serve(&bad, 1, 8, 0).unwrap_err();
        assert!(err.to_string().contains("contradict"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
