//! Rendering affine bound expressions as Verilog.
//!
//! A constraint `a·x + b ≥ 0` whose innermost variable `x_d` has
//! coefficient `+1` yields the lower bound
//! `x_d ≥ -b - Σ_{k<d} a_k x_k`; coefficient `-1` yields the upper bound
//! `x_d ≤ b + Σ_{k<d} a_k x_k`. Everything is adders and constant
//! multiplies — no division, the defining property of the design.

use stencil_polyhedral::Constraint;

use crate::error::RtlError;
use crate::verilog::signed_literal;

/// Renders the bound expression of `c` for its innermost variable `dim`,
/// given the Verilog names of the outer loop variables.
///
/// # Errors
///
/// Returns [`RtlError::NonUnitCoefficient`] if `|a_dim| != 1`.
///
/// # Panics
///
/// Panics if `c` does not involve `dim` as its innermost variable or if
/// `vars` is shorter than `dim`.
pub fn bound_expr(
    c: &Constraint,
    dim: usize,
    vars: &[&str],
    width: u32,
) -> Result<BoundExpr, RtlError> {
    assert_eq!(
        c.innermost_var(),
        Some(dim),
        "constraint does not bound x{dim}"
    );
    assert!(vars.len() >= dim, "missing outer variable names");
    let a = c.coeffs()[dim];
    if a.abs() != 1 {
        return Err(RtlError::NonUnitCoefficient {
            dim,
            coefficient: a,
        });
    }
    // a = +1:  x >= -b - sum(a_k x_k)   (negate everything)
    // a = -1:  x <= +b + sum(a_k x_k)
    let negate = a == 1;
    let mut terms = Vec::new();
    let b = c.constant();
    let b_eff = if negate { -b } else { b };
    terms.push(signed_literal(b_eff, width));
    for (k, &ak) in c.coeffs()[..dim].iter().enumerate() {
        if ak == 0 {
            continue;
        }
        let coeff = if negate { -ak } else { ak };
        let term = match coeff {
            1 => vars[k].to_owned(),
            -1 => format!("(-{})", vars[k]),
            _ => format!("({} * {})", signed_literal(coeff, width), vars[k]),
        };
        terms.push(term);
    }
    Ok(BoundExpr {
        text: terms.join(" + "),
        is_lower: negate,
    })
}

/// One rendered bound expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundExpr {
    /// The Verilog expression text.
    pub text: String,
    /// True for a lower bound (`x_d >= text`), false for an upper bound.
    pub is_lower: bool,
}

/// Combines several bound expressions into one net: the max of the
/// lower bounds or the min of the upper bounds, emitted as a chain of
/// intermediate wires. Returns (declaration lines, final net name).
///
/// # Panics
///
/// Panics if `exprs` is empty or mixes lower and upper bounds.
#[must_use]
pub fn combine_bounds(exprs: &[BoundExpr], net_prefix: &str, width: u32) -> (Vec<String>, String) {
    assert!(!exprs.is_empty(), "no bound expressions");
    let lower = exprs[0].is_lower;
    assert!(
        exprs.iter().all(|e| e.is_lower == lower),
        "mixed bound directions"
    );
    let mut lines = Vec::new();
    let mut acc = format!("{net_prefix}_0");
    lines.push(format!(
        "wire signed [{}:0] {acc} = {};",
        width - 1,
        exprs[0].text
    ));
    for (k, e) in exprs.iter().enumerate().skip(1) {
        let raw = format!("{net_prefix}_{k}_raw");
        lines.push(format!("wire signed [{}:0] {raw} = {};", width - 1, e.text));
        let next = format!("{net_prefix}_{k}");
        let op = if lower { ">" } else { "<" };
        lines.push(format!(
            "wire signed [{}:0] {next} = ({raw} {op} {acc}) ? {raw} : {acc};",
            width - 1
        ));
        acc = next;
    }
    (lines, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_from_unit_constraint() {
        // x1 - 3 >= 0  =>  x1 >= 3.
        let c = Constraint::lower_bound(2, 1, 3);
        let e = bound_expr(&c, 1, &["x0"], 16).unwrap();
        assert!(e.is_lower);
        assert_eq!(e.text, "16'sd3");
    }

    #[test]
    fn upper_bound_with_outer_term() {
        // -x1 + x0 + 5 >= 0  =>  x1 <= x0 + 5.
        let c = Constraint::new(&[1, -1], 5);
        let e = bound_expr(&c, 1, &["x0"], 16).unwrap();
        assert!(!e.is_lower);
        assert_eq!(e.text, "16'sd5 + x0");
    }

    #[test]
    fn lower_bound_with_negated_outer() {
        // x1 - x0 - 1 >= 0  =>  x1 >= x0 + 1.
        let c = Constraint::new(&[-1, 1], -1);
        let e = bound_expr(&c, 1, &["x0"], 16).unwrap();
        assert!(e.is_lower);
        assert_eq!(e.text, "16'sd1 + x0");
    }

    #[test]
    fn scaled_outer_coefficient_renders_multiply() {
        // -x1 + 2*x0 + 4 >= 0  =>  x1 <= 2*x0 + 4.
        let c = Constraint::new(&[2, -1], 4);
        let e = bound_expr(&c, 1, &["x0"], 16).unwrap();
        assert_eq!(e.text, "16'sd4 + (16'sd2 * x0)");
    }

    #[test]
    fn non_unit_own_coefficient_rejected() {
        // 2*x0 - 5 >= 0 would need a divide-by-2.
        let c = Constraint::new(&[2, 0, 1], -5); // innermost is x2 (unit) — fine
        assert!(bound_expr(&c, 2, &["x0", "x1"], 16).is_ok());
        // Constraint normalization divides by the gcd, so build a truly
        // non-unit case with a second variable to break the gcd.
        let c = Constraint::new(&[1, 2], -5);
        let err = bound_expr(&c, 1, &["x0"], 16).unwrap_err();
        assert_eq!(
            err,
            RtlError::NonUnitCoefficient {
                dim: 1,
                coefficient: 2
            }
        );
    }

    #[test]
    fn combine_single_bound_is_direct() {
        let e = BoundExpr {
            text: "16'sd7".into(),
            is_lower: true,
        };
        let (lines, net) = combine_bounds(&[e], "lo1", 16);
        assert_eq!(lines.len(), 1);
        assert_eq!(net, "lo1_0");
    }

    #[test]
    fn combine_multiple_takes_extremum() {
        let a = BoundExpr {
            text: "16'sd1".into(),
            is_lower: false,
        };
        let b = BoundExpr {
            text: "x0".into(),
            is_lower: false,
        };
        let (lines, net) = combine_bounds(&[a, b], "hi1", 16);
        assert_eq!(net, "hi1_1");
        assert!(lines.iter().any(|l| l.contains("<")), "{lines:?}");
    }
}
