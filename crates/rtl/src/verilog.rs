//! A minimal structured Verilog emitter: enough structure to build
//! modules programmatically and to self-check the output, without a
//! full AST.

use std::fmt::Write as _;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    In,
    /// `output`
    Out,
}

/// A port declaration.
#[derive(Debug, Clone)]
pub struct Port {
    /// Direction.
    pub dir: Dir,
    /// Bit width (1 emits a scalar port).
    pub width: u32,
    /// Signed two's-complement port.
    pub signed: bool,
    /// Port name.
    pub name: String,
}

impl Port {
    /// An unsigned input of the given width.
    #[must_use]
    pub fn input(name: impl Into<String>, width: u32) -> Self {
        Self {
            dir: Dir::In,
            width,
            signed: false,
            name: name.into(),
        }
    }

    /// An unsigned output of the given width.
    #[must_use]
    pub fn output(name: impl Into<String>, width: u32) -> Self {
        Self {
            dir: Dir::Out,
            width,
            signed: false,
            name: name.into(),
        }
    }

    /// Marks the port signed.
    #[must_use]
    pub fn signed(mut self) -> Self {
        self.signed = true;
        self
    }
}

/// A Verilog module under construction.
#[derive(Debug, Clone)]
pub struct VModule {
    name: String,
    comment: String,
    params: Vec<(String, String)>,
    ports: Vec<Port>,
    body: Vec<String>,
}

impl VModule {
    /// Starts a module with a header comment.
    #[must_use]
    pub fn new(name: impl Into<String>, comment: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            comment: comment.into(),
            params: Vec::new(),
            ports: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a `parameter NAME = value`.
    pub fn param(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.params.push((name.into(), value.into()));
        self
    }

    /// Adds a port.
    pub fn port(&mut self, port: Port) -> &mut Self {
        self.ports.push(port);
        self
    }

    /// Appends one body line (already-formed Verilog; indentation added
    /// on render).
    pub fn line(&mut self, line: impl Into<String>) -> &mut Self {
        self.body.push(line.into());
        self
    }

    /// Appends a blank line.
    pub fn blank(&mut self) -> &mut Self {
        self.body.push(String::new());
        self
    }

    /// Renders the complete module text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for line in self.comment.lines() {
            let _ = writeln!(s, "// {line}");
        }
        let _ = write!(s, "module {}", self.name);
        if !self.params.is_empty() {
            let _ = writeln!(s, " #(");
            for (k, (name, value)) in self.params.iter().enumerate() {
                let comma = if k + 1 < self.params.len() { "," } else { "" };
                let _ = writeln!(s, "    parameter {name} = {value}{comma}");
            }
            let _ = write!(s, ")");
        }
        let _ = writeln!(s, " (");
        for (k, p) in self.ports.iter().enumerate() {
            let dir = match p.dir {
                Dir::In => "input ",
                Dir::Out => "output",
            };
            let signed = if p.signed { " signed" } else { "" };
            let range = if p.width > 1 {
                format!(" [{}:0]", p.width - 1)
            } else {
                String::new()
            };
            let comma = if k + 1 < self.ports.len() { "," } else { "" };
            let _ = writeln!(s, "    {dir} wire{signed}{range} {}{comma}", p.name);
        }
        let _ = writeln!(s, ");");
        for line in &self.body {
            if line.is_empty() {
                let _ = writeln!(s);
            } else {
                let _ = writeln!(s, "    {line}");
            }
        }
        let _ = writeln!(s, "endmodule");
        s
    }
}

/// Structural self-checks over generated Verilog text.
///
/// Returns a list of problems (empty = clean): unbalanced
/// `module`/`endmodule`, unbalanced `begin`/`end`, unbalanced
/// parentheses/brackets.
#[must_use]
pub fn lint(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let code: String = text
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");

    let count_word = |w: &str| {
        code.split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .filter(|t| *t == w)
            .count()
    };
    let modules = count_word("module");
    let endmodules = count_word("endmodule");
    if modules != endmodules {
        problems.push(format!("{modules} module vs {endmodules} endmodule"));
    }
    let begins = count_word("begin");
    let ends = count_word("end");
    if begins != ends {
        problems.push(format!("{begins} begin vs {ends} end"));
    }
    for (open, close) in [('(', ')'), ('[', ']'), ('{', '}')] {
        let o = code.matches(open).count();
        let c = code.matches(close).count();
        if o != c {
            problems.push(format!("{o} '{open}' vs {c} '{close}'"));
        }
    }
    problems
}

/// Renders a signed decimal literal with explicit width, e.g.
/// `-5` at width 16 becomes `-16'sd5`.
#[must_use]
pub fn signed_literal(value: i64, width: u32) -> String {
    if value < 0 {
        format!("-{width}'sd{}", -value)
    } else {
        format!("{width}'sd{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_simple_module() {
        let mut m = VModule::new("adder", "a test module");
        m.param("W", "8");
        m.port(Port::input("a", 8).signed());
        m.port(Port::input("b", 8));
        m.port(Port::output("y", 9));
        m.line("assign y = a + b;");
        let text = m.render();
        assert!(text.starts_with("// a test module"), "{text}");
        assert!(text.contains("module adder #("), "{text}");
        assert!(text.contains("parameter W = 8"), "{text}");
        assert!(text.contains("input  wire signed [7:0] a,"), "{text}");
        assert!(text.contains("output wire [8:0] y"), "{text}");
        assert!(text.trim_end().ends_with("endmodule"), "{text}");
        assert!(lint(&text).is_empty(), "{:?}", lint(&text));
    }

    #[test]
    fn scalar_ports_have_no_range() {
        let mut m = VModule::new("t", "");
        m.port(Port::input("clk", 1));
        let text = m.render();
        assert!(text.contains("input  wire clk"), "{text}");
        assert!(!text.contains("[0:0]"), "{text}");
    }

    #[test]
    fn lint_catches_imbalance() {
        assert!(!lint("module a (\n);\n").is_empty());
        assert!(!lint("module a ();\nalways @(*) begin\nendmodule").is_empty());
        assert!(lint("module a ();\nendmodule\n").is_empty());
        // Comments are ignored.
        assert!(lint("module a ();\n// begin begin (((\nendmodule").is_empty());
    }

    #[test]
    fn signed_literals() {
        assert_eq!(signed_literal(5, 16), "16'sd5");
        assert_eq!(signed_literal(-5, 16), "-16'sd5");
        assert_eq!(signed_literal(0, 8), "8'sd0");
    }
}
