//! Generation of the reuse FIFO module — one parametrized synchronous
//! FIFO shared by all chain positions, with a per-instance storage hint
//! (the heterogeneous mapping of §3.5.1 carried down to synthesis via
//! `ram_style`).

use stencil_core::StorageKind;

use crate::verilog::{Port, VModule};

/// The Verilog `ram_style` attribute value for a storage kind.
#[must_use]
pub fn ram_style(kind: StorageKind) -> &'static str {
    match kind {
        StorageKind::Register => "registers",
        StorageKind::ShiftRegister => "distributed",
        StorageKind::BlockRam => "block",
    }
}

/// Generates the parametrized synchronous FIFO used for every reuse
/// buffer. `DEPTH` and `W` are module parameters; the storage hint is
/// applied per instance via a synthesis attribute.
#[must_use]
pub fn fifo_module(name: &str) -> VModule {
    let mut m = VModule::new(
        name,
        "Synchronous reuse FIFO with first-word-fall-through semantics.\n\
         One write port (off-chip refill side) and one read port, the\n\
         dual-port budget of Section 2.3 of the paper.",
    );
    m.param("DEPTH", "2");
    m.param("W", "32");
    m.param("PTR_W", "$clog2(DEPTH + 1)");
    m.port(Port::input("clk", 1));
    m.port(Port::input("rst", 1));
    m.port(Port::input("wr_valid", 1));
    m.port(Port::input("wr_data", 32)); // width overridden by W at elaboration
    m.port(Port::output("wr_ready", 1));
    m.port(Port::output("rd_valid", 1));
    m.port(Port::output("rd_data", 32));
    m.port(Port::input("rd_ready", 1));

    for line in [
        "(* ram_style = STYLE *)",
        "reg [W-1:0] mem [0:DEPTH-1];",
        "reg [PTR_W-1:0] wp, rp, count;",
        "wire do_wr = wr_valid && wr_ready;",
        "wire do_rd = rd_valid && rd_ready;",
        "assign wr_ready = (count < DEPTH) || do_rd;",
        "assign rd_valid = (count != 0);",
        "assign rd_data = mem[rp];",
        "always @(posedge clk) begin",
        "    if (rst) begin",
        "        wp <= 0; rp <= 0; count <= 0;",
        "    end else begin",
        "        if (do_wr) begin",
        "            mem[wp] <= wr_data;",
        "            wp <= (wp == DEPTH - 1) ? 0 : wp + 1;",
        "        end",
        "        if (do_rd) rp <= (rp == DEPTH - 1) ? 0 : rp + 1;",
        "        count <= count + do_wr - do_rd;",
        "    end",
        "end",
    ] {
        m.line(line);
    }
    // STYLE is a string parameter; declare it.
    m.param("STYLE", "\"block\"");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::lint;

    #[test]
    fn fifo_renders_clean() {
        let text = fifo_module("reuse_fifo").render();
        assert!(lint(&text).is_empty(), "{:?}\n{text}", lint(&text));
        assert!(text.contains("parameter DEPTH = 2"), "{text}");
        assert!(text.contains("ram_style"), "{text}");
        assert!(text.contains("first-word-fall-through"), "{text}");
        // Flow-through: full FIFO accepts a write when simultaneously read.
        assert!(text.contains("(count < DEPTH) || do_rd"), "{text}");
    }

    #[test]
    fn ram_styles() {
        assert_eq!(ram_style(StorageKind::BlockRam), "block");
        assert_eq!(ram_style(StorageKind::ShiftRegister), "distributed");
        assert_eq!(ram_style(StorageKind::Register), "registers");
    }
}
