//! Complete-accelerator generation: the memory system integrated with a
//! generated computation-kernel datapath — the final integration step of
//! the paper's automation flow ("integrate the microarchitecture with
//! the computation kernel for a complete accelerator", §4).
//!
//! The kernel datapath stands in for the HLS-generated arithmetic: a
//! pipelined adder tree over all ports (every stencil reduces to a
//! weighted sum after constant folding; weights live in the HLS output
//! we do not model). It is fully pipelined at II = 1 with
//! `ceil(log2(n))` register stages, so integration timing is realistic.

use stencil_core::MemorySystemPlan;

use crate::error::RtlError;
use crate::verilog::{Port, VModule};

/// Generates the pipelined adder-tree kernel for `n` ports of width `w`.
#[must_use]
pub fn kernel_module(name: &str, ports: usize, width: u32) -> VModule {
    let mut m = VModule::new(
        name,
        format!(
            "Pipelined stand-in computation kernel: {ports}-port adder tree,\n\
             II = 1, latency = ceil(log2({ports})) stages."
        ),
    );
    m.param("W", width.to_string());
    m.port(Port::input("clk", 1));
    m.port(Port::input("fire", 1));
    for k in 0..ports {
        m.port(Port::input(format!("d{k}"), width));
    }
    m.port(Port::output("result", width));
    m.port(Port::output("result_valid", 1));

    // Stage 0: registered inputs.
    let mut level: Vec<String> = (0..ports).map(|k| format!("s0_{k}")).collect();
    for (k, net) in level.iter().enumerate() {
        m.line(format!("reg [W-1:0] {net};"));
        m.line(format!("always @(posedge clk) if (fire) {net} <= d{k};"));
    }
    m.line("reg v0;".to_owned());
    m.line("always @(posedge clk) v0 <= fire;".to_owned());
    let mut valid = "v0".to_owned();
    m.blank();

    // Reduction levels.
    let mut stage = 1usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (pair, chunk) in level.chunks(2).enumerate() {
            let net = format!("s{stage}_{pair}");
            m.line(format!("reg [W-1:0] {net};"));
            if chunk.len() == 2 {
                m.line(format!(
                    "always @(posedge clk) {net} <= {} + {};",
                    chunk[0], chunk[1]
                ));
            } else {
                m.line(format!("always @(posedge clk) {net} <= {};", chunk[0]));
            }
            next.push(net);
        }
        let v = format!("v{stage}");
        m.line(format!("reg {v};"));
        m.line(format!("always @(posedge clk) {v} <= {valid};"));
        valid = v;
        level = next;
        stage += 1;
        m.blank();
    }
    m.line(format!("assign result = {};", level[0]));
    m.line(format!("assign result_valid = {valid};"));
    m
}

/// Generates the complete accelerator top: the memory system plus the
/// kernel, exposing only the off-chip stream(s) and the result stream
/// (Fig. 3 of the paper).
///
/// # Errors
///
/// Propagates [`RtlError`] from (re)validation of the plan's domains.
pub fn accelerator_module(plan: &MemorySystemPlan) -> Result<VModule, RtlError> {
    // Validate domains the same way system generation does.
    plan.input_domain().index()?;
    let prefix: String = plan
        .name()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let w = plan.element_bits();
    let n = plan.port_count();
    let streams = plan.offchip_streams();

    let mut m = VModule::new(
        format!("{prefix}_accelerator"),
        format!(
            "Complete accelerator (DAC'14 Fig. 3): memory system for array {}\n\
             + pipelined computation kernel. {n} references, {streams} stream(s).",
            plan.array()
        ),
    );
    m.param("W", w.to_string());
    m.port(Port::input("clk", 1));
    m.port(Port::input("rst", 1));
    for s in 0..streams {
        m.port(Port::input(format!("in{s}_valid"), 1));
        m.port(Port::input(format!("in{s}_data"), w));
        m.port(Port::output(format!("in{s}_ready"), 1));
    }
    m.port(Port::output("out_data", w));
    m.port(Port::output("out_valid", 1));

    for k in 0..n {
        m.line(format!("wire port{k}_valid; wire [W-1:0] port{k}_data;"));
    }
    m.line("wire kernel_fire;".to_owned());
    m.blank();
    let mut conns = vec![
        ".clk(clk)".to_owned(),
        ".rst(rst)".to_owned(),
        ".kernel_ready(1'b1)".to_owned(),
        ".kernel_fire(kernel_fire)".to_owned(),
    ];
    for s in 0..streams {
        conns.push(format!(".in{s}_valid(in{s}_valid)"));
        conns.push(format!(".in{s}_data(in{s}_data)"));
        conns.push(format!(".in{s}_ready(in{s}_ready)"));
    }
    for k in 0..n {
        conns.push(format!(".port{k}_valid(port{k}_valid)"));
        conns.push(format!(".port{k}_data(port{k}_data)"));
    }
    m.line(format!(
        "{prefix}_mem_system #(.W(W)) u_mem ({});",
        conns.join(", ")
    ));
    let mut kconns = vec![".clk(clk)".to_owned(), ".fire(kernel_fire)".to_owned()];
    for k in 0..n {
        kconns.push(format!(".d{k}(port{k}_data)"));
    }
    kconns.push(".result(out_data)".to_owned());
    kconns.push(".result_valid(out_valid)".to_owned());
    m.line(format!(
        "{prefix}_kernel #(.W(W)) u_kernel ({});",
        kconns.join(", ")
    ));
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::lint;
    use stencil_core::StencilSpec;
    use stencil_polyhedral::{Point, Polyhedron};

    fn plan() -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 10), (1, 14)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn kernel_adder_tree_structure() {
        let text = kernel_module("k5", 5, 32).render();
        assert!(lint(&text).is_empty(), "{:?}\n{text}", lint(&text));
        // 5 -> 3 -> 2 -> 1: three reduction stages.
        assert!(text.contains("s1_2"), "{text}");
        assert!(text.contains("s3_0"), "{text}");
        assert!(text.contains("assign result = s3_0;"), "{text}");
        assert!(text.contains("assign result_valid = v3;"), "{text}");
    }

    #[test]
    fn single_port_kernel() {
        let text = kernel_module("k1", 1, 16).render();
        assert!(lint(&text).is_empty());
        assert!(text.contains("assign result = s0_0;"), "{text}");
    }

    #[test]
    fn accelerator_wires_mem_and_kernel() {
        let text = accelerator_module(&plan()).unwrap().render();
        assert!(lint(&text).is_empty(), "{:?}\n{text}", lint(&text));
        assert!(text.contains("denoise_mem_system #(.W(W)) u_mem"), "{text}");
        assert!(text.contains("denoise_kernel #(.W(W)) u_kernel"), "{text}");
        assert!(text.contains(".d4(port4_data)"), "{text}");
        assert!(text.contains("output wire out_valid"), "{text}");
    }

    #[test]
    fn tradeoff_accelerator_exposes_all_streams() {
        let p = plan().with_offchip_streams(3).unwrap();
        let text = accelerator_module(&p).unwrap().render();
        assert!(lint(&text).is_empty());
        assert!(text.contains("in2_ready"), "{text}");
    }
}
