//! RTL generation errors.

use std::error::Error;
use std::fmt;

use stencil_polyhedral::PolyError;

/// Errors raised while generating Verilog for a memory system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// Polyhedral bound derivation failed.
    Poly(PolyError),
    /// A domain constraint bounds a loop variable with a non-unit
    /// coefficient; the counter generator only emits adders and
    /// comparators (no dividers — that is the point of the design), so
    /// such domains are rejected.
    NonUnitCoefficient {
        /// The loop dimension whose bound needs a division.
        dim: usize,
        /// The offending coefficient.
        coefficient: i64,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Poly(e) => write!(f, "bound derivation failed: {e}"),
            RtlError::NonUnitCoefficient { dim, coefficient } => write!(
                f,
                "dimension {dim} is bounded with coefficient {coefficient}; \
                 RTL counters require unit coefficients (no dividers)"
            ),
        }
    }
}

impl Error for RtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RtlError::Poly(e) => Some(e),
            RtlError::NonUnitCoefficient { .. } => None,
        }
    }
}

impl From<PolyError> for RtlError {
    fn from(e: PolyError) -> Self {
        RtlError::Poly(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RtlError::NonUnitCoefficient {
            dim: 1,
            coefficient: 2,
        };
        assert!(e.to_string().contains("dimension 1"));
        assert!(e.source().is_none());
        let e = RtlError::from(PolyError::EmptyDomain);
        assert!(e.source().is_some());
    }
}
