//! # stencil-rtl
//!
//! Verilog RTL generation for the non-uniform reuse-buffer memory
//! system — the actual *output* of the DAC'14 paper's design-automation
//! flow (Fig. 11), which integrates the generated memory system with an
//! HLS-produced computation kernel.
//!
//! From a [`stencil_core::MemorySystemPlan`] this crate emits a complete
//! synthesizable design:
//!
//! * a top module wiring the splitter/FIFO/filter chain (Fig. 7), with
//!   one valid/ready input stream per off-chip access and one data port
//!   per array reference toward the kernel;
//! * a parametrized first-word-fall-through reuse FIFO with per-instance
//!   `ram_style` attributes carrying the heterogeneous mapping of
//!   Table 2 down to synthesis;
//! * per-reference data filters built from **lexicographic domain
//!   counters** whose bounds come from Fourier–Motzkin elimination —
//!   adders and comparators only, no dividers or modulo units (the
//!   source of the paper's slice/DSP savings), and supporting skewed
//!   polyhedral domains (Fig. 9).
//!
//! A structural linter double-checks every emitted file; the
//! cycle-level behaviour of the same netlist is validated by
//! `stencil-sim`, which implements identical semantics.
//!
//! # Example
//!
//! ```
//! use stencil_core::{MemorySystemPlan, StencilSpec};
//! use stencil_polyhedral::{Point, Polyhedron};
//! use stencil_rtl::generate;
//!
//! let spec = StencilSpec::new(
//!     "denoise",
//!     Polyhedron::rect(&[(1, 766), (1, 1022)]),
//!     vec![
//!         Point::new(&[-1, 0]),
//!         Point::new(&[0, -1]),
//!         Point::new(&[0, 0]),
//!         Point::new(&[0, 1]),
//!         Point::new(&[1, 0]),
//!     ],
//! )?;
//! let plan = MemorySystemPlan::generate(&spec)?;
//! let bundle = generate(&plan)?;
//! assert!(bundle.lint().is_empty());
//! assert!(bundle.concat().contains("module denoise_mem_system"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod accelerator;
mod counter;
mod error;
mod expr;
mod fifo;
mod filter;
mod system;
mod testbench;
pub mod verilog;

pub use accelerator::{accelerator_module, kernel_module};
pub use counter::{counter_module, COUNTER_WIDTH};
pub use error::RtlError;
pub use expr::{bound_expr, combine_bounds, BoundExpr};
pub use fifo::{fifo_module, ram_style};
pub use filter::{filter_rtl, FilterRtl};
pub use system::{generate, RtlBundle, RtlFile};
pub use testbench::testbench_module;
