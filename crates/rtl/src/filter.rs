//! Generation of the data filter module (Fig. 10 of the paper): two
//! lexicographic counters and a data switch. The input counter steps on
//! every accepted element; the output counter steps when the element is
//! forwarded to the kernel port; the element is forwarded exactly when
//! the two counters agree.

use stencil_polyhedral::Polyhedron;

use crate::counter::{counter_module, COUNTER_WIDTH};
use crate::error::RtlError;
use crate::verilog::{Port, VModule};

/// The generated filter plus its two counter submodules.
#[derive(Debug, Clone)]
pub struct FilterRtl {
    /// The filter module itself.
    pub filter: VModule,
    /// Counter over the input data domain `D_A`.
    pub in_counter: VModule,
    /// Counter over this reference's data domain `D_Ax`.
    pub out_counter: VModule,
}

/// Generates filter `k` of a memory system.
///
/// # Errors
///
/// Propagates counter-generation failures.
pub fn filter_rtl(
    prefix: &str,
    k: usize,
    input_domain: &Polyhedron,
    data_domain: &Polyhedron,
    width: u32,
) -> Result<FilterRtl, RtlError> {
    let in_name = format!("{prefix}_flt{k}_in_ctr");
    let out_name = format!("{prefix}_flt{k}_out_ctr");
    let in_counter = counter_module(&in_name, input_domain)?;
    let out_counter = counter_module(&out_name, data_domain)?;
    let m = input_domain.dims();
    let w = COUNTER_WIDTH;

    let mut f = VModule::new(
        format!("{prefix}_filter{k}"),
        format!(
            "Data filter {k}: selects D_Ax out of the input stream D_A\n\
             by comparing an input counter and an output counter\n\
             (Fig. 10 of the DAC'14 paper)."
        ),
    );
    f.param("W", width.to_string());
    f.port(Port::input("clk", 1));
    f.port(Port::input("rst", 1));
    f.port(Port::input("s_valid", 1));
    f.port(Port::input("s_data", width));
    f.port(Port::output("s_ready", 1));
    f.port(Port::output("k_valid", 1));
    f.port(Port::output("k_data", width));
    f.port(Port::input("k_ready", 1));

    for d in 0..m {
        f.line(format!("wire signed [{}:0] ic_x{d};", w - 1));
        f.line(format!("wire signed [{}:0] oc_x{d};", w - 1));
    }
    f.line("wire ic_done, oc_done;".to_owned());
    f.blank();
    // Port register (the element waiting for the kernel).
    f.line("reg port_full;".to_owned());
    f.line("reg [W-1:0] port_data;".to_owned());
    f.line("assign k_valid = port_full;".to_owned());
    f.line("assign k_data = port_data;".to_owned());
    f.blank();
    let eq: Vec<String> = (0..m).map(|d| format!("(ic_x{d} == oc_x{d})")).collect();
    f.line(format!("wire sel = !oc_done && {};", eq.join(" && ")));
    f.line("wire port_free = !port_full || k_ready;".to_owned());
    f.line("wire discard = s_valid && !sel;".to_owned());
    f.line("wire forward = s_valid && sel && port_free;".to_owned());
    f.line("assign s_ready = discard || forward;".to_owned());
    f.blank();
    f.line("always @(posedge clk) begin".to_owned());
    f.line("    if (rst) begin".to_owned());
    f.line("        port_full <= 1'b0;".to_owned());
    f.line("        port_data <= {W{1'b0}};".to_owned());
    f.line("    end else begin".to_owned());
    f.line("        if (forward) begin".to_owned());
    f.line("            port_full <= 1'b1;".to_owned());
    f.line("            port_data <= s_data;".to_owned());
    f.line("        end else if (k_ready && port_full) begin".to_owned());
    f.line("            port_full <= 1'b0;".to_owned());
    f.line("        end".to_owned());
    f.line("    end".to_owned());
    f.line("end".to_owned());
    f.blank();
    f.line(format!(
        "{in_name} u_in_ctr (.clk(clk), .rst(rst), .step(s_ready && s_valid), {} .done(ic_done));",
        (0..m)
            .map(|d| format!(".x{d}(ic_x{d}),"))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    f.line(format!(
        "{out_name} u_out_ctr (.clk(clk), .rst(rst), .step(forward), {} .done(oc_done));",
        (0..m)
            .map(|d| format!(".x{d}(oc_x{d}),"))
            .collect::<Vec<_>>()
            .join(" ")
    ));

    Ok(FilterRtl {
        filter: f,
        in_counter,
        out_counter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::lint;

    #[test]
    fn filter_structure() {
        let input = Polyhedron::grid(&[8, 8]);
        let data = Polyhedron::rect(&[(2, 7), (1, 6)]);
        let rtl = filter_rtl("denoise", 0, &input, &data, 32).unwrap();
        let text = rtl.filter.render();
        assert!(lint(&text).is_empty(), "{:?}\n{text}", lint(&text));
        assert!(text.contains("module denoise_filter0"), "{text}");
        assert!(
            text.contains("(ic_x0 == oc_x0) && (ic_x1 == oc_x1)"),
            "{text}"
        );
        assert!(text.contains("denoise_flt0_in_ctr u_in_ctr"), "{text}");
        assert!(rtl
            .in_counter
            .render()
            .contains("module denoise_flt0_in_ctr"));
        assert!(rtl
            .out_counter
            .render()
            .contains("module denoise_flt0_out_ctr"));
    }

    #[test]
    fn whole_bundle_lints() {
        let input = Polyhedron::grid(&[8, 8]);
        let data = Polyhedron::rect(&[(0, 5), (1, 6)]);
        let rtl = filter_rtl("t", 3, &input, &data, 16).unwrap();
        for m in [&rtl.filter, &rtl.in_counter, &rtl.out_counter] {
            let text = m.render();
            assert!(lint(&text).is_empty(), "{}: {:?}", m.name(), lint(&text));
        }
    }
}
