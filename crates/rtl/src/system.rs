//! Top-level memory-system RTL generation: wires the splitters, reuse
//! FIFOs and data filters of a [`MemorySystemPlan`] into the complete
//! circuit of the paper's Fig. 7.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use stencil_core::{Feed, MemorySystemPlan};

use crate::error::RtlError;
use crate::fifo::{fifo_module, ram_style};
use crate::filter::filter_rtl;
use crate::verilog::{lint, Port, VModule};

/// One generated Verilog file.
#[derive(Debug, Clone)]
pub struct RtlFile {
    /// Suggested file name.
    pub name: String,
    /// Verilog source text.
    pub contents: String,
}

/// A complete generated design.
#[derive(Debug, Clone)]
pub struct RtlBundle {
    files: Vec<RtlFile>,
}

impl RtlBundle {
    /// The generated files, top module first.
    #[must_use]
    pub fn files(&self) -> &[RtlFile] {
        &self.files
    }

    /// All files concatenated into one source text.
    #[must_use]
    pub fn concat(&self) -> String {
        let mut s = String::new();
        for f in &self.files {
            let _ = writeln!(s, "// ===== {} =====", f.name);
            s.push_str(&f.contents);
            s.push('\n');
        }
        s
    }

    /// Writes each file into `dir` (created if missing), plus a
    /// `files.f` compile-order file list.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for f in &self.files {
            fs::write(dir.join(&f.name), &f.contents)?;
        }
        fs::write(dir.join("files.f"), self.filelist())?;
        Ok(())
    }

    /// The conventional EDA file list (`files.f`): one path per line,
    /// compile order (leaf modules before the top).
    #[must_use]
    pub fn filelist(&self) -> String {
        let mut names: Vec<&str> = self.files.iter().map(|f| f.name.as_str()).collect();
        names.reverse(); // leaves first, top last
        let mut out = names.join("\n");
        out.push('\n');
        out
    }

    /// Runs the structural linter over every file; returns all problems.
    #[must_use]
    pub fn lint(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in &self.files {
            for p in lint(&f.contents) {
                out.push(format!("{}: {p}", f.name));
            }
        }
        out
    }
}

/// The generic stream fork (data path splitter): forwards the upstream
/// element simultaneously to the local filter (`a`) and the next reuse
/// FIFO (`b`); `B_EN = 0` drops the `b` branch for the chain tail.
fn splitter_module(name: &str) -> VModule {
    let mut m = VModule::new(
        name,
        "Data path splitter: valid/ready fork to the local data filter\n\
         and the successive reuse FIFO.",
    );
    m.param("W", "32");
    m.param("B_EN", "1");
    m.port(Port::input("in_valid", 1));
    m.port(Port::input("in_data", 32));
    m.port(Port::output("in_ready", 1));
    m.port(Port::output("a_valid", 1));
    m.port(Port::output("a_data", 32));
    m.port(Port::input("a_ready", 1));
    m.port(Port::output("b_valid", 1));
    m.port(Port::output("b_data", 32));
    m.port(Port::input("b_ready", 1));
    for line in [
        "wire b_rdy = B_EN ? b_ready : 1'b1;",
        "assign in_ready = a_ready && b_rdy;",
        "assign a_valid = in_valid && b_rdy;",
        "assign b_valid = B_EN ? (in_valid && a_ready) : 1'b0;",
        "assign a_data = in_data;",
        "assign b_data = in_data;",
    ] {
        m.line(line);
    }
    m
}

/// Generates the complete Verilog design for one memory system.
///
/// The bundle contains, in order: the top module, the shared splitter
/// and FIFO modules, and per-reference filter + counter modules.
///
/// # Errors
///
/// Propagates [`RtlError`] from counter generation (unbounded domains or
/// non-unit bound coefficients).
#[allow(clippy::needless_range_loop)] // k is a chain position, indexing parallel nets
pub fn generate(plan: &MemorySystemPlan) -> Result<RtlBundle, RtlError> {
    let prefix = sanitize(plan.name());
    let w = plan.element_bits();
    let n = plan.port_count();
    let mut files = Vec::new();

    // Top module.
    let mut top = VModule::new(
        format!("{prefix}_mem_system"),
        format!(
            "Memory system for stencil accesses to array {} (DAC'14 Fig. 7).\n\
             {} references, {} reuse FIFOs, {} off-chip stream(s).",
            plan.array(),
            n,
            plan.bank_count(),
            plan.offchip_streams()
        ),
    );
    top.param("W", w.to_string());
    top.port(Port::input("clk", 1));
    top.port(Port::input("rst", 1));
    let mut stream_idx = 0usize;
    let mut feed_src: Vec<String> = Vec::with_capacity(n);
    for feed in plan.feeds() {
        match feed {
            Feed::Offchip => {
                top.port(Port::input(format!("in{stream_idx}_valid"), 1));
                top.port(Port::input(format!("in{stream_idx}_data"), w));
                top.port(Port::output(format!("in{stream_idx}_ready"), 1));
                feed_src.push(format!("in{stream_idx}"));
                stream_idx += 1;
            }
            Feed::Fifo { .. } => {
                feed_src.push(String::new()); // filled by FIFO nets below
            }
        }
    }
    for k in 0..n {
        top.port(Port::output(format!("port{k}_valid"), 1));
        top.port(Port::output(format!("port{k}_data"), w));
    }
    top.port(Port::input("kernel_ready", 1));
    top.port(Port::output("kernel_fire", 1));

    // Internal nets.
    for k in 0..n {
        top.line(format!(
            "wire f{k}_s_valid; wire [W-1:0] f{k}_s_data; wire f{k}_s_ready;"
        ));
        if matches!(plan.feeds().get(k + 1), Some(Feed::Fifo { .. })) {
            top.line(format!(
                "wire q{k}_wr_valid; wire [W-1:0] q{k}_wr_data; wire q{k}_wr_ready;"
            ));
        }
        if matches!(plan.feeds()[k], Feed::Fifo { .. }) {
            top.line(format!(
                "wire q{kk}_rd_valid; wire [W-1:0] q{kk}_rd_data; wire q{kk}_rd_ready;",
                kk = k - 1
            ));
        }
    }
    top.blank();
    // Kernel firing: consume all ports simultaneously (II = 1 contract).
    let all_valid: Vec<String> = (0..n).map(|k| format!("port{k}_valid")).collect();
    top.line(format!(
        "assign kernel_fire = kernel_ready && {};",
        all_valid.join(" && ")
    ));
    top.blank();

    // Chain instances.
    for k in 0..n {
        let (src_valid, src_data, src_ready) = match &plan.feeds()[k] {
            Feed::Offchip => {
                let s = &feed_src[k];
                (
                    format!("{s}_valid"),
                    format!("{s}_data"),
                    format!("{s}_ready"),
                )
            }
            Feed::Fifo { .. } => (
                format!("q{}_rd_valid", k - 1),
                format!("q{}_rd_data", k - 1),
                format!("q{}_rd_ready", k - 1),
            ),
        };
        let has_b = matches!(plan.feeds().get(k + 1), Some(Feed::Fifo { .. }));
        let (b_valid, b_data, b_ready) = if has_b {
            (
                format!("q{k}_wr_valid"),
                format!("q{k}_wr_data"),
                format!("q{k}_wr_ready"),
            )
        } else {
            ("/* open */".into(), "/* open */".into(), "1'b1".into()) // tied off below
        };
        if has_b {
            top.line(format!(
                "{prefix}_splitter #(.W(W), .B_EN(1)) u_split{k} (\
                 .in_valid({src_valid}), .in_data({src_data}), .in_ready({src_ready}), \
                 .a_valid(f{k}_s_valid), .a_data(f{k}_s_data), .a_ready(f{k}_s_ready), \
                 .b_valid({b_valid}), .b_data({b_data}), .b_ready({b_ready}));"
            ));
        } else {
            top.line(format!(
                "{prefix}_splitter #(.W(W), .B_EN(0)) u_split{k} (\
                 .in_valid({src_valid}), .in_data({src_data}), .in_ready({src_ready}), \
                 .a_valid(f{k}_s_valid), .a_data(f{k}_s_data), .a_ready(f{k}_s_ready), \
                 .b_valid(), .b_data(), .b_ready(1'b1));"
            ));
        }
        top.line(format!(
            "{prefix}_filter{k} #(.W(W)) u_filter{k} (.clk(clk), .rst(rst), \
             .s_valid(f{k}_s_valid), .s_data(f{k}_s_data), .s_ready(f{k}_s_ready), \
             .k_valid(port{k}_valid), .k_data(port{k}_data), .k_ready(kernel_fire));"
        ));
        if let Feed::Fifo { capacity, storage } = &plan.feeds()[k] {
            top.line(format!(
                "{prefix}_reuse_fifo #(.DEPTH({depth}), .W(W), .STYLE(\"{style}\")) u_fifo{kk} (\
                 .clk(clk), .rst(rst), \
                 .wr_valid(q{kk}_wr_valid), .wr_data(q{kk}_wr_data), .wr_ready(q{kk}_wr_ready), \
                 .rd_valid(q{kk}_rd_valid), .rd_data(q{kk}_rd_data), .rd_ready(q{kk}_rd_ready));",
                depth = capacity.max(&1),
                style = ram_style(*storage),
                kk = k - 1,
            ));
        }
        top.blank();
    }
    files.push(to_file(&top));

    files.push(to_file(&splitter_module(&format!("{prefix}_splitter"))));
    files.push(to_file(&fifo_module(&format!("{prefix}_reuse_fifo"))));

    for (k, flt) in plan.filters().iter().enumerate() {
        let rtl = filter_rtl(&prefix, k, plan.input_domain(), &flt.data_domain, w)?;
        files.push(to_file(&rtl.filter));
        files.push(to_file(&rtl.in_counter));
        files.push(to_file(&rtl.out_counter));
    }
    files.push(to_file(&crate::testbench::testbench_module(plan)?));
    files.push(to_file(&crate::accelerator::kernel_module(
        &format!("{prefix}_kernel"),
        n,
        w,
    )));
    files.push(to_file(&crate::accelerator::accelerator_module(plan)?));

    Ok(RtlBundle { files })
}

fn to_file(m: &VModule) -> RtlFile {
    RtlFile {
        name: format!("{}.v", m.name()),
        contents: m.render(),
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::StencilSpec;
    use stencil_polyhedral::{Point, Polyhedron};

    fn denoise_plan() -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 30), (1, 30)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn generates_complete_clean_bundle() {
        let bundle = generate(&denoise_plan()).unwrap();
        assert!(bundle.lint().is_empty(), "{:?}", bundle.lint());
        // Top + splitter + fifo + 5 * (filter + 2 counters) + testbench
        // + kernel + accelerator.
        assert_eq!(bundle.files().len(), 3 + 5 * 3 + 3);
        assert!(
            bundle.files().iter().any(|f| f.name.starts_with("tb_")),
            "testbench missing"
        );
        let top = &bundle.files()[0];
        assert!(top.name.ends_with("_mem_system.v"));
        assert!(top.contents.contains("u_fifo0"), "{}", top.contents);
        assert!(top.contents.contains("u_fifo3"), "{}", top.contents);
        assert!(!top.contents.contains("u_fifo4"), "{}", top.contents);
        // Non-uniform depths appear as instance parameters.
        assert!(top.contents.contains(".DEPTH(31)"), "{}", top.contents);
        assert!(top.contents.contains(".DEPTH(1)"), "{}", top.contents);
        // Heterogeneous mapping reaches synthesis attributes.
        assert!(
            top.contents.contains(".STYLE(\"registers\")"),
            "{}",
            top.contents
        );
    }

    #[test]
    fn tradeoff_design_has_two_streams() {
        let plan = denoise_plan().with_offchip_streams(2).unwrap();
        let bundle = generate(&plan).unwrap();
        let top = &bundle.files()[0].contents;
        assert!(top.contains("in0_valid"), "{top}");
        assert!(top.contains("in1_valid"), "{top}");
        assert!(bundle.lint().is_empty(), "{:?}", bundle.lint());
    }

    #[test]
    fn concat_and_roundtrip_to_dir() {
        let bundle = generate(&denoise_plan()).unwrap();
        let all = bundle.concat();
        assert!(all.contains("===== denoise_mem_system.v ====="));
        let dir = std::env::temp_dir().join("stencil_rtl_test_out");
        bundle.write_to_dir(&dir).unwrap();
        let top = std::fs::read_to_string(dir.join("denoise_mem_system.v")).unwrap();
        assert!(top.contains("module denoise_mem_system"));
        let filelist = std::fs::read_to_string(dir.join("files.f")).unwrap();
        // Compile order: leaves first, top module last.
        assert!(
            filelist.trim_end().ends_with("denoise_mem_system.v"),
            "{filelist}"
        );
        assert_eq!(filelist.lines().count(), bundle.files().len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("denoise-3d"), "denoise_3d");
        assert_eq!(sanitize("3dkernel"), "_3dkernel");
    }
}
