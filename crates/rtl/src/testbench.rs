//! Self-checking testbench generation: drives the generated memory
//! system with a ramp data stream, lets the kernel consume at full
//! rate, and checks the firing count against the iteration-domain size
//! computed at generation time.

use stencil_core::MemorySystemPlan;

use crate::error::RtlError;
use crate::verilog::VModule;

/// Generates a behavioural testbench for a memory system.
///
/// The testbench asserts reset, streams monotonically increasing data
/// words on every off-chip input at full rate, keeps `kernel_ready`
/// high, counts `kernel_fire` pulses, and reports PASS/FAIL against the
/// expected output count.
///
/// # Errors
///
/// Returns [`RtlError::Poly`] if the iteration domain cannot be
/// indexed.
pub fn testbench_module(plan: &MemorySystemPlan) -> Result<VModule, RtlError> {
    let expected = plan.iteration_domain().index()?.len();
    let streams = plan.offchip_streams();
    let prefix: String = plan
        .name()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let w = plan.element_bits();

    let mut tb = VModule::new(
        format!("tb_{prefix}_mem_system"),
        format!(
            "Self-checking testbench: expects {expected} kernel firings.\n\
             Run with e.g. `iverilog -o tb *.v && ./tb`."
        ),
    );
    tb.line("reg clk = 1'b0;");
    tb.line("reg rst = 1'b1;");
    tb.line("always #2500 clk = ~clk; // 200 MHz");
    tb.blank();
    for s in 0..streams {
        tb.line(format!("reg in{s}_valid = 1'b0;"));
        tb.line(format!("reg [{}:0] in{s}_data = 0;", w - 1));
        tb.line(format!("wire in{s}_ready;"));
    }
    for k in 0..plan.port_count() {
        tb.line(format!("wire port{k}_valid;"));
        tb.line(format!("wire [{}:0] port{k}_data;", w - 1));
    }
    tb.line("wire kernel_fire;");
    tb.line("integer fires = 0;");
    tb.line("integer cycles = 0;");
    tb.blank();

    // DUT instantiation.
    let mut conns = vec![
        ".clk(clk)".to_owned(),
        ".rst(rst)".to_owned(),
        ".kernel_ready(1'b1)".to_owned(),
        ".kernel_fire(kernel_fire)".to_owned(),
    ];
    for s in 0..streams {
        conns.push(format!(".in{s}_valid(in{s}_valid)"));
        conns.push(format!(".in{s}_data(in{s}_data)"));
        conns.push(format!(".in{s}_ready(in{s}_ready)"));
    }
    for k in 0..plan.port_count() {
        conns.push(format!(".port{k}_valid(port{k}_valid)"));
        conns.push(format!(".port{k}_data(port{k}_data)"));
    }
    tb.line(format!(
        "{prefix}_mem_system #(.W({w})) dut ({});",
        conns.join(", ")
    ));
    tb.blank();

    tb.line("initial begin".to_owned());
    tb.line("    repeat (4) @(posedge clk);".to_owned());
    tb.line("    rst <= 1'b0;".to_owned());
    for s in 0..streams {
        tb.line(format!("    in{s}_valid <= 1'b1;"));
    }
    tb.line("end".to_owned());
    tb.blank();
    for s in 0..streams {
        tb.line(format!(
            "always @(posedge clk) if (!rst && in{s}_valid && in{s}_ready) \
             in{s}_data <= in{s}_data + 1;"
        ));
    }
    tb.blank();
    tb.line("always @(posedge clk) begin".to_owned());
    tb.line("    if (!rst) cycles <= cycles + 1;".to_owned());
    tb.line("    if (kernel_fire) fires <= fires + 1;".to_owned());
    tb.line(format!("    if (fires == {expected}) begin"));
    tb.line("        $display(\"PASS: all firings observed in %0d cycles\", cycles);".to_owned());
    tb.line("        $finish;".to_owned());
    tb.line("    end".to_owned());
    tb.line(format!(
        "    if (cycles > {}) begin",
        expected * 8 + 100_000
    ));
    tb.line(format!(
        "        $display(\"FAIL: only %0d of {expected} firings\", fires);"
    ));
    tb.line("        $finish;".to_owned());
    tb.line("    end".to_owned());
    tb.line("end".to_owned());

    Ok(tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::lint;
    use stencil_core::StencilSpec;
    use stencil_polyhedral::{Point, Polyhedron};

    fn plan() -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 14), (1, 18)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn testbench_structure() {
        let tb = testbench_module(&plan()).unwrap();
        let text = tb.render();
        assert!(lint(&text).is_empty(), "{:?}\n{text}", lint(&text));
        assert!(text.contains("module tb_denoise_mem_system"), "{text}");
        assert!(text.contains("denoise_mem_system #(.W(32)) dut"), "{text}");
        // 14 * 18 iterations expected.
        assert!(text.contains("fires == 252"), "{text}");
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn tradeoff_testbench_drives_all_streams() {
        let p = plan().with_offchip_streams(3).unwrap();
        let tb = testbench_module(&p).unwrap();
        let text = tb.render();
        assert!(lint(&text).is_empty(), "{:?}", lint(&text));
        assert!(text.contains("in0_valid"), "{text}");
        assert!(text.contains("in2_valid"), "{text}");
        assert!(text.contains(".in2_ready(in2_ready)"), "{text}");
    }

    #[test]
    fn feed_enum_is_respected() {
        // Only off-chip feeds appear as testbench drivers.
        use stencil_core::Feed;
        let p = plan();
        let streams = p
            .feeds()
            .iter()
            .filter(|f| matches!(f, Feed::Offchip))
            .count();
        let tb = testbench_module(&p).unwrap().render();
        for s in 0..streams {
            assert!(tb.contains(&format!("in{s}_data")));
        }
        assert!(!tb.contains(&format!("in{streams}_data")));
    }
}
