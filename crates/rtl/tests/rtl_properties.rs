//! Property-based validation of RTL generation: every generated design
//! must pass the structural linter and contain no division operators,
//! over random windows and (possibly skewed) domains.

use proptest::prelude::*;
use stencil_core::{MemorySystemPlan, StencilSpec};
use stencil_polyhedral::{Constraint, Point, Polyhedron};
use stencil_rtl::{counter_module, generate, verilog::lint};

fn window_2d() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6)
        .prop_map(|set| set.into_iter().map(|(a, b)| Point::new(&[a, b])).collect())
}

fn code_only(text: &str) -> String {
    text.lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_bundles_always_lint_clean(
        window in window_2d(),
        rows in 8i64..40,
        cols in 8i64..40,
    ) {
        let lo0 = window.iter().map(|f| f[0]).min().unwrap().min(0).abs();
        let hi0 = window.iter().map(|f| f[0]).max().unwrap().max(0);
        let lo1 = window.iter().map(|f| f[1]).min().unwrap().min(0).abs();
        let hi1 = window.iter().map(|f| f[1]).max().unwrap().max(0);
        let spec = StencilSpec::new(
            "rand",
            Polyhedron::rect(&[(lo0, rows - 1 - hi0), (lo1, cols - 1 - hi1)]),
            window.clone(),
        ).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let bundle = generate(&plan).expect("rtl");
        prop_assert!(bundle.lint().is_empty(), "{:?}", bundle.lint());
        // 3 shared modules + 3 per reference + testbench + kernel +
        // accelerator top.
        prop_assert_eq!(bundle.files().len(), 6 + 3 * window.len());
        // No division or modulo operators anywhere in the synthesizable
        // code (the testbench uses `%0d` format strings and is exempt).
        for f in bundle.files().iter().filter(|f| !f.name.starts_with("tb_")) {
            let code = code_only(&f.contents);
            prop_assert!(!code.contains('/'), "{}", f.name);
            prop_assert!(!code.contains('%'), "{}", f.name);
        }
    }

    #[test]
    fn counters_over_random_boxes_lint_clean(
        lo0 in -5i64..5, e0 in 2i64..12,
        lo1 in -5i64..5, e1 in 2i64..12,
        lo2 in -5i64..5, e2 in 2i64..12,
    ) {
        let dom = Polyhedron::rect(&[
            (lo0, lo0 + e0),
            (lo1, lo1 + e1),
            (lo2, lo2 + e2),
        ]);
        let m = counter_module("prop_ctr", &dom).expect("counter");
        let text = m.render();
        prop_assert!(lint(&text).is_empty(), "{:?}", lint(&text));
        prop_assert!(text.contains("wire wrap2"));
    }

    #[test]
    fn counters_over_skewed_domains_lint_clean(
        rows in 4i64..20,
        width in 3i64..12,
    ) {
        let dom = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 1, 1),
                Constraint::upper_bound(2, 1, width),
                Constraint::new(&[1, -1], -1),
                Constraint::new(&[-1, 1], rows),
            ],
        );
        let m = counter_module("skew_ctr", &dom).expect("counter");
        let text = m.render();
        prop_assert!(lint(&text).is_empty(), "{:?}", lint(&text));
        // The inner lower bound must reference the outer coordinate.
        prop_assert!(text.contains("n0"), "{text}");
    }
}
