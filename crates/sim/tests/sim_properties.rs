//! Property-based validation of the cycle-accurate machine over random
//! windows, grids, dimensionalities, and skewed domains.

use proptest::prelude::*;
use stencil_core::{MemorySystemPlan, StencilSpec};
use stencil_polyhedral::{Constraint, Point, Polyhedron};
use stencil_sim::{check_trace, predicted_fill_latency, predicted_total_cycles, Machine};

fn spec_1d(offs: &[i64], extent: i64) -> StencilSpec {
    let window: Vec<Point> = offs.iter().map(|&o| Point::new(&[o])).collect();
    let lo = offs.iter().min().unwrap().min(&0).abs();
    let hi = *offs.iter().max().unwrap().max(&0);
    StencilSpec::new("rand1d", Polyhedron::rect(&[(lo, extent - 1 - hi)]), window).expect("spec")
}

fn spec_3d(offs: &[(i64, i64, i64)], e: i64) -> StencilSpec {
    let window: Vec<Point> = offs
        .iter()
        .map(|&(a, b, c)| Point::new(&[a, b, c]))
        .collect();
    let mut bounds = Vec::new();
    for d in 0..3 {
        let get = |t: &(i64, i64, i64)| match d {
            0 => t.0,
            1 => t.1,
            _ => t.2,
        };
        let lo = offs.iter().map(get).min().unwrap().min(0).abs();
        let hi = offs.iter().map(get).max().unwrap().max(0);
        bounds.push((lo, e - 1 - hi));
    }
    StencilSpec::new("rand3d", Polyhedron::rect(&bounds), window).expect("spec")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn one_d_machines_run_bandwidth_limited(
        offs in prop::collection::btree_set(-4i64..=4, 2..=6),
        extent in 16i64..120,
    ) {
        let offs: Vec<i64> = offs.into_iter().collect();
        let spec = spec_1d(&offs, extent);
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let stats = Machine::new(&plan).expect("machine")
            .run(1_000_000).expect("run");
        prop_assert_eq!(
            stats.outputs,
            spec.iteration_domain().count().expect("count")
        );
        prop_assert!(stats.fully_pipelined());
        prop_assert!(stats.chains[0].occupancy_reaches_capacity());
    }

    #[test]
    fn three_d_machines_run_bandwidth_limited(
        offs in prop::collection::btree_set(
            ((-1i64..=1), (-1i64..=1), (-1i64..=1)), 2..=8),
        e in 5i64..9,
    ) {
        let offs: Vec<(i64, i64, i64)> = offs.into_iter().collect();
        let spec = spec_3d(&offs, e);
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let stats = Machine::new(&plan).expect("machine")
            .run(5_000_000).expect("run");
        prop_assert_eq!(
            stats.outputs,
            spec.iteration_domain().count().expect("count")
        );
        prop_assert!(stats.fully_pipelined(),
            "cycles {} ideal {}", stats.cycles, stats.ideal_cycles);
        prop_assert!(stats.chains[0].occupancy_within_capacity());
    }

    #[test]
    fn skewed_domains_complete_within_capacity(
        rows in 6i64..20,
        width in 4i64..12,
        dx in 0i64..2,
    ) {
        // Antidiagonal iteration of a rows x width rectangle, with a
        // window mixing straight and diagonal taps.
        let iter = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 1, 1),
                Constraint::upper_bound(2, 1, width),
                Constraint::new(&[1, -1], -1),
                Constraint::new(&[-1, 1], rows),
            ],
        );
        let window = vec![
            Point::new(&[-1, -dx]),
            Point::new(&[0, 0]),
            Point::new(&[1, dx]),
        ];
        let spec = StencilSpec::new("skewprop", iter, window).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let stats = Machine::new(&plan).expect("machine")
            .run(5_000_000).expect("run");
        prop_assert_eq!(stats.outputs, (rows * width) as u64);
        prop_assert!(stats.chains[0].occupancy_within_capacity(),
            "occupancy {:?} capacity {:?}",
            stats.chains[0].fifo_max_occupancy,
            stats.chains[0].fifo_capacity);
    }

    /// The closed-form latency model is exact on every rectangular
    /// machine.
    #[test]
    fn latency_predictions_exact(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 8i64..20,
        cols in 8i64..20,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let window: Vec<Point> =
            offs.iter().map(|&(a, b)| Point::new(&[a, b])).collect();
        let lo0 = offs.iter().map(|t| t.0).min().unwrap().min(0).abs();
        let hi0 = offs.iter().map(|t| t.0).max().unwrap().max(0);
        let lo1 = offs.iter().map(|t| t.1).min().unwrap().min(0).abs();
        let hi1 = offs.iter().map(|t| t.1).max().unwrap().max(0);
        let spec = StencilSpec::new(
            "lat",
            Polyhedron::rect(&[(lo0, rows - 1 - hi0), (lo1, cols - 1 - hi1)]),
            window,
        ).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let stats = Machine::new(&plan).expect("machine")
            .run(1_000_000).expect("run");
        prop_assert_eq!(stats.fill_latency,
            predicted_fill_latency(&plan).expect("fill"));
        prop_assert_eq!(stats.cycles,
            predicted_total_cycles(&plan).expect("total"));
    }

    /// Every real trace passes the independent structural checker:
    /// capacity bounds, per-FIFO flow conservation, and stream
    /// monotonicity hold on every recorded cycle.
    #[test]
    fn traces_always_pass_the_independent_checker(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 8i64..16,
        cols in 8i64..16,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let window: Vec<Point> =
            offs.iter().map(|&(a, b)| Point::new(&[a, b])).collect();
        let lo0 = offs.iter().map(|t| t.0).min().unwrap().min(0).abs();
        let hi0 = offs.iter().map(|t| t.0).max().unwrap().max(0);
        let lo1 = offs.iter().map(|t| t.1).min().unwrap().min(0).abs();
        let hi1 = offs.iter().map(|t| t.1).max().unwrap().max(0);
        let spec = StencilSpec::new(
            "chk",
            Polyhedron::rect(&[(lo0, rows - 1 - hi0), (lo1, cols - 1 - hi1)]),
            window,
        ).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let mut m = Machine::new(&plan).expect("machine");
        m.enable_trace(0, 4096);
        m.run(1_000_000).expect("run");
        let violations = check_trace(&plan, m.trace(0).expect("trace"));
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn stream_latency_shifts_but_never_slows(
        offs in prop::collection::btree_set(-3i64..=3, 2..=5),
        latency in 0u64..40,
    ) {
        let offs: Vec<i64> = offs.into_iter().collect();
        let spec = spec_1d(&offs, 60);
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let base = Machine::new(&plan).expect("m").run(1_000_000).expect("run");
        let delayed = Machine::with_stream_latency(&plan, latency).expect("m")
            .run(1_000_000).expect("run");
        prop_assert_eq!(delayed.outputs, base.outputs);
        prop_assert_eq!(delayed.cycles, base.cycles + latency);
    }

    /// Eq. (2) tightness is not a planner artifact: on every random
    /// rectangular machine the *live* occupancy high-water mark of
    /// every reuse FIFO lands exactly on its planned capacity (with
    /// capacity-0 FIFOs promoted to the one register the hardware
    /// allocates), and the full bound validator finds nothing to flag.
    #[test]
    fn fifo_high_water_always_equals_planned_capacity(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        rows in 8i64..20,
        cols in 8i64..20,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let window: Vec<Point> =
            offs.iter().map(|&(a, b)| Point::new(&[a, b])).collect();
        let lo0 = offs.iter().map(|t| t.0).min().unwrap().min(0).abs();
        let hi0 = offs.iter().map(|t| t.0).max().unwrap().max(0);
        let lo1 = offs.iter().map(|t| t.1).min().unwrap().min(0).abs();
        let hi1 = offs.iter().map(|t| t.1).max().unwrap().max(0);
        let spec = StencilSpec::new(
            "hwm",
            Polyhedron::rect(&[(lo0, rows - 1 - hi0), (lo1, cols - 1 - hi1)]),
            window,
        ).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let mut m = Machine::new(&plan).expect("machine");
        m.enable_occupancy_sampling();
        m.run(1_000_000).expect("run");
        let metrics = m.metrics();
        let caps: Vec<u64> = metrics
            .chains
            .iter()
            .flat_map(|c| c.fifos.iter().map(|f| f.capacity))
            .collect();
        prop_assert_eq!(caps, plan.fifo_capacities());
        for chain in &metrics.chains {
            for fifo in &chain.fifos {
                prop_assert_eq!(fifo.high_water, fifo.capacity.max(1));
            }
        }
        let violations = stencil_telemetry::validate_machine(&metrics);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// Every live telemetry report survives the JSON round trip
    /// bit-for-bit — counters, histograms, and plan facts included.
    #[test]
    fn telemetry_reports_roundtrip_through_json(
        offs in prop::collection::btree_set(-4i64..=4, 2..=6),
        extent in 16i64..80,
        streams_pick in 0usize..3,
    ) {
        let offs: Vec<i64> = offs.into_iter().collect();
        let spec = spec_1d(&offs, extent);
        let streams = 1 + streams_pick % offs.len();
        let plan = MemorySystemPlan::generate(&spec).expect("plan")
            .with_offchip_streams(streams).expect("tradeoff");
        let mut m = Machine::new(&plan).expect("machine");
        m.enable_occupancy_sampling();
        m.run(1_000_000).expect("run");
        let mut report = stencil_telemetry::MetricsReport::new(spec.name());
        report.machine = Some(m.metrics());
        let reparsed = stencil_telemetry::MetricsReport::parse(&report.to_json())
            .expect("parse");
        prop_assert_eq!(reparsed, report);
    }

    #[test]
    fn every_tradeoff_point_is_equivalent(
        offs in prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=6),
        streams_pick in 0usize..6,
    ) {
        let offs: Vec<(i64, i64)> = offs.into_iter().collect();
        let window: Vec<Point> =
            offs.iter().map(|&(a, b)| Point::new(&[a, b])).collect();
        let lo0 = offs.iter().map(|t| t.0).min().unwrap().min(0).abs();
        let hi0 = offs.iter().map(|t| t.0).max().unwrap().max(0);
        let lo1 = offs.iter().map(|t| t.1).min().unwrap().min(0).abs();
        let hi1 = offs.iter().map(|t| t.1).max().unwrap().max(0);
        let spec = StencilSpec::new(
            "rand2d",
            Polyhedron::rect(&[(lo0, 13 - hi0), (lo1, 17 - hi1)]),
            window.clone(),
        ).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let streams = 1 + streams_pick % window.len();
        let traded = plan.with_offchip_streams(streams).expect("tradeoff");
        let a = Machine::new(&plan).expect("m").run(1_000_000).expect("run");
        let b = Machine::new(&traded).expect("m").run(1_000_000).expect("run");
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert!(b.fully_pipelined());
    }
}
