//! The VCD export of a real DENOISE run must be a well-formed VCD
//! document: parseable declarations, one signal per filter and per
//! reuse FIFO (plus the stream element counter), strictly increasing
//! timestamps, and every value change referencing a declared signal.

use std::collections::BTreeSet;

use stencil_core::{MemorySystemPlan, StencilSpec};
use stencil_polyhedral::{Point, Polyhedron};
use stencil_sim::{trace_to_vcd, Machine};

fn denoise_spec() -> StencilSpec {
    StencilSpec::new(
        "denoise",
        Polyhedron::rect(&[(1, 22), (1, 28)]),
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ],
    )
    .expect("spec")
}

/// A declared VCD variable: `(width, id, name)`.
type VcdVar = (u32, String, String);
/// A VCD change block: `(timestamp, changed ids)`.
type VcdBlock = (u64, Vec<String>);

/// Minimal VCD reader: returns the declared variables and the body's
/// change blocks.
fn parse_vcd(text: &str) -> (Vec<VcdVar>, Vec<VcdBlock>) {
    let mut vars = Vec::new();
    let mut blocks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut in_defs = true;
    for line in text.lines() {
        let line = line.trim();
        if in_defs {
            if let Some(rest) = line.strip_prefix("$var wire ") {
                let mut it = rest.split_whitespace();
                let width: u32 = it.next().expect("width").parse().expect("width int");
                let id = it.next().expect("id").to_owned();
                let name = it.next().expect("name").to_owned();
                assert_eq!(it.next(), Some("$end"), "malformed $var: {line}");
                vars.push((width, id, name));
            } else if line == "$enddefinitions $end" {
                in_defs = false;
            }
            continue;
        }
        if let Some(ts) = line.strip_prefix('#') {
            blocks.push((ts.parse().expect("timestamp"), Vec::new()));
        } else if let Some(rest) = line.strip_prefix('b') {
            let (value, id) = rest.split_once(' ').expect("binary change has an id");
            assert!(
                !value.is_empty() && value.chars().all(|c| c == '0' || c == '1'),
                "bad binary value: {line}"
            );
            blocks
                .last_mut()
                .expect("change before first timestamp")
                .1
                .push(id.to_owned());
        } else if !line.is_empty() {
            panic!("unexpected VCD body line: {line}");
        }
    }
    assert!(!in_defs, "missing $enddefinitions");
    (vars, blocks)
}

#[test]
fn denoise_vcd_is_well_formed() {
    let plan = MemorySystemPlan::generate(&denoise_spec()).expect("plan");
    let mut machine = Machine::new(&plan).expect("machine");
    machine.enable_trace(0, 512);
    machine.run(1_000_000).expect("run");
    let trace = machine.trace(0).expect("trace enabled");
    assert!(!trace.is_empty());
    let vcd = trace_to_vcd(trace, "denoise", 5.0);

    let (vars, blocks) = parse_vcd(&vcd);

    // One signal per filter, one per reuse FIFO, plus the stream
    // element counter.
    let filters = vars.iter().filter(|v| v.2.contains("filter")).count();
    let fifos = vars.iter().filter(|v| v.2.contains("fifo")).count();
    assert_eq!(filters, plan.port_count(), "one status signal per filter");
    assert_eq!(
        fifos,
        plan.fifo_capacities().len(),
        "one occupancy signal per FIFO"
    );
    assert_eq!(vars.len(), filters + fifos + 1, "plus stream_elem");

    // Identifiers are unique; every change references a declared id.
    let ids: BTreeSet<&str> = vars.iter().map(|v| v.1.as_str()).collect();
    assert_eq!(ids.len(), vars.len(), "duplicate VCD identifiers");
    for (_, changed) in &blocks {
        for id in changed {
            assert!(ids.contains(id.as_str()), "undeclared id `{id}`");
        }
    }

    // Timestamps strictly increase and no block is empty.
    assert!(!blocks.is_empty(), "no value changes recorded");
    for pair in blocks.windows(2) {
        assert!(
            pair[1].0 > pair[0].0,
            "timestamps must increase: #{} then #{}",
            pair[0].0,
            pair[1].0
        );
    }
    for (ts, changed) in &blocks {
        assert!(!changed.is_empty(), "empty change block at #{ts}");
    }

    // The first block initializes every declared signal.
    assert_eq!(
        blocks[0].1.len(),
        vars.len(),
        "first timestamp must dump all signals"
    );
}
