//! The fully pipelined computation kernel model.
//!
//! After kernel transformation (Fig. 4 of the paper) the computation
//! kernel is a black-box pipeline compiled by HLS at II = 1: each cycle
//! in which **all** of its data ports hold valid elements it consumes
//! them and (after a fixed pipeline latency that does not affect
//! throughput) emits one output. This module models exactly that consume
//! contract; the datapath arithmetic itself is supplied by callers via
//! [`Machine::last_fire`](crate::Machine::last_fire).

use stencil_polyhedral::{Cursor, DomainIndex, Point};

/// Runtime state of the computation kernel.
#[derive(Debug, Clone)]
pub struct KernelModel {
    iter_cursor: Cursor,
    outputs: u64,
    first_fire: Option<u64>,
    last_fire: Option<u64>,
}

impl KernelModel {
    /// Creates a kernel positioned at the first loop iteration.
    #[must_use]
    pub fn new(iteration: &DomainIndex) -> Self {
        Self {
            iter_cursor: iteration.cursor(),
            outputs: 0,
            first_fire: None,
            last_fire: None,
        }
    }

    /// The iteration the kernel will execute next, or `None` when the
    /// loop nest has completed.
    #[must_use]
    pub fn current_iteration(&self, iteration: &DomainIndex) -> Option<Point> {
        self.iter_cursor.point(iteration)
    }

    /// Consumes all ports for the current iteration and advances.
    pub fn fire(&mut self, iteration: &DomainIndex, cycle: u64) {
        debug_assert!(!self.iter_cursor.is_done(iteration));
        self.iter_cursor.advance(iteration);
        self.outputs += 1;
        if self.first_fire.is_none() {
            self.first_fire = Some(cycle);
        }
        self.last_fire = Some(cycle);
    }

    /// Outputs produced so far.
    #[must_use]
    pub fn outputs(&self) -> u64 {
        self.outputs
    }

    /// True once every iteration has executed.
    #[must_use]
    pub fn is_done(&self, iteration: &DomainIndex) -> bool {
        self.iter_cursor.is_done(iteration)
    }

    /// Cycle of the first output (the reuse-buffer fill latency), if any.
    #[must_use]
    pub fn first_fire_cycle(&self) -> Option<u64> {
        self.first_fire
    }

    /// Cycle of the most recent output, if any.
    #[must_use]
    pub fn last_fire_cycle(&self) -> Option<u64> {
        self.last_fire
    }

    /// The achieved steady-state initiation interval: average cycles per
    /// output once the pipeline is filled. `None` before two outputs
    /// exist.
    #[must_use]
    pub fn steady_ii(&self) -> Option<f64> {
        match (self.first_fire, self.last_fire) {
            (Some(first), Some(last)) if self.outputs >= 2 => {
                Some((last - first) as f64 / (self.outputs - 1) as f64)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_polyhedral::Polyhedron;

    #[test]
    fn fires_through_iteration_domain() {
        let idx = Polyhedron::rect(&[(0, 2)]).index().unwrap();
        let mut k = KernelModel::new(&idx);
        assert_eq!(k.current_iteration(&idx), Some(Point::new(&[0])));
        k.fire(&idx, 10);
        k.fire(&idx, 11);
        k.fire(&idx, 12);
        assert!(k.is_done(&idx));
        assert_eq!(k.outputs(), 3);
        assert_eq!(k.first_fire_cycle(), Some(10));
        assert_eq!(k.last_fire_cycle(), Some(12));
        assert_eq!(k.steady_ii(), Some(1.0));
        assert_eq!(k.current_iteration(&idx), None);
    }

    #[test]
    fn steady_ii_needs_two_outputs() {
        let idx = Polyhedron::rect(&[(0, 5)]).index().unwrap();
        let mut k = KernelModel::new(&idx);
        assert_eq!(k.steady_ii(), None);
        k.fire(&idx, 3);
        assert_eq!(k.steady_ii(), None);
        k.fire(&idx, 5);
        assert_eq!(k.steady_ii(), Some(2.0));
    }
}
