//! Accelerator-to-accelerator forwarding (Appendix 9.3, Fig. 13c of the
//! paper).
//!
//! Because an accelerator with this microarchitecture consumes a single
//! lexicographically ordered input stream and — by Property 1 — emits
//! its outputs in the same lexicographic order, two accelerators can be
//! chained with **direct data forwarding**: the producer's output wire
//! feeds the consumer's input, needing only a small skid buffer instead
//! of an on-chip frame buffer between the blocks.
//!
//! [`ChainedAccelerators`] co-simulates both machines cycle by cycle and
//! measures the forwarding backlog, demonstrating the claim
//! quantitatively.

use crate::error::SimError;
use crate::machine::Machine;
use crate::stats::RunStats;

/// Two co-simulated accelerators with direct forwarding between them.
#[derive(Debug, Clone)]
pub struct ChainedAccelerators {
    producer: Machine,
    consumer: Machine,
}

/// Statistics of a chained run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainedStats {
    /// The producer's run statistics.
    pub producer: RunStats,
    /// The consumer's run statistics.
    pub consumer: RunStats,
    /// Total co-simulated cycles.
    pub cycles: u64,
    /// The largest number of forwarded-but-unconsumed elements — the
    /// required skid-buffer depth (Appendix 9.3: "only needs a small
    /// buffer to hide the bus latency").
    pub max_forward_backlog: u64,
}

impl ChainedAccelerators {
    /// Chains `producer` into `consumer`.
    ///
    /// The consumer must have been built with
    /// [`Machine::with_external_input`], and its input data domain must
    /// contain exactly as many points as the producer has iterations —
    /// the structural condition for direct forwarding (arranged by loop
    /// transformation in the paper, reference \[15\]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Plan`] if the sizes are incompatible.
    pub fn new(producer: Machine, consumer: Machine) -> Result<Self, SimError> {
        let produced = producer.total_iterations();
        let consumed = consumer.total_input_elements(0);
        if produced != consumed {
            return Err(SimError::Plan(stencil_core::PlanError::DimensionMismatch {
                domain: produced as usize,
                offset: consumed as usize,
            }));
        }
        Ok(Self { producer, consumer })
    }

    /// Runs both machines in lockstep until the consumer finishes.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from either machine, or
    /// [`SimError::CycleLimit`].
    pub fn run(&mut self, cycle_limit: u64) -> Result<ChainedStats, SimError> {
        let mut cycles = 0u64;
        while !self.consumer.is_done() {
            if cycles >= cycle_limit {
                return Err(SimError::CycleLimit {
                    limit: cycle_limit,
                    outputs: self.consumer.outputs(),
                });
            }
            if !self.producer.is_done() {
                self.producer.step()?;
                if self.producer.last_fire().is_some() {
                    self.consumer.push_input(0);
                    if self.producer.is_done() {
                        self.consumer.close_input(0);
                    }
                }
            }
            self.consumer.step()?;
            cycles += 1;
        }
        Ok(ChainedStats {
            producer: self.producer.stats(),
            consumer: self.consumer.stats(),
            cycles,
            max_forward_backlog: self.consumer.max_input_backlog(0),
        })
    }

    /// The producer machine.
    #[must_use]
    pub fn producer(&self) -> &Machine {
        &self.producer
    }

    /// The consumer machine.
    #[must_use]
    pub fn consumer(&self) -> &Machine {
        &self.consumer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{MemorySystemPlan, StencilSpec};
    use stencil_polyhedral::{Point, Polyhedron};

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    /// Producer: DENOISE over rows/cols 1..=R-2 of an RxC grid.
    /// Consumer: DENOISE over 2..=R-3 — its dilated input domain is
    /// exactly the producer's iteration domain.
    fn chained_pair(r: i64, c: i64) -> ChainedAccelerators {
        let producer_spec = StencilSpec::new(
            "stage1",
            Polyhedron::rect(&[(1, r - 2), (1, c - 2)]),
            cross(),
        )
        .unwrap();
        let consumer_spec = StencilSpec::new(
            "stage2",
            Polyhedron::rect(&[(2, r - 3), (2, c - 3)]),
            cross(),
        )
        .unwrap();
        let producer = Machine::new(&MemorySystemPlan::generate(&producer_spec).unwrap()).unwrap();
        let consumer =
            Machine::with_external_input(&MemorySystemPlan::generate(&consumer_spec).unwrap())
                .unwrap();
        ChainedAccelerators::new(producer, consumer).unwrap()
    }

    #[test]
    fn chained_run_completes_both_stages() {
        let mut chain = chained_pair(16, 20);
        let stats = chain.run(1_000_000).unwrap();
        assert_eq!(stats.producer.outputs, 14 * 18);
        assert_eq!(stats.consumer.outputs, 12 * 16);
        assert!(stats.producer.fully_pipelined());
    }

    #[test]
    fn forwarding_needs_only_a_tiny_skid_buffer() {
        // Appendix 9.3's claim: direct forwarding, no inter-block frame
        // buffer. The backlog must stay O(1), far below the consumer's
        // input size.
        let mut chain = chained_pair(24, 32);
        let stats = chain.run(1_000_000).unwrap();
        assert!(
            stats.max_forward_backlog <= 4,
            "backlog {} is not a skid buffer",
            stats.max_forward_backlog
        );
    }

    #[test]
    fn incompatible_sizes_rejected() {
        let producer_spec =
            StencilSpec::new("p", Polyhedron::rect(&[(1, 6), (1, 6)]), cross()).unwrap();
        let consumer_spec =
            StencilSpec::new("c", Polyhedron::rect(&[(2, 4), (2, 4)]), cross()).unwrap();
        let producer = Machine::new(&MemorySystemPlan::generate(&producer_spec).unwrap()).unwrap();
        let consumer =
            Machine::with_external_input(&MemorySystemPlan::generate(&consumer_spec).unwrap())
                .unwrap();
        // Producer emits 36 elements; consumer's input domain is 5x5=25.
        assert!(ChainedAccelerators::new(producer, consumer).is_err());
    }

    #[test]
    fn external_machine_standalone_with_manual_driver() {
        // Drive an external-input machine by hand: push one element per
        // cycle, as a bus master would.
        let spec = StencilSpec::new("ext", Polyhedron::rect(&[(1, 6), (1, 6)]), cross()).unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let mut m = Machine::with_external_input(&plan).unwrap();
        let total = 8 * 8;
        let mut pushed = 0;
        while !m.is_done() {
            if pushed < total {
                m.push_input(0);
                pushed += 1;
                if pushed == total {
                    m.close_input(0);
                }
            }
            m.step().unwrap();
        }
        assert_eq!(m.outputs(), 36);
    }
}
