//! Closed-form latency prediction — the analytical counterpart of the
//! fill process the simulator measures (§3.4.1 of the paper).
//!
//! With one off-chip element per cycle, the kernel's **first** firing is
//! pinned by the stream rank of the earliest reference's first needed
//! element (`i_first + f_0`): one cycle to forward it, one to fire. The
//! **last** firing is pinned the same way by `i_last + f_0`. On
//! rectangular grids the machine achieves both bounds exactly; on skewed
//! grids they remain lower bounds (back-pressure can add transient
//! stalls).

use stencil_core::MemorySystemPlan;

use crate::error::SimError;

/// Predicted cycle of the first kernel firing (1-based, matching
/// [`RunStats::fill_latency`](crate::RunStats)).
///
/// # Errors
///
/// Returns [`SimError::Poly`] if the plan's domains cannot be indexed.
pub fn predicted_fill_latency(plan: &MemorySystemPlan) -> Result<u64, SimError> {
    let input = plan.input_domain().index()?;
    let iter = plan.iteration_domain().index()?;
    let Some(i_first) = iter.first() else {
        return Ok(0);
    };
    let earliest = plan.filters()[0].offset;
    Ok(input.rank_lt(&(i_first + earliest)) + 2)
}

/// Predicted total execution cycles (equals
/// [`RunStats::ideal_cycles`](crate::RunStats)).
///
/// # Errors
///
/// Returns [`SimError::Poly`] if the plan's domains cannot be indexed.
pub fn predicted_total_cycles(plan: &MemorySystemPlan) -> Result<u64, SimError> {
    let input = plan.input_domain().index()?;
    let iter = plan.iteration_domain().index()?;
    let Some(i_last) = iter.last() else {
        return Ok(0);
    };
    let mut worst = 0;
    for flt in plan.filters() {
        worst = worst.max(input.rank_lt(&(i_last + flt.offset)));
    }
    Ok(worst + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use stencil_core::StencilSpec;
    use stencil_polyhedral::{Constraint, Point, Polyhedron};

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    #[test]
    fn predictions_exact_on_rectangular_grids() {
        for (r, c) in [(8i64, 8i64), (10, 14), (6, 30)] {
            let spec = StencilSpec::new("p", Polyhedron::rect(&[(1, r - 2), (1, c - 2)]), cross())
                .unwrap();
            let plan = MemorySystemPlan::generate(&spec).unwrap();
            let stats = Machine::new(&plan).unwrap().run(1_000_000).unwrap();
            assert_eq!(
                stats.fill_latency,
                predicted_fill_latency(&plan).unwrap(),
                "{r}x{c} fill"
            );
            assert_eq!(
                stats.cycles,
                predicted_total_cycles(&plan).unwrap(),
                "{r}x{c} total"
            );
        }
    }

    #[test]
    fn predictions_are_lower_bounds_on_skewed_grids() {
        let iter = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 1, 1),
                Constraint::upper_bound(2, 1, 10),
                Constraint::new(&[1, -1], -1),
                Constraint::new(&[-1, 1], 16),
            ],
        );
        let spec = StencilSpec::new("skew", iter, cross()).unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let stats = Machine::new(&plan).unwrap().run(1_000_000).unwrap();
        assert!(stats.fill_latency >= predicted_fill_latency(&plan).unwrap());
        assert!(stats.cycles >= predicted_total_cycles(&plan).unwrap());
    }

    #[test]
    fn prediction_matches_paper_fill_story() {
        // §3.4.1: on the 1024-wide grid the kernel first consumes at
        // cycle 2049 in the paper's idealized table; the real chain adds
        // the forward+fire register stages: rank(A[2][1]) = 2049,
        // predicted fill = 2051.
        let spec =
            StencilSpec::new("denoise", Polyhedron::rect(&[(1, 766), (1, 1022)]), cross()).unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        assert_eq!(predicted_fill_latency(&plan).unwrap(), 2 * 1024 + 1 + 2);
        assert_eq!(predicted_total_cycles(&plan).unwrap(), 768 * 1024);
    }
}
