//! The cycle-accurate machine: splitter/FIFO/filter chains feeding a
//! fully pipelined kernel (Figs. 3 and 7 of the paper).
//!
//! Every module is *autonomous*, exactly as in the paper: there is no
//! centralized controller. Each cycle, each splitter forwards the head
//! element of its upstream feed to both its data filter and the next
//! reuse FIFO, provided the FIFO has space and the filter accepts; the
//! kernel consumes one element from every port whenever all ports are
//! valid. Reuse-buffer filling (§3.4.1) and skewed-grid occupancy
//! adjustment (§3.4.2) are *emergent* from this coordination — the
//! simulator contains no fill or eviction logic.
//!
//! In one simulated cycle the consumer side is evaluated before the
//! producer side (kernel → filter `n-1` → … → filter 0), modeling
//! flow-through FIFOs and pipeline registers: a full FIFO that is popped
//! this cycle can accept a push this cycle, which is what sustains II = 1
//! at steady state.

use stencil_core::{Accelerator, Feed, MemorySystemPlan};
use stencil_polyhedral::{DomainIndex, Point};
use stencil_telemetry::{ChainMetrics, FifoMetrics, FilterMetrics, Histogram, MachineMetrics};

use crate::channel::Channel;
use crate::elem::Elem;
use crate::error::SimError;
use crate::external::ExternalFeed;
use crate::filter::{DataFilter, FilterDecision, FilterStatus};
use crate::kernel::KernelModel;
use crate::stats::{ChainStats, RunStats};
use crate::stream::OffchipStream;
use crate::trace::{Trace, TraceRow};

/// A feed into one splitter: either an off-chip stream or a reuse FIFO.
#[derive(Debug, Clone)]
enum FeedState {
    Stream(OffchipStream),
    Fifo(Channel),
    External(ExternalFeed),
}

/// Runtime state of one memory system (one data array).
#[derive(Debug, Clone)]
struct ChainState {
    array: String,
    input_index: DomainIndex,
    offsets: Vec<Point>,
    domains: Vec<DomainIndex>,
    feeds: Vec<FeedState>,
    filters: Vec<DataFilter>,
    ports: Vec<Option<Elem>>,
    statuses: Vec<FilterStatus>,
    trace: Option<Trace>,
    stream_latency: u64,
    /// Planned (unpromoted) Eq. (2) capacity of each reuse FIFO, chain
    /// order — the Channel itself only knows the promoted depth.
    planned_caps: Vec<u64>,
    /// Per-filter stall counts frozen at the first kernel firing; the
    /// difference to the final counts is the steady-state share.
    fill_stalls: Option<Vec<u64>>,
    /// Per-FIFO occupancy histograms, when sampling is enabled.
    occupancy: Option<Vec<Histogram>>,
}

impl ChainState {
    fn build(plan: &MemorySystemPlan, stream_latency: u64) -> Result<Self, SimError> {
        Self::build_with_input(plan, stream_latency, false)
    }

    fn build_with_input(
        plan: &MemorySystemPlan,
        stream_latency: u64,
        external: bool,
    ) -> Result<Self, SimError> {
        let input_index = plan.input_domain().index()?;
        let n = plan.port_count();
        let mut domains = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n);
        let mut feeds = Vec::with_capacity(n);
        let mut filters = Vec::with_capacity(n);
        let mut planned_caps = Vec::new();
        for (k, flt) in plan.filters().iter().enumerate() {
            let dom = flt.data_domain.index()?;
            filters.push(DataFilter::new(&input_index, &dom));
            offsets.push(flt.offset);
            domains.push(dom);
            feeds.push(match plan.feeds()[k] {
                Feed::Offchip if external => FeedState::External(ExternalFeed::new()),
                Feed::Offchip => FeedState::Stream(
                    OffchipStream::new(&input_index).with_initial_latency(stream_latency),
                ),
                Feed::Fifo { capacity, .. } => {
                    planned_caps.push(capacity);
                    FeedState::Fifo(Channel::new(capacity))
                }
            });
        }
        Ok(Self {
            array: plan.array().to_owned(),
            input_index,
            offsets,
            domains,
            feeds,
            filters,
            ports: vec![None; n],
            statuses: vec![FilterStatus::Starved; n],
            trace: None,
            stream_latency,
            planned_caps,
            fill_stalls: None,
            occupancy: None,
        })
    }

    fn fifo_occupancies(&self) -> Vec<u64> {
        self.feeds
            .iter()
            .filter_map(|f| match f {
                FeedState::Fifo(ch) => Some(ch.len()),
                FeedState::Stream(_) | FeedState::External(_) => None,
            })
            .collect()
    }

    fn stats(&self) -> ChainStats {
        let mut fifo_capacity = Vec::new();
        let mut fifo_max_occupancy = Vec::new();
        let mut inputs_streamed = 0;
        for f in &self.feeds {
            match f {
                FeedState::Fifo(ch) => {
                    fifo_capacity.push(ch.capacity());
                    fifo_max_occupancy.push(ch.max_occupancy());
                }
                FeedState::Stream(s) => inputs_streamed += s.produced(),
                FeedState::External(x) => inputs_streamed += x.produced(),
            }
        }
        ChainStats {
            array: self.array.clone(),
            inputs_streamed,
            fifo_capacity,
            fifo_max_occupancy,
            filter_stalls: self.filters.iter().map(DataFilter::stall_cycles).collect(),
            forwarded: self.filters.iter().map(DataFilter::forwarded).collect(),
            discarded: self.filters.iter().map(DataFilter::discarded).collect(),
        }
    }

    /// Allocates one occupancy histogram per reuse FIFO (eight linear
    /// buckets up to the promoted capacity, plus overflow).
    fn enable_occupancy_sampling(&mut self) {
        let hists = self
            .planned_caps
            .iter()
            .map(|&cap| {
                let cap = cap.max(1);
                Histogram::linear(cap, usize::try_from(cap.min(8)).expect("small"))
            })
            .collect();
        self.occupancy = Some(hists);
    }

    /// Records each FIFO's current occupancy into its histogram.
    fn sample_occupancy(&mut self) {
        let Some(hists) = &mut self.occupancy else {
            return;
        };
        let mut it = hists.iter_mut();
        for feed in &self.feeds {
            if let FeedState::Fifo(ch) = feed {
                it.next().expect("one histogram per FIFO").record(ch.len());
            }
        }
    }

    /// Freezes the per-filter stall counts; later stalls are steady
    /// state. Called once, at the first kernel firing.
    fn snapshot_fill_stalls(&mut self) {
        self.fill_stalls = Some(self.filters.iter().map(DataFilter::stall_cycles).collect());
    }

    fn metrics(&self) -> ChainMetrics {
        let mut fifos = Vec::with_capacity(self.planned_caps.len());
        let mut inputs_streamed = 0;
        let mut fifo_idx = 0;
        for feed in &self.feeds {
            match feed {
                FeedState::Fifo(ch) => {
                    let occupancy = self
                        .occupancy
                        .as_ref()
                        .map_or_else(Histogram::disabled, |h| h[fifo_idx].clone());
                    fifos.push(FifoMetrics {
                        capacity: self.planned_caps[fifo_idx],
                        high_water: ch.max_occupancy(),
                        pushes: ch.total_pushes(),
                        pops: ch.total_pops(),
                        occupancy,
                    });
                    fifo_idx += 1;
                }
                FeedState::Stream(s) => inputs_streamed += s.produced(),
                FeedState::External(x) => inputs_streamed += x.produced(),
            }
        }
        let filters = self
            .filters
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let fill = self.fill_stalls.as_ref().map_or(f.stall_cycles(), |s| s[i]);
                FilterMetrics {
                    forwarded: f.forwarded(),
                    discarded: f.discarded(),
                    stalls: f.stall_cycles(),
                    steady_stalls: f.stall_cycles() - fill,
                }
            })
            .collect();
        ChainMetrics {
            array: self.array.clone(),
            inputs_streamed,
            input_elements: self.input_index.len(),
            fifos,
            filters,
        }
    }
}

/// The element tuple consumed by the kernel in one firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FireRecord {
    /// Clock cycle of the firing (0-based).
    pub cycle: u64,
    /// The loop iteration executed.
    pub iteration: Point,
    /// Consumed elements, per chain, per filter (chain order).
    pub ports: Vec<Vec<Elem>>,
}

/// A complete simulated accelerator: one or more memory-system chains
/// plus the pipelined kernel.
///
/// # Examples
///
/// ```
/// use stencil_core::{MemorySystemPlan, StencilSpec};
/// use stencil_polyhedral::{Point, Polyhedron};
/// use stencil_sim::Machine;
///
/// let spec = StencilSpec::new(
///     "denoise-small",
///     Polyhedron::rect(&[(1, 6), (1, 6)]),
///     vec![
///         Point::new(&[-1, 0]),
///         Point::new(&[0, -1]),
///         Point::new(&[0, 0]),
///         Point::new(&[0, 1]),
///         Point::new(&[1, 0]),
///     ],
/// )?;
/// let plan = MemorySystemPlan::generate(&spec)?;
/// let mut machine = Machine::new(&plan)?;
/// let stats = machine.run(100_000)?;
/// assert_eq!(stats.outputs, 36);
/// assert!(stats.fully_pipelined());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    chains: Vec<ChainState>,
    iteration_index: DomainIndex,
    kernel: KernelModel,
    cycle: u64,
    last_fire: Option<FireRecord>,
    /// Plan-level facts recorded at build time so the emitted metrics
    /// are self-contained (validation needs no plan object).
    facts: PlanFacts,
}

/// Static plan properties embedded into [`MachineMetrics`].
#[derive(Debug, Clone)]
struct PlanFacts {
    offchip_streams: usize,
    planned_total_buffer: u64,
    min_total_buffer: u64,
    linearity_holds: bool,
}

impl PlanFacts {
    fn gather<'a>(plans: impl IntoIterator<Item = &'a MemorySystemPlan>) -> Self {
        let mut facts = Self {
            offchip_streams: 1,
            planned_total_buffer: 0,
            min_total_buffer: 0,
            linearity_holds: true,
        };
        for p in plans {
            facts.offchip_streams = facts.offchip_streams.max(p.offchip_streams());
            facts.planned_total_buffer += p.total_buffer_size();
            facts.min_total_buffer += p.min_total_size();
            facts.linearity_holds &= p.linearity_holds();
        }
        facts
    }
}

impl Machine {
    /// Builds a machine for a single-array memory system.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Poly`] if a plan domain cannot be indexed.
    pub fn new(plan: &MemorySystemPlan) -> Result<Self, SimError> {
        Self::with_stream_latency(plan, 0)
    }

    /// Builds a machine whose off-chip streams have an initial bus
    /// latency (models the prefetcher of Fig. 13b).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Poly`] if a plan domain cannot be indexed.
    pub fn with_stream_latency(plan: &MemorySystemPlan, latency: u64) -> Result<Self, SimError> {
        let iteration_index = plan.iteration_domain().index()?;
        Ok(Self {
            chains: vec![ChainState::build(plan, latency)?],
            kernel: KernelModel::new(&iteration_index),
            iteration_index,
            cycle: 0,
            last_fire: None,
            facts: PlanFacts::gather([plan]),
        })
    }

    /// Builds a machine whose off-chip feeds are **externally driven**:
    /// elements arrive via [`Machine::push_input`] (e.g. from another
    /// simulated accelerator — the direct forwarding of Appendix 9.3)
    /// instead of a free-running stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Poly`] if a plan domain cannot be indexed.
    pub fn with_external_input(plan: &MemorySystemPlan) -> Result<Self, SimError> {
        let iteration_index = plan.iteration_domain().index()?;
        Ok(Self {
            chains: vec![ChainState::build_with_input(plan, 0, true)?],
            kernel: KernelModel::new(&iteration_index),
            iteration_index,
            cycle: 0,
            last_fire: None,
            facts: PlanFacts::gather([plan]),
        })
    }

    /// Pushes the next input element into every external feed of chain
    /// `chain` (elements arrive in lexicographic input-domain order, as
    /// the producing accelerator emits them).
    ///
    /// # Panics
    ///
    /// Panics if the chain has no external feed or a feed was closed.
    pub fn push_input(&mut self, chain: usize) {
        let mut pushed = false;
        for feed in &mut self.chains[chain].feeds {
            if let FeedState::External(x) = feed {
                x.push();
                pushed = true;
            }
        }
        assert!(pushed, "chain {chain} has no external feed");
    }

    /// Declares that no more external elements will arrive on chain
    /// `chain`.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    pub fn close_input(&mut self, chain: usize) {
        for feed in &mut self.chains[chain].feeds {
            if let FeedState::External(x) = feed {
                x.close();
            }
        }
    }

    /// The largest backlog any external feed of chain `chain` ever
    /// reached — the skid-buffer depth direct forwarding would need.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    #[must_use]
    pub fn max_input_backlog(&self, chain: usize) -> u64 {
        self.chains[chain]
            .feeds
            .iter()
            .filter_map(|f| match f {
                FeedState::External(x) => Some(x.max_backlog()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Builds a machine for a complete multi-array accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Poly`] if a plan domain cannot be indexed.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator has no memory systems.
    pub fn for_accelerator(acc: &Accelerator) -> Result<Self, SimError> {
        assert!(
            !acc.memory_systems.is_empty(),
            "accelerator needs at least one memory system"
        );
        let iteration_index = acc.memory_systems[0].iteration_domain().index()?;
        let chains = acc
            .memory_systems
            .iter()
            .map(|p| ChainState::build(p, 0))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            chains,
            kernel: KernelModel::new(&iteration_index),
            iteration_index,
            cycle: 0,
            last_fire: None,
            facts: PlanFacts::gather(&acc.memory_systems),
        })
    }

    /// Enables Table 3-style tracing on chain `chain`, recording at most
    /// `limit` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    pub fn enable_trace(&mut self, chain: usize, limit: usize) {
        self.chains[chain].trace = Some(Trace::with_limit(limit));
    }

    /// The recorded trace of chain `chain`, if tracing was enabled.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    #[must_use]
    pub fn trace(&self, chain: usize) -> Option<&Trace> {
        self.chains[chain].trace.as_ref()
    }

    /// Current clock cycle (number of completed [`Machine::step`]s).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Outputs produced so far.
    #[must_use]
    pub fn outputs(&self) -> u64 {
        self.kernel.outputs()
    }

    /// Total loop iterations this machine will execute.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.iteration_index.len()
    }

    /// Number of input-domain elements of chain `chain`.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    #[must_use]
    pub fn total_input_elements(&self, chain: usize) -> u64 {
        self.chains[chain].input_index.len()
    }

    /// True once every loop iteration has executed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.kernel.is_done(&self.iteration_index)
    }

    /// The kernel firing that happened in the most recent step, if any.
    /// Callers implementing a real datapath read the consumed element
    /// ranks here and apply their arithmetic.
    #[must_use]
    pub fn last_fire(&self) -> Option<&FireRecord> {
        self.last_fire.as_ref()
    }

    /// The access offsets of chain `chain`, in filter (port) order.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    #[must_use]
    pub fn port_offsets(&self, chain: usize) -> &[Point] {
        &self.chains[chain].offsets
    }

    /// Current occupancy of each reuse FIFO of chain `chain`.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    #[must_use]
    pub fn fifo_occupancies(&self, chain: usize) -> Vec<u64> {
        self.chains[chain].fifo_occupancies()
    }

    /// Advances the machine by one clock cycle.
    ///
    /// # Errors
    ///
    /// * [`SimError::DataMismatch`] if a kernel port held the wrong
    ///   element (functional bug).
    /// * [`SimError::Deadlock`] if no module made progress while work
    ///   remains.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.last_fire = None;
        if self.is_done() {
            return Ok(());
        }
        let cycle = self.cycle;
        let mut activity = false;

        // Phase 1: the kernel consumes when every port is valid.
        let all_full = self
            .chains
            .iter()
            .all(|c| c.ports.iter().all(Option::is_some));
        if all_full {
            let i = self
                .kernel
                .current_iteration(&self.iteration_index)
                .expect("ports full although the loop nest completed");
            let mut ports_record = Vec::with_capacity(self.chains.len());
            for (ci, chain) in self.chains.iter_mut().enumerate() {
                let mut elems = Vec::with_capacity(chain.ports.len());
                for (px, port) in chain.ports.iter_mut().enumerate() {
                    let elem = port.take().expect("checked full");
                    let h = i + chain.offsets[px];
                    let expected = chain.input_index.rank_lt(&h);
                    if elem.id() != expected {
                        return Err(SimError::DataMismatch {
                            cycle,
                            chain: ci,
                            port: px,
                            expected,
                            got: elem.id(),
                        });
                    }
                    elems.push(elem);
                }
                ports_record.push(elems);
            }
            self.kernel.fire(&self.iteration_index, cycle);
            self.last_fire = Some(FireRecord {
                cycle,
                iteration: i,
                ports: ports_record,
            });
            activity = true;
        }

        // Phase 2: splitters + filters, consumer side first.
        for chain in &mut self.chains {
            let n = chain.filters.len();
            let stream_head = chain.feeds.iter().find_map(|f| match f {
                FeedState::Stream(s) => s.peek(&chain.input_index, cycle).map(|e| e.id()),
                FeedState::External(x) => x.peek().map(|e| e.id()),
                FeedState::Fifo(_) => None,
            });
            for x in (0..n).rev() {
                chain.statuses[x] = FilterStatus::Starved;
                let offered = match &chain.feeds[x] {
                    FeedState::Stream(s) => {
                        if s.peek(&chain.input_index, cycle).is_none()
                            && !s.is_done(&chain.input_index)
                        {
                            // Warming up: the bus will deliver; not a deadlock.
                            activity = true;
                        }
                        s.peek(&chain.input_index, cycle)
                    }
                    FeedState::External(xf) => {
                        if xf.peek().is_none() && xf.is_open() {
                            // The producer may still deliver; not a deadlock.
                            activity = true;
                        }
                        xf.peek()
                    }
                    FeedState::Fifo(ch) => ch.peek(),
                };
                let Some(elem) = offered else {
                    continue;
                };
                let downstream_full = matches!(
                    chain.feeds.get(x + 1),
                    Some(FeedState::Fifo(ch)) if ch.is_full()
                );
                if downstream_full {
                    chain.statuses[x] = FilterStatus::BlockedDownstream;
                    chain.filters[x].note_stall();
                    continue;
                }
                let decision = chain.filters[x].decide(
                    &chain.input_index,
                    &chain.domains[x],
                    chain.ports[x].is_none(),
                );
                match decision {
                    FilterDecision::Wait => {
                        chain.statuses[x] = FilterStatus::Stalled;
                        chain.filters[x].note_stall();
                    }
                    FilterDecision::Forward | FilterDecision::Discard => {
                        debug_assert_eq!(
                            Some(elem),
                            chain.filters[x].expected_elem(&chain.input_index),
                            "stream integrity violated at filter {x}"
                        );
                        match &mut chain.feeds[x] {
                            FeedState::Stream(s) => s.advance(&chain.input_index),
                            FeedState::External(xf) => xf.advance(),
                            FeedState::Fifo(ch) => {
                                ch.pop();
                            }
                        }
                        if let Some(FeedState::Fifo(ch)) = chain.feeds.get_mut(x + 1) {
                            ch.push(elem);
                        }
                        if decision == FilterDecision::Forward {
                            chain.ports[x] = Some(elem);
                            chain.filters[x].commit_forward(&chain.input_index, &chain.domains[x]);
                            chain.statuses[x] = FilterStatus::Forwarding;
                        } else {
                            chain.filters[x].commit_discard(&chain.input_index);
                            chain.statuses[x] = FilterStatus::Discarding;
                        }
                        activity = true;
                    }
                }
            }
            if chain.trace.is_some() {
                let row = TraceRow {
                    cycle: cycle + 1, // Table 3 numbers cycles from 1
                    stream_elem: stream_head,
                    filter_status: chain.statuses.clone(),
                    fifo_occupancy: chain.fifo_occupancies(),
                };
                if let Some(trace) = &mut chain.trace {
                    trace.record(row);
                }
            }
        }

        // Telemetry: freeze fill-phase stall counts at the first kernel
        // firing (everything after is steady state), then sample FIFO
        // occupancy for this cycle.
        if self.last_fire.is_some() && self.kernel.first_fire_cycle() == Some(cycle) {
            for chain in &mut self.chains {
                chain.snapshot_fill_stalls();
            }
        }
        for chain in &mut self.chains {
            chain.sample_occupancy();
        }

        self.cycle += 1;
        if !activity && !self.is_done() {
            return Err(SimError::Deadlock {
                cycle: self.cycle,
                outputs: self.kernel.outputs(),
            });
        }
        Ok(())
    }

    /// Runs to completion (or the cycle limit) and reports statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::step`] errors, plus [`SimError::CycleLimit`]
    /// if the computation does not finish within `cycle_limit`.
    pub fn run(&mut self, cycle_limit: u64) -> Result<RunStats, SimError> {
        while !self.is_done() {
            if self.cycle >= cycle_limit {
                return Err(SimError::CycleLimit {
                    limit: cycle_limit,
                    outputs: self.kernel.outputs(),
                });
            }
            self.step()?;
        }
        Ok(self.stats())
    }

    /// The input-bandwidth-limited lower bound on execution cycles: the
    /// off-chip stream delivers one element per cycle, so the kernel's
    /// final firing cannot happen before the highest-ranked element any
    /// port needs has been streamed (plus one cycle to forward it and
    /// one to fire).
    #[must_use]
    pub fn ideal_cycles(&self) -> u64 {
        let Some(i_last) = self.iteration_index.last() else {
            return 0;
        };
        let mut worst = 0;
        let mut latency = 0;
        for chain in &self.chains {
            latency = latency.max(chain.stream_latency);
            for f in &chain.offsets {
                let h = i_last + *f;
                worst = worst.max(chain.input_index.rank_lt(&h));
            }
        }
        worst + 2 + latency
    }

    /// A human-readable snapshot of the machine state — per-chain
    /// filter statuses, FIFO occupancies and port fill — for debugging
    /// stalled or surprising designs.
    #[must_use]
    pub fn snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle {} | outputs {}/{}",
            self.cycle,
            self.kernel.outputs(),
            self.iteration_index.len()
        );
        for (ci, chain) in self.chains.iter().enumerate() {
            let statuses: String = chain.statuses.iter().map(|s| s.code()).collect();
            let ports: String = chain
                .ports
                .iter()
                .map(|p| if p.is_some() { 'x' } else { '.' })
                .collect();
            let _ = writeln!(
                out,
                "chain {ci} ({}): filters [{statuses}] ports [{ports}] fifos {:?}",
                chain.array,
                chain.fifo_occupancies()
            );
        }
        out
    }

    /// Enables per-cycle FIFO occupancy histograms on every chain.
    /// Call before running; each subsequent [`Machine::step`] records
    /// one sample per FIFO. Costs one bucket lookup per FIFO per cycle;
    /// when not enabled the recording path is a single branch.
    pub fn enable_occupancy_sampling(&mut self) {
        for chain in &mut self.chains {
            chain.enable_occupancy_sampling();
        }
    }

    /// A self-contained telemetry snapshot of the run so far: live
    /// counters (occupancy high-water marks, push/pop totals, filter
    /// forward/discard/stall counts split into fill and steady phases)
    /// next to the plan's bounds (Eq. (2) capacities, the §2.3 minimum
    /// total buffer, the bandwidth-limited cycle bound), ready for
    /// [`stencil_telemetry::validate_machine`].
    #[must_use]
    pub fn metrics(&self) -> MachineMetrics {
        MachineMetrics {
            cycles: self.cycle,
            outputs: self.kernel.outputs(),
            iterations: self.iteration_index.len(),
            fill_latency: self.kernel.first_fire_cycle().map_or(0, |c| c + 1),
            steady_ii: self.kernel.steady_ii().unwrap_or(0.0),
            ideal_cycles: self.ideal_cycles(),
            offchip_streams: self.facts.offchip_streams,
            planned_total_buffer: self.facts.planned_total_buffer,
            min_total_buffer: self.facts.min_total_buffer,
            linearity_holds: self.facts.linearity_holds,
            chains: self.chains.iter().map(ChainState::metrics).collect(),
        }
    }

    /// Statistics of the run so far.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        RunStats {
            cycles: self.cycle,
            outputs: self.kernel.outputs(),
            fill_latency: self.kernel.first_fire_cycle().map_or(0, |c| c + 1),
            steady_ii: self.kernel.steady_ii().unwrap_or(f64::NAN),
            ideal_cycles: self.ideal_cycles(),
            chains: self.chains.iter().map(ChainState::stats).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{compile, ArrayAccesses, StencilProgram, StencilSpec};
    use stencil_polyhedral::{Constraint, Polyhedron};

    fn cross_offsets() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    fn small_denoise(rows: i64, cols: i64) -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise-small",
            Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
            cross_offsets(),
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn denoise_runs_to_completion_with_ii_one() {
        let plan = small_denoise(10, 12);
        let mut m = Machine::new(&plan).unwrap();
        let stats = m.run(100_000).unwrap();
        assert_eq!(stats.outputs, 8 * 10);
        assert!(stats.fully_pipelined(), "steady II = {}", stats.steady_ii);
        assert!(m.is_done());
        // Every FIFO filled exactly to its allocated reuse distance.
        assert!(stats.chains[0].occupancy_within_capacity());
        assert!(stats.chains[0].occupancy_reaches_capacity());
        // The whole input domain was streamed exactly once.
        assert_eq!(stats.chains[0].inputs_streamed, 10 * 12);
    }

    #[test]
    fn fill_latency_matches_first_needed_element() {
        // The kernel first fires one cycle after filter 0 forwards the
        // element at offset (i+1, j) of the first iteration — rank 2W+1
        // in a W-wide grid (paper §3.4.1: cycle 2049 for W=1024).
        let plan = small_denoise(8, 8);
        let mut m = Machine::new(&plan).unwrap();
        let stats = m.run(100_000).unwrap();
        // First needed head element: (2, 1) on an 8-wide grid = rank 17,
        // i.e. the 18th stream element, consumed at 1-based cycle 18;
        // the kernel fires the cycle after.
        assert_eq!(stats.fill_latency, 19);
    }

    #[test]
    fn fire_records_expose_elements() {
        let plan = small_denoise(6, 6);
        let mut m = Machine::new(&plan).unwrap();
        let mut fires = 0;
        while !m.is_done() {
            m.step().unwrap();
            if let Some(rec) = m.last_fire() {
                assert_eq!(rec.ports.len(), 1);
                assert_eq!(rec.ports[0].len(), 5);
                fires += 1;
            }
        }
        assert_eq!(fires, 16);
    }

    #[test]
    fn undersized_fifo_deadlocks() {
        // Eq. (2) violated: shrink FIFO_0 (needs depth 11 on a 12-wide
        // grid) to 3. The dependency cycle of Fig. 8 then closes and the
        // distributed system wedges — detected by the watchdog.
        let plan = small_denoise(10, 12);
        let mut m = Machine::new(&plan).unwrap();
        if let FeedState::Fifo(ch) = &mut m.chains[0].feeds[1] {
            *ch = Channel::new(3);
        } else {
            panic!("feed 1 should be a FIFO");
        }
        let err = m.run(100_000).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn skewed_grid_adapts_occupancy() {
        // Fig. 9: a skewed iteration domain; the number of elements in
        // each FIFO changes as the wavefront advances, handled with no
        // central controller.
        let iter = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 0, 1),
                Constraint::upper_bound(2, 0, 18),
                Constraint::new(&[-1, 1], -1), // j >= i + 1
                Constraint::new(&[1, -1], 10), // j <= i + 10
            ],
        );
        let spec = StencilSpec::new("skew", iter, cross_offsets()).unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        let mut m = Machine::new(&plan).unwrap();
        let mut occupancy_profiles: Vec<Vec<u64>> = Vec::new();
        while !m.is_done() {
            m.step().unwrap();
            occupancy_profiles.push(m.fifo_occupancies(0));
        }
        let stats = m.stats();
        assert!(stats.fully_pipelined(), "steady II = {}", stats.steady_ii);
        assert!(stats.chains[0].occupancy_within_capacity());
        // Occupancy of the big FIFOs must actually vary over time
        // (dynamic adjustment), not sit at a constant level.
        let f0: Vec<u64> = occupancy_profiles.iter().map(|v| v[0]).collect();
        let steady: Vec<u64> = f0[plan.total_buffer_size() as usize..].to_vec();
        let min = steady.iter().min().copied().unwrap_or(0);
        let max = steady.iter().max().copied().unwrap_or(0);
        assert!(max > min, "FIFO_0 occupancy never adapted: {min}..{max}");
    }

    #[test]
    fn tradeoff_machine_still_correct() {
        let plan = small_denoise(10, 12).with_offchip_streams(3).unwrap();
        let mut m = Machine::new(&plan).unwrap();
        let stats = m.run(100_000).unwrap();
        assert_eq!(stats.outputs, 80);
        assert!(stats.fully_pipelined());
        // Three streams walk the input domain; trailing elements the
        // downstream segments never need stay unconsumed at completion.
        assert!(stats.chains[0].inputs_streamed >= 10 * 12);
        assert!(stats.chains[0].inputs_streamed <= 3 * 10 * 12);
    }

    #[test]
    fn full_bandwidth_no_buffers() {
        let plan = small_denoise(8, 8).with_offchip_streams(5).unwrap();
        assert_eq!(plan.total_buffer_size(), 0);
        let mut m = Machine::new(&plan).unwrap();
        let stats = m.run(100_000).unwrap();
        assert_eq!(stats.outputs, 36);
        assert!(stats.fully_pipelined());
    }

    #[test]
    fn multi_array_accelerator() {
        let program = StencilProgram {
            name: "two-arrays".to_owned(),
            iteration_domain: Polyhedron::rect(&[(1, 8), (1, 8)]),
            arrays: vec![
                ArrayAccesses::new("g", cross_offsets()),
                ArrayAccesses::new("f", vec![Point::new(&[0, 0])]),
            ],
        };
        let acc = compile(&program).unwrap();
        let mut m = Machine::for_accelerator(&acc).unwrap();
        let stats = m.run(100_000).unwrap();
        assert_eq!(stats.outputs, 64);
        assert!(stats.fully_pipelined());
        assert_eq!(stats.chains.len(), 2);
        assert_eq!(stats.chains[1].fifo_capacity.len(), 0);
    }

    #[test]
    fn stream_latency_is_hidden_after_fill() {
        let plan = small_denoise(8, 8);
        let mut m = Machine::with_stream_latency(&plan, 25).unwrap();
        let stats = m.run(100_000).unwrap();
        assert_eq!(stats.outputs, 36);
        assert!(stats.fully_pipelined());
        // Fill simply starts later; steady state is unaffected.
        assert!(stats.fill_latency >= 25);
    }

    #[test]
    fn one_dimensional_window() {
        let spec = StencilSpec::new(
            "blur1d",
            Polyhedron::rect(&[(1, 100)]),
            vec![Point::new(&[-1]), Point::new(&[0]), Point::new(&[1])],
        )
        .unwrap();
        let plan = MemorySystemPlan::generate(&spec).unwrap();
        assert_eq!(plan.fifo_capacities(), vec![1, 1]);
        let mut m = Machine::new(&plan).unwrap();
        let stats = m.run(10_000).unwrap();
        assert_eq!(stats.outputs, 100);
        assert!(stats.fully_pipelined());
    }

    #[test]
    fn metrics_capture_bounds_and_counters() {
        let plan = small_denoise(10, 12);
        let mut m = Machine::new(&plan).unwrap();
        m.enable_occupancy_sampling();
        let _ = m.run(100_000).unwrap();
        let metrics = m.metrics();
        assert_eq!(metrics.outputs, metrics.iterations);
        assert_eq!(metrics.offchip_streams, 1);
        assert_eq!(metrics.planned_total_buffer, plan.total_buffer_size());
        assert_eq!(metrics.min_total_buffer, plan.min_total_size());
        assert!(metrics.linearity_holds);
        let chain = &metrics.chains[0];
        assert_eq!(chain.input_elements, 10 * 12);
        assert_eq!(chain.inputs_streamed, 10 * 12);
        // Per-FIFO: planned capacity, tight high water, push/pop flow.
        let caps: Vec<u64> = chain.fifos.iter().map(|f| f.capacity).collect();
        assert_eq!(caps, plan.fifo_capacities());
        for f in &chain.fifos {
            assert_eq!(f.high_water, f.capacity.max(1));
            assert!(f.pops <= f.pushes);
            // Sampling was on: one record per simulated cycle.
            assert_eq!(f.occupancy.total(), metrics.cycles);
            assert_eq!(f.occupancy.overflow(), 0);
        }
        // The fill/steady stall split: this design stalls only while
        // the reuse buffers fill, never afterwards.
        assert!(chain.filters.iter().any(|f| f.stalls > 0));
        assert_eq!(metrics.steady_stalls(), 0);
        // And the validator agrees the run met every bound.
        assert_eq!(stencil_telemetry::validate_machine(&metrics), Vec::new());
    }

    #[test]
    fn tradeoff_metrics_validate_clean() {
        for streams in [2, 3] {
            let plan = small_denoise(10, 12).with_offchip_streams(streams).unwrap();
            let mut m = Machine::new(&plan).unwrap();
            let _ = m.run(100_000).unwrap();
            let metrics = m.metrics();
            assert_eq!(metrics.offchip_streams, streams);
            let violations = stencil_telemetry::validate_machine(&metrics);
            assert_eq!(violations, Vec::new(), "streams={streams}");
        }
    }

    #[test]
    fn partial_run_metrics_report_incomplete() {
        let plan = small_denoise(10, 12);
        let mut m = Machine::new(&plan).unwrap();
        for _ in 0..10 {
            m.step().unwrap();
        }
        let metrics = m.metrics();
        assert!(metrics.outputs < metrics.iterations);
        let violations = stencil_telemetry::validate_machine(&metrics);
        assert!(violations
            .iter()
            .all(|v| v.check == stencil_telemetry::BoundCheck::OutputsComplete));
    }

    #[test]
    fn snapshot_describes_state() {
        let plan = small_denoise(8, 8);
        let mut m = Machine::new(&plan).unwrap();
        for _ in 0..24 {
            m.step().unwrap();
        }
        let snap = m.snapshot();
        assert!(snap.contains("cycle 24"), "{snap}");
        assert!(snap.contains("chain 0 (A)"), "{snap}");
        assert!(snap.contains("filters ["), "{snap}");
    }

    #[test]
    fn trace_records_fill_process() {
        let plan = small_denoise(8, 8);
        let mut m = Machine::new(&plan).unwrap();
        m.enable_trace(0, 64);
        let _ = m.run(100_000).unwrap();
        let trace = m.trace(0).unwrap();
        assert!(!trace.is_empty());
        // Cycle 1: only the head splitter has data (the paper's Table 3
        // idealizes away chain propagation latency; the real machine
        // staggers by one FIFO hop per stage). Filter 0 discards the
        // first boundary element, everyone downstream is starved.
        let first = &trace.rows()[0];
        assert_eq!(first.cycle, 1);
        let codes: Vec<char> = first.filter_status.iter().map(|s| s.code()).collect();
        assert_eq!(codes, vec!['d', '.', '.', '.', '.']);
        assert!(first.fifo_occupancy.iter().sum::<u64>() <= 1);
        // The fill proceeds exactly as §3.4.1 describes: the latest
        // filter (A[i-1][j]) is the first to stall on a needed element,
        // backing data up into FIFO_3.
        let first_stall = trace
            .rows()
            .iter()
            .find(|r| r.filter_status.iter().any(|s| s.code() == 's'))
            .expect("some filter must stall during fill");
        assert_eq!(first_stall.filter_status[4].code(), 's');
        // And FIFO_3 eventually fills to its full reuse distance (7 on an
        // 8-wide grid) while upstream filters keep the stream advancing.
        let f3_full = trace
            .rows()
            .iter()
            .find(|r| r.fifo_occupancy[3] == 7)
            .expect("FIFO_3 must fill during the run");
        assert!(f3_full.cycle > first_stall.cycle);
    }
}
