//! Aggregate statistics of a simulated run.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Per-memory-system statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainStats {
    /// The served array's name.
    pub array: String,
    /// Input elements streamed from off-chip (all streams of the chain).
    pub inputs_streamed: u64,
    /// Allocated capacity of each reuse FIFO, chain order.
    pub fifo_capacity: Vec<u64>,
    /// Highest observed occupancy of each reuse FIFO.
    pub fifo_max_occupancy: Vec<u64>,
    /// Stalled cycles per filter.
    pub filter_stalls: Vec<u64>,
    /// Elements forwarded to the kernel per filter.
    pub forwarded: Vec<u64>,
    /// Elements discarded per filter.
    pub discarded: Vec<u64>,
}

impl ChainStats {
    /// True if no FIFO ever exceeded its allocated capacity (it cannot,
    /// by construction, but the check documents the invariant).
    #[must_use]
    pub fn occupancy_within_capacity(&self) -> bool {
        self.fifo_max_occupancy
            .iter()
            .zip(&self.fifo_capacity)
            .all(|(occ, cap)| occ <= cap.max(&1))
    }

    /// True if every FIFO's worst-case occupancy reached its allocated
    /// capacity — evidence the buffer sizing is tight (no waste).
    #[must_use]
    pub fn occupancy_reaches_capacity(&self) -> bool {
        self.fifo_max_occupancy
            .iter()
            .zip(&self.fifo_capacity)
            .all(|(occ, cap)| occ == cap.max(&1))
    }
}

/// Statistics of one complete simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total simulated clock cycles.
    pub cycles: u64,
    /// Kernel outputs produced (equals the iteration count).
    pub outputs: u64,
    /// Cycle of the first output — the automatic reuse-buffer fill
    /// latency (§3.4.1 of the paper).
    pub fill_latency: u64,
    /// Measured cycles per output between the first and last firing.
    /// Slightly above 1 even for a perfect design, because the off-chip
    /// stream also carries boundary elements the kernel only reads as
    /// neighbours (a `W`-wide row yields `W - 2` outputs for DENOISE).
    pub steady_ii: f64,
    /// The input-bandwidth-limited lower bound on total cycles: the
    /// stream rank of the last element any kernel port needs, plus the
    /// forward + fire cycles. A design meets the paper's "full
    /// pipelining" target iff it finishes within this bound — the kernel
    /// is then never stalled by the memory system, only by off-chip
    /// bandwidth.
    pub ideal_cycles: u64,
    /// Per-memory-system detail.
    pub chains: Vec<ChainStats>,
}

impl RunStats {
    /// True if the run achieved full pipelining: execution time is
    /// input-bandwidth-limited (`cycles <= ideal_cycles`), i.e. the
    /// splitter/FIFO/filter network never held the kernel back.
    #[must_use]
    pub fn fully_pipelined(&self) -> bool {
        self.cycles <= self.ideal_cycles
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} outputs in {} cycles (fill latency {}, steady II {:.3})",
            self.outputs, self.cycles, self.fill_latency, self.steady_ii
        )?;
        for ch in &self.chains {
            writeln!(
                f,
                "  array {}: {} inputs, FIFO max/cap {:?}/{:?}",
                ch.array, ch.inputs_streamed, ch.fifo_max_occupancy, ch.fifo_capacity
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ChainStats {
        ChainStats {
            array: "A".to_owned(),
            inputs_streamed: 100,
            fifo_capacity: vec![10, 1],
            fifo_max_occupancy: vec![10, 1],
            filter_stalls: vec![0, 5, 9],
            forwarded: vec![50, 50, 50],
            discarded: vec![50, 50, 50],
        }
    }

    #[test]
    fn occupancy_checks() {
        let mut c = chain();
        assert!(c.occupancy_within_capacity());
        assert!(c.occupancy_reaches_capacity());
        c.fifo_max_occupancy = vec![9, 1];
        assert!(c.occupancy_within_capacity());
        assert!(!c.occupancy_reaches_capacity());
        c.fifo_max_occupancy = vec![11, 1];
        assert!(!c.occupancy_within_capacity());
    }

    #[test]
    fn zero_capacity_fifo_promoted_in_checks() {
        let c = ChainStats {
            array: "A".into(),
            inputs_streamed: 1,
            fifo_capacity: vec![0],
            fifo_max_occupancy: vec![1],
            filter_stalls: vec![],
            forwarded: vec![],
            discarded: vec![],
        };
        assert!(c.occupancy_within_capacity());
        assert!(c.occupancy_reaches_capacity());
    }

    #[test]
    fn fully_pipelined_flag_and_display() {
        let stats = RunStats {
            cycles: 110,
            outputs: 100,
            fill_latency: 10,
            steady_ii: 1.0,
            ideal_cycles: 110,
            chains: vec![chain()],
        };
        assert!(stats.fully_pipelined());
        let slow = RunStats {
            ideal_cycles: 100,
            ..stats.clone()
        };
        assert!(!slow.fully_pipelined());
        let s = stats.to_string();
        assert!(s.contains("steady II 1.000"), "{s}");
        assert!(s.contains("array A"), "{s}");
    }
}
