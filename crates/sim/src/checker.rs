//! Independent trace-invariant checking.
//!
//! The machine verifies functional correctness online; this module
//! cross-checks a recorded [`Trace`] *after the fact* against the
//! structural invariants of the microarchitecture, with no access to the
//! machine's internals — a second, independent line of defence (and a
//! way to validate traces captured elsewhere, e.g. from real RTL
//! simulation, against a plan).
//!
//! Checked invariants, per recorded cycle:
//!
//! 1. **Capacity**: no FIFO occupancy exceeds its planned capacity.
//! 2. **Flow conservation**: each FIFO's occupancy changes by the
//!    difference of its upstream splitter firing (push) and its
//!    downstream splitter firing (pop); a splitter fires exactly when
//!    its filter's status is `Forwarding` or `Discarding`.
//! 3. **Monotone stream**: the head stream element rank never decreases
//!    and increases by exactly one whenever filter 0 consumed.

use stencil_core::{Feed, MemorySystemPlan};

use crate::filter::FilterStatus;
use crate::trace::Trace;

/// A single invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceViolation {
    /// Cycle of the violation (as recorded in the trace).
    pub cycle: u64,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}

fn consumed(status: FilterStatus) -> bool {
    matches!(status, FilterStatus::Forwarding | FilterStatus::Discarding)
}

/// Checks a trace against the plan's structural invariants; returns all
/// violations (empty = clean).
///
/// The trace must have been recorded from cycle 1 (the machine's
/// `enable_trace` does this); gaps at the end are fine.
///
/// # Panics
///
/// Panics if the trace's shape (filter/FIFO counts) does not match the
/// plan.
#[must_use]
pub fn check_trace(plan: &MemorySystemPlan, trace: &Trace) -> Vec<TraceViolation> {
    let mut violations = Vec::new();
    let capacities: Vec<u64> = plan.fifo_capacities();
    // Map FIFO index -> (upstream filter, downstream filter) positions.
    let mut fifo_ends = Vec::new();
    for (k, feed) in plan.feeds().iter().enumerate() {
        if matches!(feed, Feed::Fifo { .. }) {
            fifo_ends.push((k - 1, k));
        }
    }

    let mut prev_occ: Option<Vec<u64>> = None;
    let mut prev_elem: Option<u64> = None;
    for row in trace.rows() {
        assert_eq!(
            row.filter_status.len(),
            plan.port_count(),
            "trace/plan filter count mismatch"
        );
        assert_eq!(
            row.fifo_occupancy.len(),
            capacities.len(),
            "trace/plan FIFO count mismatch"
        );

        // 1. Capacity.
        for (k, (&occ, &cap)) in row.fifo_occupancy.iter().zip(&capacities).enumerate() {
            if occ > cap.max(1) {
                violations.push(TraceViolation {
                    cycle: row.cycle,
                    message: format!("FIFO_{k} occupancy {occ} exceeds capacity {cap}"),
                });
            }
        }

        // 2. Flow conservation (needs the previous row).
        if let Some(prev) = &prev_occ {
            for (q, &(up, down)) in fifo_ends.iter().enumerate() {
                let push = i64::from(consumed(row.filter_status[up]));
                let pop = i64::from(consumed(row.filter_status[down]));
                let expected = prev[q] as i64 + push - pop;
                let got = row.fifo_occupancy[q] as i64;
                if expected < 0 {
                    violations.push(TraceViolation {
                        cycle: row.cycle,
                        message: format!("FIFO_{q} popped while empty"),
                    });
                } else if got != expected {
                    violations.push(TraceViolation {
                        cycle: row.cycle,
                        message: format!(
                            "FIFO_{q} occupancy {got}, expected {expected} \
                             (prev {} +{push} -{pop})",
                            prev[q]
                        ),
                    });
                }
            }
        }

        // 3. Monotone stream rank, advancing with head consumption.
        if let (Some(prev), Some(cur)) = (prev_elem, row.stream_elem) {
            if cur < prev {
                violations.push(TraceViolation {
                    cycle: row.cycle,
                    message: format!("stream rank went backwards: {prev} -> {cur}"),
                });
            }
            if cur > prev + 1 {
                violations.push(TraceViolation {
                    cycle: row.cycle,
                    message: format!("stream skipped elements: {prev} -> {cur}"),
                });
            }
        }
        prev_elem = row.stream_elem.or(prev_elem);
        prev_occ = Some(row.fifo_occupancy.clone());
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::trace::TraceRow;
    use stencil_core::StencilSpec;
    use stencil_polyhedral::{Point, Polyhedron};

    fn plan() -> MemorySystemPlan {
        let spec = StencilSpec::new(
            "denoise",
            Polyhedron::rect(&[(1, 10), (1, 14)]),
            vec![
                Point::new(&[-1, 0]),
                Point::new(&[0, -1]),
                Point::new(&[0, 0]),
                Point::new(&[0, 1]),
                Point::new(&[1, 0]),
            ],
        )
        .unwrap();
        MemorySystemPlan::generate(&spec).unwrap()
    }

    #[test]
    fn real_traces_are_clean() {
        let plan = plan();
        let mut m = Machine::new(&plan).unwrap();
        m.enable_trace(0, 4096);
        m.run(1_000_000).unwrap();
        let violations = check_trace(&plan, m.trace(0).unwrap());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn tampered_occupancy_is_caught() {
        let plan = plan();
        let mut m = Machine::new(&plan).unwrap();
        m.enable_trace(0, 256);
        m.run(1_000_000).unwrap();
        let mut trace = m.trace(0).unwrap().clone();
        // Clone rows, bump one occupancy beyond capacity.
        let mut tampered = Trace::with_limit(512);
        for (k, row) in trace.rows().iter().enumerate() {
            let mut r = row.clone();
            if k == 40 {
                r.fifo_occupancy[0] = plan.fifo_capacities()[0] + 5;
            }
            tampered.record(r);
        }
        let violations = check_trace(&plan, &tampered);
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("exceeds capacity")),
            "{violations:?}"
        );
        // Flow conservation also trips around the tampered cycle.
        assert!(violations.len() >= 2, "{violations:?}");
        let _ = &mut trace;
    }

    #[test]
    fn skipped_stream_elements_are_caught() {
        let plan = plan();
        let mut t = Trace::with_limit(8);
        let statuses = vec![FilterStatus::Starved; plan.port_count()];
        let occ = vec![0u64; plan.bank_count()];
        t.record(TraceRow {
            cycle: 1,
            stream_elem: Some(0),
            filter_status: statuses.clone(),
            fifo_occupancy: occ.clone(),
        });
        t.record(TraceRow {
            cycle: 2,
            stream_elem: Some(5),
            filter_status: statuses,
            fifo_occupancy: occ,
        });
        let violations = check_trace(&plan, &t);
        assert!(
            violations.iter().any(|v| v.message.contains("skipped")),
            "{violations:?}"
        );
    }
}
