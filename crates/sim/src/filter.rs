//! Data filters (Fig. 10 of the paper).
//!
//! A data filter customizes the input stream `D_A` to the access pattern
//! of one array reference: an *input counter* iterates over `D_A` as
//! elements arrive, an *output counter* iterates over the reference's
//! data domain `D_Ax`, and a data switch forwards the element to the
//! kernel port exactly when the two counters agree — discarding it
//! otherwise.

use serde::{Deserialize, Serialize};
use stencil_polyhedral::{Cursor, DomainIndex};

use crate::elem::Elem;

/// What a filter did (or could not do) in one cycle — the per-cycle
/// status column of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterStatus {
    /// Forwarded the offered element to its kernel port (`f`).
    Forwarding,
    /// Discarded the offered element (`d`).
    Discarding,
    /// Stalled: the element is needed but the kernel port is still
    /// occupied (`s`).
    Stalled,
    /// Stalled: the downstream reuse FIFO is full, blocking the shared
    /// splitter (`s` in the paper's combined view).
    BlockedDownstream,
    /// No element was offered this cycle (upstream empty).
    Starved,
}

impl FilterStatus {
    /// The single-character code used in Table 3 (`f`/`d`/`s`, with `.`
    /// for a starved filter).
    #[must_use]
    pub fn code(&self) -> char {
        match self {
            FilterStatus::Forwarding => 'f',
            FilterStatus::Discarding => 'd',
            FilterStatus::Stalled | FilterStatus::BlockedDownstream => 's',
            FilterStatus::Starved => '.',
        }
    }
}

/// The decision a filter takes for an offered element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// Consume and forward to the kernel port.
    Forward,
    /// Consume and drop.
    Discard,
    /// Do not consume: the port must drain first.
    Wait,
}

/// Runtime state of one data filter.
#[derive(Debug, Clone)]
pub struct DataFilter {
    in_cursor: Cursor,
    out_cursor: Cursor,
    forwarded: u64,
    discarded: u64,
    stall_cycles: u64,
}

impl DataFilter {
    /// Creates a filter with both counters at their domain starts.
    ///
    /// `input` indexes `D_A`; `domain` indexes this reference's `D_Ax`.
    #[must_use]
    pub fn new(input: &DomainIndex, domain: &DomainIndex) -> Self {
        Self {
            in_cursor: input.cursor(),
            out_cursor: domain.cursor(),
            forwarded: 0,
            discarded: 0,
            stall_cycles: 0,
        }
    }

    /// Decides what to do with the offered element given whether the
    /// kernel port is free. Does not change state.
    ///
    /// The offered element is by construction the one at the input
    /// counter; the decision compares the two counters' grid points.
    #[must_use]
    pub fn decide(
        &self,
        input: &DomainIndex,
        domain: &DomainIndex,
        port_free: bool,
    ) -> FilterDecision {
        let in_point = self
            .in_cursor
            .point(input)
            .expect("decide called with exhausted input counter");
        match self.out_cursor.point(domain) {
            Some(out_point) if out_point == in_point => {
                if port_free {
                    FilterDecision::Forward
                } else {
                    FilterDecision::Wait
                }
            }
            // Output counter behind/ahead or exhausted: not our element.
            _ => FilterDecision::Discard,
        }
    }

    /// Commits a [`FilterDecision::Forward`]: advances both counters.
    pub fn commit_forward(&mut self, input: &DomainIndex, domain: &DomainIndex) {
        self.in_cursor.advance(input);
        self.out_cursor.advance(domain);
        self.forwarded += 1;
    }

    /// Commits a [`FilterDecision::Discard`]: advances the input counter.
    pub fn commit_discard(&mut self, input: &DomainIndex) {
        self.in_cursor.advance(input);
        self.discarded += 1;
    }

    /// Records a stalled cycle (for stats).
    pub fn note_stall(&mut self) {
        self.stall_cycles += 1;
    }

    /// The rank of the next element this filter expects on its input.
    #[must_use]
    pub fn input_rank(&self, input: &DomainIndex) -> u64 {
        self.in_cursor.rank(input)
    }

    /// The expected element for the current input-counter position.
    #[must_use]
    pub fn expected_elem(&self, input: &DomainIndex) -> Option<Elem> {
        if self.in_cursor.is_done(input) {
            None
        } else {
            Some(Elem::new(self.in_cursor.rank(input)))
        }
    }

    /// True once the filter has forwarded its whole data domain.
    #[must_use]
    pub fn is_done(&self, domain: &DomainIndex) -> bool {
        self.out_cursor.is_done(domain)
    }

    /// Elements forwarded to the kernel so far.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Elements discarded so far.
    #[must_use]
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Cycles spent stalled (port occupied or downstream full).
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_polyhedral::Polyhedron;

    #[test]
    fn status_codes() {
        assert_eq!(FilterStatus::Forwarding.code(), 'f');
        assert_eq!(FilterStatus::Discarding.code(), 'd');
        assert_eq!(FilterStatus::Stalled.code(), 's');
        assert_eq!(FilterStatus::BlockedDownstream.code(), 's');
        assert_eq!(FilterStatus::Starved.code(), '.');
    }

    #[test]
    fn filter_selects_subdomain() {
        // Input 0..4, reference domain 2..3: discard 0,1, forward 2,3,
        // discard 4.
        let input = Polyhedron::rect(&[(0, 4)]).index().unwrap();
        let domain = Polyhedron::rect(&[(2, 3)]).index().unwrap();
        let mut f = DataFilter::new(&input, &domain);
        let mut log = Vec::new();
        for _ in 0..5 {
            match f.decide(&input, &domain, true) {
                FilterDecision::Forward => {
                    log.push('f');
                    f.commit_forward(&input, &domain);
                }
                FilterDecision::Discard => {
                    log.push('d');
                    f.commit_discard(&input);
                }
                FilterDecision::Wait => log.push('s'),
            }
        }
        assert_eq!(log, vec!['d', 'd', 'f', 'f', 'd']);
        assert!(f.is_done(&domain));
        assert_eq!(f.forwarded(), 2);
        assert_eq!(f.discarded(), 3);
    }

    #[test]
    fn waits_when_port_busy() {
        let input = Polyhedron::rect(&[(0, 2)]).index().unwrap();
        let domain = Polyhedron::rect(&[(0, 2)]).index().unwrap();
        let mut f = DataFilter::new(&input, &domain);
        assert_eq!(f.decide(&input, &domain, false), FilterDecision::Wait);
        f.note_stall();
        assert_eq!(f.stall_cycles(), 1);
        assert_eq!(f.decide(&input, &domain, true), FilterDecision::Forward);
    }

    #[test]
    fn expected_elem_tracks_input_counter() {
        let input = Polyhedron::rect(&[(0, 2)]).index().unwrap();
        let domain = Polyhedron::rect(&[(1, 1)]).index().unwrap();
        let mut f = DataFilter::new(&input, &domain);
        assert_eq!(f.expected_elem(&input), Some(Elem::new(0)));
        f.commit_discard(&input);
        assert_eq!(f.expected_elem(&input), Some(Elem::new(1)));
        assert_eq!(f.input_rank(&input), 1);
    }
}
