//! Bounded FIFO channels — the reuse FIFOs of the microarchitecture.

use std::collections::VecDeque;

use crate::elem::Elem;

/// A bounded single-clock FIFO.
///
/// Models a dual-port memory FIFO with *first-word-fall-through*
/// semantics: within one simulated cycle the consumer side is evaluated
/// before the producer side, so a full FIFO that is popped can accept a
/// push in the same cycle — exactly the behaviour that lets the chain
/// sustain one element per cycle at steady state (II = 1).
#[derive(Debug, Clone)]
pub struct Channel {
    buf: VecDeque<Elem>,
    capacity: u64,
    max_occupancy: u64,
    pushes: u64,
    pops: u64,
}

impl Channel {
    /// Creates a FIFO with the given capacity, in elements.
    ///
    /// A capacity of 0 is promoted to 1: the physical FIFO always has at
    /// least one register stage.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Self {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            max_occupancy: 0,
            pushes: 0,
            pops: 0,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Elements currently stored.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    /// True if no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True if the FIFO cannot accept a push this cycle.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// The element at the head, if any (does not consume).
    #[must_use]
    pub fn peek(&self) -> Option<Elem> {
        self.buf.front().copied()
    }

    /// Removes and returns the head element.
    pub fn pop(&mut self) -> Option<Elem> {
        let e = self.buf.pop_front();
        if e.is_some() {
            self.pops += 1;
        }
        e
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — the machine's control logic must
    /// never push into a full FIFO (that would model data loss in
    /// hardware).
    pub fn push(&mut self, e: Elem) {
        assert!(
            !self.is_full(),
            "push into full FIFO (capacity {})",
            self.capacity
        );
        self.buf.push_back(e);
        self.pushes += 1;
        self.max_occupancy = self.max_occupancy.max(self.len());
    }

    /// The highest occupancy ever observed — must never exceed the
    /// allocated maximum reuse distance if the sizing analysis is right.
    #[must_use]
    pub fn max_occupancy(&self) -> u64 {
        self.max_occupancy
    }

    /// Total elements ever pushed.
    #[must_use]
    pub fn total_pushes(&self) -> u64 {
        self.pushes
    }

    /// Total elements ever popped (a pop of an empty FIFO does not
    /// count).
    #[must_use]
    pub fn total_pops(&self) -> u64 {
        self.pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_bounds() {
        let mut ch = Channel::new(2);
        assert!(ch.is_empty());
        assert!(!ch.is_full());
        ch.push(Elem::new(1));
        ch.push(Elem::new(2));
        assert!(ch.is_full());
        assert_eq!(ch.peek(), Some(Elem::new(1)));
        assert_eq!(ch.pop(), Some(Elem::new(1)));
        ch.push(Elem::new(3));
        assert_eq!(ch.pop(), Some(Elem::new(2)));
        assert_eq!(ch.pop(), Some(Elem::new(3)));
        assert_eq!(ch.pop(), None);
        assert_eq!(ch.max_occupancy(), 2);
        assert_eq!(ch.total_pushes(), 3);
        assert_eq!(ch.total_pops(), 3);
    }

    #[test]
    fn zero_capacity_promoted() {
        let ch = Channel::new(0);
        assert_eq!(ch.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "push into full FIFO")]
    fn overfull_push_panics() {
        let mut ch = Channel::new(1);
        ch.push(Elem::new(1));
        ch.push(Elem::new(2));
    }
}
