//! Data elements flowing through the simulated memory system.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One data element in flight.
///
/// Elements are identified by their **lexicographic rank** in the input
/// data domain `D_A` — the position at which the off-chip stream produces
/// them. Identifying elements by rank makes functional verification
/// exact: the kernel knows precisely which ranks each port must deliver
/// at every iteration, so any reordering, duplication or loss inside the
/// splitter/FIFO/filter network is detected immediately.
///
/// Payload values (e.g. image pixels) live outside the machine: callers
/// map ranks to values when the kernel fires (see
/// [`Machine::last_fire`](crate::Machine::last_fire)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Elem {
    id: u64,
}

impl Elem {
    /// Creates an element with the given input-stream rank.
    #[must_use]
    pub fn new(id: u64) -> Self {
        Self { id }
    }

    /// The element's lexicographic rank in `D_A`.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.id)
    }
}

impl From<u64> for Elem {
    fn from(id: u64) -> Self {
        Elem::new(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let e = Elem::new(42);
        assert_eq!(e.id(), 42);
        assert_eq!(Elem::from(42u64), e);
        assert_eq!(e.to_string(), "#42");
    }
}
