//! Externally driven input feeds, enabling accelerator-to-accelerator
//! forwarding (Appendix 9.3 of the paper): a downstream accelerator's
//! off-chip stream is replaced by a queue its producer fills at runtime.

use std::collections::VecDeque;

use crate::elem::Elem;

/// An input feed whose elements are pushed by an external producer
/// (typically another simulated accelerator) instead of an off-chip
/// stream.
///
/// Elements must be pushed in lexicographic order of the consumer's
/// input data domain; ids are assigned on push, so the producer only
/// needs to emit *its outputs in order* — which the microarchitecture
/// guarantees (outputs fire in lexicographic iteration order).
#[derive(Debug, Clone, Default)]
pub struct ExternalFeed {
    queue: VecDeque<Elem>,
    next_id: u64,
    produced: u64,
    closed: bool,
    max_backlog: u64,
}

impl ExternalFeed {
    /// Creates an empty open feed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues the next element; its id is the arrival sequence number
    /// (the lexicographic rank in the consumer's input domain).
    ///
    /// # Panics
    ///
    /// Panics if the feed was closed.
    pub fn push(&mut self) -> Elem {
        assert!(!self.closed, "push into closed external feed");
        let e = Elem::new(self.next_id);
        self.next_id += 1;
        self.queue.push_back(e);
        self.max_backlog = self.max_backlog.max(self.queue.len() as u64);
        e
    }

    /// Declares that no more elements will arrive.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// The element currently offered, if any.
    #[must_use]
    pub fn peek(&self) -> Option<Elem> {
        self.queue.front().copied()
    }

    /// Consumes the offered element.
    pub fn advance(&mut self) {
        let taken = self.queue.pop_front();
        debug_assert!(taken.is_some(), "advance on empty external feed");
        self.produced += 1;
    }

    /// True while more elements may still arrive.
    #[must_use]
    pub fn is_open(&self) -> bool {
        !self.closed
    }

    /// Elements consumed so far.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Elements pushed but not yet consumed.
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.queue.len() as u64
    }

    /// The largest backlog ever observed — the skid-buffer size direct
    /// accelerator-to-accelerator forwarding would need (Appendix 9.3
    /// argues this stays small, unlike an inter-block frame buffer).
    #[must_use]
    pub fn max_backlog(&self) -> u64 {
        self.max_backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_arrival_order() {
        let mut f = ExternalFeed::new();
        assert_eq!(f.push(), Elem::new(0));
        assert_eq!(f.push(), Elem::new(1));
        assert_eq!(f.peek(), Some(Elem::new(0)));
        f.advance();
        assert_eq!(f.peek(), Some(Elem::new(1)));
        assert_eq!(f.produced(), 1);
        assert_eq!(f.backlog(), 1);
        assert_eq!(f.max_backlog(), 2);
    }

    #[test]
    fn close_stops_pushes() {
        let mut f = ExternalFeed::new();
        f.push();
        assert!(f.is_open());
        f.close();
        assert!(!f.is_open());
    }

    #[test]
    #[should_panic(expected = "closed external feed")]
    fn push_after_close_panics() {
        let mut f = ExternalFeed::new();
        f.close();
        f.push();
    }
}
