//! Execution traces in the style of the paper's Table 3.
//!
//! The paper demonstrates the distributed fill behaviour of the
//! microarchitecture by tabulating, cycle by cycle, each data filter's
//! status (forwarding / discarding / stalled) and each reuse FIFO's
//! occupancy. [`Trace`] records exactly those observables.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::filter::FilterStatus;

/// One recorded cycle of one memory system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Clock cycle (1-based, matching Table 3).
    pub cycle: u64,
    /// Rank of the input-stream element offered this cycle, if any.
    pub stream_elem: Option<u64>,
    /// Per-filter status, chain order.
    pub filter_status: Vec<FilterStatus>,
    /// Per-FIFO occupancy *after* this cycle's transfers, chain order.
    pub fifo_occupancy: Vec<u64>,
}

/// A bounded per-chain execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    rows: Vec<TraceRow>,
    limit: usize,
}

impl Trace {
    /// Creates a trace that records at most `limit` cycles.
    #[must_use]
    pub fn with_limit(limit: usize) -> Self {
        Self {
            rows: Vec::new(),
            limit,
        }
    }

    /// Records one cycle (ignored once the limit is reached).
    pub fn record(&mut self, row: TraceRow) {
        if self.rows.len() < self.limit {
            self.rows.push(row);
        }
    }

    /// The recorded rows.
    #[must_use]
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// True if the trace recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Compacts the trace by keeping only rows where some filter status
    /// changed relative to the previous kept row — the presentation the
    /// paper uses for Table 3 (rows 1, 1025, 1026, 1027, 2049, ...).
    #[must_use]
    pub fn key_rows(&self) -> Vec<&TraceRow> {
        let mut out: Vec<&TraceRow> = Vec::new();
        for row in &self.rows {
            match out.last() {
                Some(prev) if prev.filter_status == row.filter_status => {}
                _ => out.push(row),
            }
        }
        out
    }
}

impl fmt::Display for Trace {
    /// Renders the trace as a Table 3-style text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n_filters = self.rows.first().map_or(0, |r| r.filter_status.len());
        let n_fifos = self.rows.first().map_or(0, |r| r.fifo_occupancy.len());
        write!(f, "{:>8} {:>8} ", "cycle", "elem")?;
        for k in 0..n_filters {
            write!(f, "flt{k} ")?;
        }
        for k in 0..n_fifos {
            write!(f, "{:>7}", format!("FIFO_{k}"))?;
        }
        writeln!(f)?;
        for row in self.key_rows() {
            write!(
                f,
                "{:>8} {:>8} ",
                row.cycle,
                row.stream_elem
                    .map_or_else(|| "-".to_owned(), |e| e.to_string())
            )?;
            for s in &row.filter_status {
                write!(f, "{:>4} ", s.code())?;
            }
            for occ in &row.fifo_occupancy {
                write!(f, "{occ:>7}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cycle: u64, statuses: &[FilterStatus], occ: &[u64]) -> TraceRow {
        TraceRow {
            cycle,
            stream_elem: Some(cycle - 1),
            filter_status: statuses.to_vec(),
            fifo_occupancy: occ.to_vec(),
        }
    }

    #[test]
    fn respects_limit() {
        let mut t = Trace::with_limit(2);
        for c in 1..=5 {
            t.record(row(c, &[FilterStatus::Forwarding], &[0]));
        }
        assert_eq!(t.rows().len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn key_rows_collapse_repeats() {
        let mut t = Trace::with_limit(100);
        use FilterStatus::{Discarding as D, Forwarding as F, Stalled as S};
        t.record(row(1, &[D, S], &[0]));
        t.record(row(2, &[D, S], &[1]));
        t.record(row(3, &[F, F], &[1]));
        t.record(row(4, &[F, F], &[1]));
        let keys = t.key_rows();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].cycle, 1);
        assert_eq!(keys[1].cycle, 3);
    }

    #[test]
    fn display_contains_header_and_codes() {
        let mut t = Trace::with_limit(10);
        t.record(row(
            1,
            &[FilterStatus::Discarding, FilterStatus::Stalled],
            &[0, 3],
        ));
        let s = t.to_string();
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("FIFO_0"), "{s}");
        assert!(s.contains('d'), "{s}");
        assert!(s.contains('s'), "{s}");
    }
}
