//! Deep accelerator pipelines: `T` chained stencil stages co-simulated
//! with direct forwarding between every pair.
//!
//! This realizes the scenario that motivates the paper's §2.1 remark on
//! loop fusion ("the stencil window is large, e.g., after loop fusion of
//! stencil applications"): instead of fusing `T` time steps into one
//! huge window, chain `T` accelerators — each with its own minimal
//! non-uniform memory system — and overlap their execution completely.
//! Total latency is one stream pass plus the sum of the (tiny) fill
//! latencies, not `T` stream passes.

use crate::error::SimError;
use crate::machine::Machine;
use crate::stats::RunStats;

/// A pipeline of `T ≥ 1` chained accelerators.
#[derive(Debug, Clone)]
pub struct AcceleratorPipeline {
    stages: Vec<Machine>,
}

/// Statistics of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Per-stage run statistics, upstream first.
    pub stages: Vec<RunStats>,
    /// Total co-simulated cycles until the last stage finished.
    pub cycles: u64,
    /// Largest forwarding backlog observed at each inter-stage boundary
    /// (`stages.len() - 1` entries).
    pub forward_backlogs: Vec<u64>,
}

impl PipelineStats {
    /// Outputs of the final stage.
    #[must_use]
    pub fn final_outputs(&self) -> u64 {
        self.stages.last().map_or(0, |s| s.outputs)
    }
}

impl AcceleratorPipeline {
    /// Builds the pipeline. Stage 0 must read from an off-chip stream
    /// ([`Machine::new`]); every later stage must have been built with
    /// [`Machine::with_external_input`] and consume exactly as many
    /// input elements as its predecessor produces iterations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Plan`] on size mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Machine>) -> Result<Self, SimError> {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        for w in stages.windows(2) {
            let produced = w[0].total_iterations();
            let consumed = w[1].total_input_elements(0);
            if produced != consumed {
                return Err(SimError::Plan(stencil_core::PlanError::DimensionMismatch {
                    domain: produced as usize,
                    offset: consumed as usize,
                }));
            }
        }
        Ok(Self { stages })
    }

    /// Number of stages.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Runs all stages in lockstep until the final stage completes.
    ///
    /// # Errors
    ///
    /// Propagates stage errors, plus [`SimError::CycleLimit`].
    pub fn run(&mut self, cycle_limit: u64) -> Result<PipelineStats, SimError> {
        let t = self.stages.len();
        let mut cycles = 0u64;
        while !self.stages[t - 1].is_done() {
            if cycles >= cycle_limit {
                return Err(SimError::CycleLimit {
                    limit: cycle_limit,
                    outputs: self.stages[t - 1].outputs(),
                });
            }
            for k in 0..t {
                if self.stages[k].is_done() {
                    continue;
                }
                self.stages[k].step()?;
                if k + 1 < t && self.stages[k].last_fire().is_some() {
                    // Split borrows around k.
                    let (left, right) = self.stages.split_at_mut(k + 1);
                    right[0].push_input(0);
                    if left[k].is_done() {
                        right[0].close_input(0);
                    }
                }
            }
            cycles += 1;
        }
        Ok(PipelineStats {
            stages: self.stages.iter().map(Machine::stats).collect(),
            cycles,
            forward_backlogs: (1..t)
                .map(|k| self.stages[k].max_input_backlog(0))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::{MemorySystemPlan, StencilSpec};
    use stencil_polyhedral::{Point, Polyhedron};

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    /// `T` chained DENOISE stages on an RxC frame; stage `t` iterates the
    /// interior shrunk by `t` on every side.
    fn pipeline(r: i64, c: i64, t: usize) -> AcceleratorPipeline {
        let mut stages = Vec::new();
        for k in 0..t as i64 {
            let spec = StencilSpec::new(
                format!("stage{k}"),
                Polyhedron::rect(&[(1 + k, r - 2 - k), (1 + k, c - 2 - k)]),
                cross(),
            )
            .unwrap();
            let plan = MemorySystemPlan::generate(&spec).unwrap();
            let m = if k == 0 {
                Machine::new(&plan).unwrap()
            } else {
                Machine::with_external_input(&plan).unwrap()
            };
            stages.push(m);
        }
        AcceleratorPipeline::new(stages).unwrap()
    }

    #[test]
    fn four_deep_pipeline_overlaps_completely() {
        let (r, c) = (32i64, 40i64);
        let mut p = pipeline(r, c, 4);
        assert_eq!(p.depth(), 4);
        let stats = p.run(10_000_000).unwrap();
        // Final stage outputs: interior shrunk by 4 on each side.
        assert_eq!(stats.final_outputs(), ((r - 8) * (c - 8)) as u64);
        // Total time ~ one stream pass + per-stage fills, far below
        // 4 sequential passes.
        let one_pass = (r * c) as u64;
        assert!(
            stats.cycles < one_pass + 4 * (3 * c as u64 + 16),
            "cycles {} not overlapped (one pass = {one_pass})",
            stats.cycles
        );
        // Skid buffers stay tiny at every boundary.
        for (k, b) in stats.forward_backlogs.iter().enumerate() {
            assert!(*b <= 4, "boundary {k}: backlog {b}");
        }
    }

    #[test]
    fn single_stage_pipeline_equals_machine() {
        let mut p = pipeline(16, 20, 1);
        let stats = p.run(1_000_000).unwrap();
        assert_eq!(stats.final_outputs(), 14 * 18);
        assert!(stats.forward_backlogs.is_empty());
    }

    #[test]
    fn mismatched_stage_sizes_rejected() {
        let a = StencilSpec::new("a", Polyhedron::rect(&[(1, 8), (1, 8)]), cross()).unwrap();
        let b = StencilSpec::new("b", Polyhedron::rect(&[(4, 5), (4, 5)]), cross()).unwrap();
        let s0 = Machine::new(&MemorySystemPlan::generate(&a).unwrap()).unwrap();
        let s1 = Machine::with_external_input(&MemorySystemPlan::generate(&b).unwrap()).unwrap();
        assert!(AcceleratorPipeline::new(vec![s0, s1]).is_err());
    }
}
