//! Cycle-accurate simulation of the **modulo-scheduled** non-uniform
//! design (the §6 future-work alternative implemented in
//! [`stencil_core::ModuloSchedulePlan`]).
//!
//! A centralized controller streams one element per cycle into a chain
//! of fixed delay lines; port `k` observes the stream delayed by the
//! accumulated reuse distance. The controller fires the kernel when the
//! live stream element is the earliest one the current iteration needs,
//! verifying that every delayed tap then holds exactly the right
//! element — which is true iff the reuse distances are constants, the
//! condition [`stencil_core::ModuloSchedulePlan::try_from_analysis`]
//! enforces. Simulating a *hand-built* plan on an incompatible domain
//! surfaces the misalignment as [`SimError::DataMismatch`].

use stencil_core::ModuloSchedulePlan;
use stencil_polyhedral::{Cursor, DomainIndex, Polyhedron};

use crate::error::SimError;
use crate::stats::{ChainStats, RunStats};

/// The modulo-scheduled machine: delay lines + central controller.
#[derive(Debug, Clone)]
pub struct ModuloMachine {
    delays: Vec<u64>,
    offsets: Vec<stencil_polyhedral::Point>,
    input_index: DomainIndex,
    iteration_index: DomainIndex,
    iter_cursor: Cursor,
    streamed: u64,
    cycle: u64,
    outputs: u64,
    first_fire: Option<u64>,
    last_fire: Option<u64>,
    bank_lengths: Vec<u64>,
    array: String,
}

impl ModuloMachine {
    /// Builds the machine for a plan over the given iteration and input
    /// data domains (the plan itself carries only the schedule).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Poly`] if a domain cannot be indexed.
    pub fn new(
        plan: &ModuloSchedulePlan,
        iteration_domain: &Polyhedron,
        input_domain: &Polyhedron,
    ) -> Result<Self, SimError> {
        let iteration_index = iteration_domain.index()?;
        let input_index = input_domain.index()?;
        Ok(Self {
            delays: plan.delays().to_vec(),
            offsets: plan.offsets().to_vec(),
            iter_cursor: iteration_index.cursor(),
            input_index,
            iteration_index,
            streamed: 0,
            cycle: 0,
            outputs: 0,
            first_fire: None,
            last_fire: None,
            bank_lengths: plan.banks().iter().map(|b| b.length).collect(),
            array: "A".to_owned(),
        })
    }

    /// True once every iteration has fired.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.iter_cursor.is_done(&self.iteration_index)
    }

    /// Outputs produced so far.
    #[must_use]
    pub fn outputs(&self) -> u64 {
        self.outputs
    }

    /// Advances one clock cycle: streams one element and fires the
    /// kernel if the schedule says the current iteration is ready.
    ///
    /// # Errors
    ///
    /// * [`SimError::DataMismatch`] if a delayed tap holds the wrong
    ///   element for the firing iteration — the static schedule is
    ///   incompatible with the domain.
    /// * [`SimError::Deadlock`] if the stream is exhausted with work
    ///   remaining.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.is_done() {
            return Ok(());
        }
        // Phase 1: fire on the element registered last cycle (ports are
        // pipeline registers, same as the streaming machine).
        let fired = self.try_fire()?;
        // Phase 2: stream one element per cycle (the controller has no
        // back-pressure: that is the point of a static schedule).
        if self.streamed < self.input_index.len() {
            self.streamed += 1;
        } else if !fired && !self.is_done() {
            return Err(SimError::Deadlock {
                cycle: self.cycle,
                outputs: self.outputs,
            });
        }
        self.cycle += 1;
        Ok(())
    }

    /// Fires the kernel if the most recently registered element is the
    /// earliest one the current iteration needs; verifies every tap.
    fn try_fire(&mut self) -> Result<bool, SimError> {
        let Some(live_rank) = self.streamed.checked_sub(1) else {
            return Ok(false);
        };
        if let Some(i) = self.iter_cursor.point(&self.iteration_index) {
            let earliest = self.input_index.rank_lt(&(i + self.offsets[0]));
            if earliest == live_rank {
                // Verify every delayed tap.
                for (k, f) in self.offsets.iter().enumerate() {
                    let expected = self.input_index.rank_lt(&(i + *f));
                    let tap = live_rank.checked_sub(self.delays[k]);
                    if tap != Some(expected) {
                        return Err(SimError::DataMismatch {
                            cycle: self.cycle,
                            chain: 0,
                            port: k,
                            expected,
                            got: tap.unwrap_or(u64::MAX),
                        });
                    }
                }
                self.iter_cursor.advance(&self.iteration_index);
                self.outputs += 1;
                if self.first_fire.is_none() {
                    self.first_fire = Some(self.cycle);
                }
                self.last_fire = Some(self.cycle);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`ModuloMachine::step`] errors, plus
    /// [`SimError::CycleLimit`].
    pub fn run(&mut self, cycle_limit: u64) -> Result<RunStats, SimError> {
        while !self.is_done() {
            if self.cycle >= cycle_limit {
                return Err(SimError::CycleLimit {
                    limit: cycle_limit,
                    outputs: self.outputs,
                });
            }
            self.step()?;
        }
        Ok(self.stats())
    }

    /// Statistics in the same shape as the streaming machine's.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        let steady = match (self.first_fire, self.last_fire) {
            (Some(f), Some(l)) if self.outputs >= 2 => (l - f) as f64 / (self.outputs - 1) as f64,
            _ => f64::NAN,
        };
        let ideal = self
            .iteration_index
            .last()
            .map_or(0, |i| self.input_index.rank_lt(&(i + self.offsets[0])) + 2);
        RunStats {
            cycles: self.cycle,
            outputs: self.outputs,
            fill_latency: self.first_fire.map_or(0, |c| c + 1),
            steady_ii: steady,
            ideal_cycles: ideal,
            chains: vec![ChainStats {
                array: self.array.clone(),
                inputs_streamed: self.streamed,
                fifo_capacity: self.bank_lengths.clone(),
                fifo_max_occupancy: self.bank_lengths.clone(), // delay lines run full
                filter_stalls: vec![0; self.offsets.len()],
                forwarded: vec![self.outputs; self.offsets.len()],
                discarded: Vec::new(),
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use stencil_core::{
        DelayBank, MappingPolicy, MemorySystemPlan, ModuloSchedulePlan, ReuseAnalysis, StencilSpec,
        StorageKind,
    };
    use stencil_polyhedral::Point;

    fn cross() -> Vec<Point> {
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ]
    }

    fn denoise_spec() -> StencilSpec {
        StencilSpec::new("denoise", Polyhedron::rect(&[(1, 10), (1, 14)]), cross()).unwrap()
    }

    #[test]
    fn matches_streaming_machine_on_rectangular_grid() {
        let spec = denoise_spec();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let mplan =
            ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default()).unwrap();
        let mut modulo =
            ModuloMachine::new(&mplan, spec.iteration_domain(), analysis.input_domain()).unwrap();
        let mstats = modulo.run(1_000_000).unwrap();

        let splan = MemorySystemPlan::generate(&spec).unwrap();
        let sstats = Machine::new(&splan).unwrap().run(1_000_000).unwrap();

        assert_eq!(mstats.outputs, sstats.outputs);
        assert_eq!(mstats.cycles, sstats.cycles);
        assert!(mstats.fully_pipelined());
        assert_eq!(
            mstats.chains[0].fifo_capacity,
            sstats.chains[0].fifo_capacity
        );
    }

    #[test]
    fn wrong_delays_are_caught() {
        let spec = denoise_spec();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        // Hand-build a schedule with a wrong bank length.
        let plan = ModuloSchedulePlan::from_parts(
            "broken",
            32,
            vec![
                DelayBank {
                    length: 10,
                    storage: StorageKind::BlockRam,
                },
                DelayBank {
                    length: 1,
                    storage: StorageKind::Register,
                },
                DelayBank {
                    length: 1,
                    storage: StorageKind::Register,
                },
                DelayBank {
                    length: 15,
                    storage: StorageKind::BlockRam,
                },
            ],
            analysis.sorted_refs().offsets().to_vec(),
        );
        let mut m =
            ModuloMachine::new(&plan, spec.iteration_domain(), analysis.input_domain()).unwrap();
        let err = m.run(1_000_000).unwrap_err();
        assert!(matches!(err, SimError::DataMismatch { .. }), "{err}");
    }

    #[test]
    fn static_schedule_misaligns_on_skewed_grid() {
        // Build the skewed-domain analysis, force a static schedule
        // through from_parts (the planner would reject it), and watch
        // the controller detect the misalignment — the experimental
        // justification for the streaming design (§3.4.2).
        use stencil_polyhedral::Constraint;
        let iter = Polyhedron::new(
            2,
            vec![
                Constraint::lower_bound(2, 1, 1),
                Constraint::upper_bound(2, 1, 9),
                Constraint::new(&[1, -1], -1),
                Constraint::new(&[-1, 1], 12),
            ],
        );
        let spec = StencilSpec::new("skew", iter, cross()).unwrap();
        let analysis = ReuseAnalysis::of(&spec).unwrap();
        let banks: Vec<DelayBank> = analysis
            .adjacent_distances()
            .iter()
            .map(|&length| DelayBank {
                length,
                storage: StorageKind::BlockRam,
            })
            .collect();
        let plan = ModuloSchedulePlan::from_parts(
            "skew-forced",
            32,
            banks,
            analysis.sorted_refs().offsets().to_vec(),
        );
        let mut m =
            ModuloMachine::new(&plan, spec.iteration_domain(), analysis.input_domain()).unwrap();
        let result = m.run(1_000_000);
        assert!(
            matches!(result, Err(SimError::DataMismatch { .. })),
            "skewed grid must break the static schedule: {result:?}"
        );
    }
}
