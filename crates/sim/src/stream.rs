//! Off-chip input streams and the burst prefetcher model.

use stencil_polyhedral::{Cursor, DomainIndex, Point};

use crate::elem::Elem;

/// An off-chip data stream: produces every element of the input data
/// domain `D_A` exactly once, in lexicographic order, at most one per
/// cycle.
///
/// The lexicographic order "fits well with burst accesses to external
/// memory" (§3.3.1 / Appendix 9.3 of the paper): the stream is what a
/// simple bus-burst prefetcher delivers.
#[derive(Debug, Clone)]
pub struct OffchipStream {
    cursor: Cursor,
    produced: u64,
    /// Cycles of bus latency before the first element is available
    /// (models the prefetcher's initial burst setup, Fig. 13b).
    initial_latency: u64,
}

impl OffchipStream {
    /// Creates a stream over the given input-domain index with zero
    /// initial latency.
    #[must_use]
    pub fn new(input: &DomainIndex) -> Self {
        Self {
            cursor: input.cursor(),
            produced: 0,
            initial_latency: 0,
        }
    }

    /// Adds an initial bus latency of `cycles` before the first element.
    #[must_use]
    pub fn with_initial_latency(mut self, cycles: u64) -> Self {
        self.initial_latency = cycles;
        self
    }

    /// The element currently offered, if any (`cycle` is the current
    /// clock cycle, used only to honor the initial latency).
    #[must_use]
    pub fn peek(&self, input: &DomainIndex, cycle: u64) -> Option<Elem> {
        if cycle < self.initial_latency {
            return None;
        }
        if self.cursor.is_done(input) {
            None
        } else {
            Some(Elem::new(self.cursor.rank(input)))
        }
    }

    /// The grid point of the element currently offered.
    #[must_use]
    pub fn peek_point(&self, input: &DomainIndex) -> Option<Point> {
        self.cursor.point(input)
    }

    /// Consumes the offered element.
    pub fn advance(&mut self, input: &DomainIndex) {
        debug_assert!(!self.cursor.is_done(input), "advance past end of stream");
        self.cursor.advance(input);
        self.produced += 1;
    }

    /// Elements produced so far.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// True once the whole input domain has been streamed.
    #[must_use]
    pub fn is_done(&self, input: &DomainIndex) -> bool {
        self.cursor.is_done(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_polyhedral::Polyhedron;

    #[test]
    fn streams_whole_domain_in_order() {
        let idx = Polyhedron::grid(&[2, 3]).index().unwrap();
        let mut s = OffchipStream::new(&idx);
        let mut ids = Vec::new();
        while let Some(e) = s.peek(&idx, 100) {
            ids.push(e.id());
            s.advance(&idx);
        }
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert!(s.is_done(&idx));
        assert_eq!(s.produced(), 6);
    }

    #[test]
    fn initial_latency_delays_first_element() {
        let idx = Polyhedron::grid(&[2, 2]).index().unwrap();
        let s = OffchipStream::new(&idx).with_initial_latency(5);
        assert_eq!(s.peek(&idx, 0), None);
        assert_eq!(s.peek(&idx, 4), None);
        assert_eq!(s.peek(&idx, 5), Some(Elem::new(0)));
    }

    #[test]
    fn peek_point_tracks_cursor() {
        let idx = Polyhedron::grid(&[2, 2]).index().unwrap();
        let mut s = OffchipStream::new(&idx);
        assert_eq!(s.peek_point(&idx), Some(Point::new(&[0, 0])));
        s.advance(&idx);
        assert_eq!(s.peek_point(&idx), Some(Point::new(&[0, 1])));
    }
}
