//! Simulation error types.

use std::error::Error;
use std::fmt;

use stencil_core::PlanError;
use stencil_polyhedral::PolyError;

/// Errors raised by the cycle-accurate simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Building domain indices for the machine failed.
    Poly(PolyError),
    /// The plan itself was invalid.
    Plan(PlanError),
    /// A kernel port received a different element than the reference
    /// semantics demand — a functional-correctness violation.
    DataMismatch {
        /// Clock cycle of the violation.
        cycle: u64,
        /// Memory system (chain) index.
        chain: usize,
        /// Kernel port (filter) index within the chain.
        port: usize,
        /// Expected element id (lexicographic rank in `D_A`).
        expected: u64,
        /// Element id actually delivered.
        got: u64,
    },
    /// No module made progress although the computation is incomplete.
    Deadlock {
        /// Clock cycle at which progress stopped.
        cycle: u64,
        /// Outputs produced before the deadlock.
        outputs: u64,
    },
    /// The cycle limit was reached before the computation finished.
    CycleLimit {
        /// The configured limit.
        limit: u64,
        /// Outputs produced within the limit.
        outputs: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Poly(e) => write!(f, "domain indexing failed: {e}"),
            SimError::Plan(e) => write!(f, "invalid plan: {e}"),
            SimError::DataMismatch {
                cycle,
                chain,
                port,
                expected,
                got,
            } => write!(
                f,
                "cycle {cycle}: chain {chain} port {port} expected element {expected}, got {got}"
            ),
            SimError::Deadlock { cycle, outputs } => {
                write!(f, "deadlock at cycle {cycle} after {outputs} outputs")
            }
            SimError::CycleLimit { limit, outputs } => {
                write!(f, "cycle limit {limit} reached after {outputs} outputs")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Poly(e) => Some(e),
            SimError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolyError> for SimError {
    fn from(e: PolyError) -> Self {
        SimError::Poly(e)
    }
}

impl From<PlanError> for SimError {
    fn from(e: PlanError) -> Self {
        SimError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimError::DataMismatch {
            cycle: 7,
            chain: 0,
            port: 2,
            expected: 10,
            got: 11,
        };
        assert!(e.to_string().contains("cycle 7"));
        assert!(e.to_string().contains("expected element 10"));
        assert_eq!(
            SimError::Deadlock {
                cycle: 3,
                outputs: 0
            }
            .to_string(),
            "deadlock at cycle 3 after 0 outputs"
        );
        assert!(SimError::CycleLimit {
            limit: 100,
            outputs: 5
        }
        .to_string()
        .contains("limit 100"));
        assert!(SimError::from(PolyError::EmptyDomain).source().is_some());
    }
}
