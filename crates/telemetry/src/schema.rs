//! The metrics wire schema.
//!
//! One [`MetricsReport`] describes one run: the cycle-accurate
//! machine's counters ([`MachineMetrics`]), the software engine's
//! counters ([`EngineMetrics`]), or both (when a command runs the two
//! back to back). Planned quantities (Eq. (2) FIFO capacities, the
//! §2.3 minimum-buffer bound, the bandwidth-limited cycle bound) are
//! recorded *next to* their observed counterparts, so a report is
//! self-contained: [`crate::validate`] needs no plan object to check
//! the paper's claims.

use serde::json::{field, object, FromValue, JsonError, ToValue, Value};

use crate::metric::Histogram;

/// Version tag written into every report; bump on breaking schema
/// changes so downstream tooling can dispatch.
pub const SCHEMA_VERSION: u32 = 1;

/// Observed behaviour of one reuse FIFO, next to its planned capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct FifoMetrics {
    /// Planned depth in elements: the Eq. (2) maximum reuse distance
    /// `r̄(A_k → A_{k+1})`, *before* the hardware's promotion of
    /// zero-capacity FIFOs to a single register stage (the validator
    /// applies the promotion when checking occupancy).
    pub capacity: u64,
    /// Highest occupancy ever observed.
    pub high_water: u64,
    /// Elements ever pushed.
    pub pushes: u64,
    /// Elements ever popped.
    pub pops: u64,
    /// Per-cycle occupancy distribution, when sampling was enabled
    /// (disabled histograms serialize with empty bounds/counts).
    pub occupancy: Histogram,
}

impl ToValue for FifoMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("capacity", self.capacity.to_value()),
            ("high_water", self.high_water.to_value()),
            ("pushes", self.pushes.to_value()),
            ("pops", self.pops.to_value()),
            ("occupancy", self.occupancy.to_value()),
        ])
    }
}

impl FromValue for FifoMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            capacity: field(v, "capacity")?,
            high_water: field(v, "high_water")?,
            pushes: field(v, "pushes")?,
            pops: field(v, "pops")?,
            occupancy: field(v, "occupancy")?,
        })
    }
}

/// Observed behaviour of one data filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterMetrics {
    /// Elements forwarded to the kernel port.
    pub forwarded: u64,
    /// Elements discarded (not part of this reference's data domain).
    pub discarded: u64,
    /// Total stalled cycles, including the reuse-buffer fill phase.
    pub stalls: u64,
    /// Stalled cycles after the first kernel firing — the steady-state
    /// share. Zero here, across all filters, is the paper's II = 1
    /// condition.
    pub steady_stalls: u64,
}

impl ToValue for FilterMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("forwarded", self.forwarded.to_value()),
            ("discarded", self.discarded.to_value()),
            ("stalls", self.stalls.to_value()),
            ("steady_stalls", self.steady_stalls.to_value()),
        ])
    }
}

impl FromValue for FilterMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            forwarded: field(v, "forwarded")?,
            discarded: field(v, "discarded")?,
            stalls: field(v, "stalls")?,
            steady_stalls: field(v, "steady_stalls")?,
        })
    }
}

/// One memory-system chain (one data array) of a machine run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainMetrics {
    /// The served array's name.
    pub array: String,
    /// Elements streamed from off-chip across all streams of the chain.
    pub inputs_streamed: u64,
    /// Size of the input domain `D_A` (planned stream length per
    /// off-chip stream head).
    pub input_elements: u64,
    /// Reuse FIFOs in chain order.
    pub fifos: Vec<FifoMetrics>,
    /// Data filters in chain order.
    pub filters: Vec<FilterMetrics>,
}

impl ToValue for ChainMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("array", self.array.to_value()),
            ("inputs_streamed", self.inputs_streamed.to_value()),
            ("input_elements", self.input_elements.to_value()),
            ("fifos", self.fifos.to_value()),
            ("filters", self.filters.to_value()),
        ])
    }
}

impl FromValue for ChainMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            array: field(v, "array")?,
            inputs_streamed: field(v, "inputs_streamed")?,
            input_elements: field(v, "input_elements")?,
            fifos: field(v, "fifos")?,
            filters: field(v, "filters")?,
        })
    }
}

/// Counters of one cycle-accurate machine run, with the plan's bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineMetrics {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Kernel outputs produced.
    pub outputs: u64,
    /// Planned iteration count (size of `D`); a complete run has
    /// `outputs == iterations`.
    pub iterations: u64,
    /// Cycle of the first output (§3.4.1 automatic fill latency).
    pub fill_latency: u64,
    /// Measured cycles per output between first and last firing.
    pub steady_ii: f64,
    /// The input-bandwidth-limited lower bound on total cycles;
    /// `cycles <= ideal_cycles` is the paper's full-pipelining target.
    pub ideal_cycles: u64,
    /// Off-chip streams consumed per cycle (1, or more under the
    /// Appendix 9.4 tradeoff).
    pub offchip_streams: usize,
    /// Sum of allocated FIFO capacities in this configuration.
    pub planned_total_buffer: u64,
    /// The §2.3 minimum total buffer size `r̄(A_0 → A_{n-1})` of the
    /// single-stream design.
    pub min_total_buffer: u64,
    /// Whether Property 3 (linearity of max reuse distances) held, in
    /// which case the single-stream `planned_total_buffer` equals
    /// `min_total_buffer` exactly.
    pub linearity_holds: bool,
    /// Per-chain detail.
    pub chains: Vec<ChainMetrics>,
}

impl MachineMetrics {
    /// Sum of observed FIFO high-water marks across every chain — the
    /// steady-state buffering the run actually used.
    #[must_use]
    pub fn observed_total_buffer(&self) -> u64 {
        self.chains
            .iter()
            .flat_map(|c| c.fifos.iter())
            .map(|f| f.high_water)
            .sum()
    }

    /// Total steady-state stalled cycles across every filter.
    #[must_use]
    pub fn steady_stalls(&self) -> u64 {
        self.chains
            .iter()
            .flat_map(|c| c.filters.iter())
            .map(|f| f.steady_stalls)
            .sum()
    }
}

impl ToValue for MachineMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("cycles", self.cycles.to_value()),
            ("outputs", self.outputs.to_value()),
            ("iterations", self.iterations.to_value()),
            ("fill_latency", self.fill_latency.to_value()),
            ("steady_ii", self.steady_ii.to_value()),
            ("ideal_cycles", self.ideal_cycles.to_value()),
            ("offchip_streams", self.offchip_streams.to_value()),
            ("planned_total_buffer", self.planned_total_buffer.to_value()),
            ("min_total_buffer", self.min_total_buffer.to_value()),
            ("linearity_holds", self.linearity_holds.to_value()),
            ("chains", self.chains.to_value()),
        ])
    }
}

impl FromValue for MachineMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            cycles: field(v, "cycles")?,
            outputs: field(v, "outputs")?,
            iterations: field(v, "iterations")?,
            fill_latency: field(v, "fill_latency")?,
            steady_ii: field(v, "steady_ii")?,
            ideal_cycles: field(v, "ideal_cycles")?,
            offchip_streams: field(v, "offchip_streams")?,
            planned_total_buffer: field(v, "planned_total_buffer")?,
            min_total_buffer: field(v, "min_total_buffer")?,
            linearity_holds: field(v, "linearity_holds")?,
            chains: field(v, "chains")?,
        })
    }
}

/// Per-band counters of one software-engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileMetrics {
    /// Band id, outermost-dimension order.
    pub id: usize,
    /// Outputs the band produced.
    pub outputs: u64,
    /// Input elements in the band's halo.
    pub halo_elements: u64,
    /// Rows evaluated by the vectorized bytecode row sweep.
    pub sweep_rows: u64,
    /// Rows executed on the batched fast path.
    pub fast_rows: u64,
    /// Rows that fell back to per-point gathers.
    pub gather_rows: u64,
    /// Wall-clock nanoseconds the band's worker spent.
    pub elapsed_ns: u64,
}

impl ToValue for TileMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("id", self.id.to_value()),
            ("outputs", self.outputs.to_value()),
            ("halo_elements", self.halo_elements.to_value()),
            ("sweep_rows", self.sweep_rows.to_value()),
            ("fast_rows", self.fast_rows.to_value()),
            ("gather_rows", self.gather_rows.to_value()),
            ("elapsed_ns", self.elapsed_ns.to_value()),
        ])
    }
}

impl FromValue for TileMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            id: field(v, "id")?,
            outputs: field(v, "outputs")?,
            halo_elements: field(v, "halo_elements")?,
            // Reports written before the compiled row sweep existed
            // have no `sweep_rows` key; those runs swept zero rows.
            sweep_rows: match v.get("sweep_rows") {
                None => 0,
                Some(s) => FromValue::from_value(s)?,
            },
            fast_rows: field(v, "fast_rows")?,
            gather_rows: field(v, "gather_rows")?,
            elapsed_ns: field(v, "elapsed_ns")?,
        })
    }
}

/// Counters of one software-engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// Total outputs produced.
    pub outputs: u64,
    /// Bands executed.
    pub tiles: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Kernel backend that executed the datapath (`"compiled"` for the
    /// bytecode row sweep, `"closure"` otherwise).
    pub backend: String,
    /// Output rows per grouped sweep dispatch (1 = the classic
    /// single-output sweep; above 1 only for the compiled backend).
    pub unroll: u64,
    /// Arithmetic precision the kernel evaluated in (`"f64"` or
    /// `"f32"`).
    pub datapath: String,
    /// Input elements fetched across bands, halo overlap counted per
    /// band.
    pub halo_elements: u64,
    /// End-to-end wall-clock nanoseconds.
    pub elapsed_ns: u64,
    /// Outputs per second (0.0 when the elapsed time is below timer
    /// resolution — never non-finite).
    pub throughput: f64,
    /// Per-band detail, band order.
    pub per_tile: Vec<TileMetrics>,
}

impl ToValue for EngineMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("outputs", self.outputs.to_value()),
            ("tiles", self.tiles.to_value()),
            ("threads", self.threads.to_value()),
            ("backend", self.backend.to_value()),
            ("unroll", self.unroll.to_value()),
            ("datapath", self.datapath.to_value()),
            ("halo_elements", self.halo_elements.to_value()),
            ("elapsed_ns", self.elapsed_ns.to_value()),
            ("throughput", self.throughput.to_value()),
            ("per_tile", self.per_tile.to_value()),
        ])
    }
}

impl FromValue for EngineMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            outputs: field(v, "outputs")?,
            tiles: field(v, "tiles")?,
            threads: field(v, "threads")?,
            // Pre-compilation reports carry no `backend` key; every run
            // back then executed the closure datapath.
            backend: match v.get("backend") {
                None => "closure".to_string(),
                Some(s) => FromValue::from_value(s)?,
            },
            // Absent before the unrolled sweep / f32 datapath existed:
            // those runs swept one output per dispatch in f64.
            unroll: match v.get("unroll") {
                None => 1,
                Some(s) => FromValue::from_value(s)?,
            },
            datapath: match v.get("datapath") {
                None => "f64".to_string(),
                Some(s) => FromValue::from_value(s)?,
            },
            halo_elements: field(v, "halo_elements")?,
            elapsed_ns: field(v, "elapsed_ns")?,
            throughput: field(v, "throughput")?,
            per_tile: field(v, "per_tile")?,
        })
    }
}

/// Counters of one streaming (out-of-core) engine run.
///
/// The defining figure is the pair `peak_resident` / `resident_bound`:
/// the streaming executor promises to keep at most one band's halo
/// window of input values resident (Sec. 2.3 — a stencil needs only its
/// maximum reuse distance of history), and the validator checks the
/// observed high-water mark against that planned bound
/// ([`crate::validate::BoundCheck::ResidencyBound`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMetrics {
    /// Total outputs produced.
    pub outputs: u64,
    /// Bands executed.
    pub bands: usize,
    /// Worker threads used per band.
    pub threads: usize,
    /// Kernel backend that executed the datapath (`"compiled"` for the
    /// bytecode row sweep, `"closure"` otherwise).
    pub backend: String,
    /// Output rows per grouped sweep dispatch (1 = the classic
    /// single-output sweep; above 1 only for the compiled backend).
    pub unroll: u64,
    /// Arithmetic precision the kernel evaluated in (`"f64"` or
    /// `"f32"`).
    pub datapath: String,
    /// Requested band height in outermost-dimension rows (0 = the
    /// plan's default one-band-per-off-chip-stream sharding).
    pub chunk_rows: u64,
    /// Input index rows pulled from the row source.
    pub rows_in: u64,
    /// Input values pulled from the row source.
    pub values_in: u64,
    /// Output rows pushed to the row sink.
    pub rows_out: u64,
    /// High-water mark of resident input values (the gauge's maximum).
    pub peak_resident: u64,
    /// Planned residency bound: max over bands of halo rows x widest
    /// resident row length.
    pub resident_bound: u64,
    /// Output rows evaluated by the vectorized bytecode row sweep.
    pub sweep_rows: u64,
    /// Output rows executed on the batched fast path.
    pub fast_rows: u64,
    /// Output rows that fell back to per-point gathers.
    pub gather_rows: u64,
    /// End-to-end wall-clock nanoseconds.
    pub elapsed_ns: u64,
    /// Outputs per second (0.0 when below timer resolution).
    pub throughput: f64,
}

impl ToValue for StreamMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("outputs", self.outputs.to_value()),
            ("bands", self.bands.to_value()),
            ("threads", self.threads.to_value()),
            ("backend", self.backend.to_value()),
            ("unroll", self.unroll.to_value()),
            ("datapath", self.datapath.to_value()),
            ("chunk_rows", self.chunk_rows.to_value()),
            ("rows_in", self.rows_in.to_value()),
            ("values_in", self.values_in.to_value()),
            ("rows_out", self.rows_out.to_value()),
            ("peak_resident", self.peak_resident.to_value()),
            ("resident_bound", self.resident_bound.to_value()),
            ("sweep_rows", self.sweep_rows.to_value()),
            ("fast_rows", self.fast_rows.to_value()),
            ("gather_rows", self.gather_rows.to_value()),
            ("elapsed_ns", self.elapsed_ns.to_value()),
            ("throughput", self.throughput.to_value()),
        ])
    }
}

impl FromValue for StreamMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            outputs: field(v, "outputs")?,
            bands: field(v, "bands")?,
            threads: field(v, "threads")?,
            // Absent in pre-compilation reports: closure datapath.
            backend: match v.get("backend") {
                None => "closure".to_string(),
                Some(s) => FromValue::from_value(s)?,
            },
            // Absent before the unrolled sweep / f32 datapath existed.
            unroll: match v.get("unroll") {
                None => 1,
                Some(s) => FromValue::from_value(s)?,
            },
            datapath: match v.get("datapath") {
                None => "f64".to_string(),
                Some(s) => FromValue::from_value(s)?,
            },
            chunk_rows: field(v, "chunk_rows")?,
            rows_in: field(v, "rows_in")?,
            values_in: field(v, "values_in")?,
            rows_out: field(v, "rows_out")?,
            peak_resident: field(v, "peak_resident")?,
            resident_bound: field(v, "resident_bound")?,
            // Absent in pre-compilation reports: zero swept rows.
            sweep_rows: match v.get("sweep_rows") {
                None => 0,
                Some(s) => FromValue::from_value(s)?,
            },
            fast_rows: field(v, "fast_rows")?,
            gather_rows: field(v, "gather_rows")?,
            elapsed_ns: field(v, "elapsed_ns")?,
            throughput: field(v, "throughput")?,
        })
    }
}

/// Counters of one pipeline stage of a session run.
///
/// Exactly one of `engine` / `stream` is populated, matching the
/// session's execution mode (in-core and tiled stages carry an
/// [`EngineMetrics`], streaming stages a [`StreamMetrics`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// The stage's kernel label (benchmark or stage name).
    pub label: String,
    /// The backend this stage resolved to ("compiled" / "closure") —
    /// per stage, because a heterogeneous chain mixes them.
    pub backend: String,
    /// Number of taps in this stage's window (0 in pre-heterogeneous
    /// reports, which did not record per-stage windows).
    pub window_taps: u64,
    /// The window's outermost-dimension span in rows — this stage's
    /// halo reach (0 in pre-heterogeneous reports).
    pub window_rows: u64,
    /// This stage's own planned residency ceiling (0 when unknown):
    /// its halo-window bound under streaming, its whole input grid in
    /// core. The per-stage figure the tightened `ChainResidency` rule
    /// checks `peak_resident` against.
    pub resident_bound: u64,
    /// In-core counters, when the stage executed in core.
    pub engine: Option<EngineMetrics>,
    /// Streaming counters, when the stage executed out of core.
    pub stream: Option<StreamMetrics>,
}

impl ToValue for StageMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("label", self.label.to_value()),
            ("backend", self.backend.to_value()),
            ("window_taps", self.window_taps.to_value()),
            ("window_rows", self.window_rows.to_value()),
            ("resident_bound", self.resident_bound.to_value()),
            (
                "engine",
                self.engine
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
            (
                "stream",
                self.stream
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
        ])
    }
}

impl FromValue for StageMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        let engine: Option<EngineMetrics> = field(v, "engine")?;
        let stream: Option<StreamMetrics> = field(v, "stream")?;
        Ok(Self {
            label: field(v, "label")?,
            // Absent in pre-heterogeneous reports: every stage ran the
            // backend its sub-report recorded.
            backend: match v.get("backend") {
                None => engine
                    .as_ref()
                    .map(|e| e.backend.clone())
                    .or_else(|| stream.as_ref().map(|s| s.backend.clone()))
                    .unwrap_or_else(|| "closure".to_string()),
                Some(s) => FromValue::from_value(s)?,
            },
            // Absent in pre-heterogeneous reports: window unrecorded.
            window_taps: match v.get("window_taps") {
                None => 0,
                Some(s) => FromValue::from_value(s)?,
            },
            window_rows: match v.get("window_rows") {
                None => 0,
                Some(s) => FromValue::from_value(s)?,
            },
            // Absent in pre-heterogeneous reports: fall back to the
            // stream sub-report's own bound, else unknown (0).
            resident_bound: match v.get("resident_bound") {
                None => stream.as_ref().map_or(0, |s| s.resident_bound),
                Some(s) => FromValue::from_value(s)?,
            },
            engine,
            stream,
        })
    }
}

/// Counters of one iterative time-stepping run — a session that applied
/// the *same* kernel for `steps` time steps (`Session::iterate`), or
/// stepped until an epsilon-based convergence criterion fired
/// (`Session::iterate_until`).
///
/// The defining figures are `observed_peak` against `planned_peak`
/// (residency stayed within the planned T×halo budget — no intermediate
/// grid was materialized) and `steps`/`converged` (how many steps
/// actually ran, and whether the per-step max-abs-delta reduction fell
/// to `epsilon` before `max_steps`). Checked by
/// [`crate::validate::BoundCheck::IterateResidency`].
#[derive(Debug, Clone, PartialEq)]
pub struct IterateMetrics {
    /// Time steps actually executed.
    pub steps: u64,
    /// Step budget the run was allowed (equals `steps` for fixed-count
    /// `iterate(T)` runs).
    pub max_steps: u64,
    /// Whether the convergence criterion fired before `max_steps`.
    pub converged: bool,
    /// The convergence threshold on the per-step max-abs delta (0.0 for
    /// fixed-count runs, which never test convergence).
    pub epsilon: f64,
    /// The last step's max-abs delta (0.0 for fixed-count runs).
    pub final_delta: f64,
    /// Per-step peak resident values, step order.
    pub step_peaks: Vec<u64>,
    /// The planned residency budget for the whole run.
    pub planned_peak: u64,
    /// The observed peak residency for the whole run.
    pub observed_peak: u64,
}

impl ToValue for IterateMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("steps", self.steps.to_value()),
            ("max_steps", self.max_steps.to_value()),
            ("converged", self.converged.to_value()),
            ("epsilon", self.epsilon.to_value()),
            ("final_delta", self.final_delta.to_value()),
            ("step_peaks", self.step_peaks.to_value()),
            ("planned_peak", self.planned_peak.to_value()),
            ("observed_peak", self.observed_peak.to_value()),
        ])
    }
}

impl FromValue for IterateMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            steps: field(v, "steps")?,
            max_steps: field(v, "max_steps")?,
            converged: field(v, "converged")?,
            epsilon: field(v, "epsilon")?,
            final_delta: field(v, "final_delta")?,
            step_peaks: field(v, "step_peaks")?,
            planned_peak: field(v, "planned_peak")?,
            observed_peak: field(v, "observed_peak")?,
        })
    }
}

/// Grid I/O accounting for a session driven through streaming
/// endpoints: how input values reached the engine (slices of a mapped
/// `.sgrid` payload vs copies pulled through a row source) and whether
/// the sink was finalized (flushed/synced).
///
/// The defining claim of the mmap fast path is `values_copied == 0`
/// with `values_mapped` covering the input. Consistency is checked by
/// [`crate::validate::BoundCheck::GridIoConsistent`]: a run that mapped
/// zero bytes cannot claim mapped values, mapped values cannot exceed
/// the mapped bytes, and the sink must have been finalized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridIoMetrics {
    /// Bytes of input file mapped into memory (header + payload); zero
    /// for non-mapped sources.
    pub bytes_mapped: u64,
    /// Input values consumed as slices of the mapped payload — never
    /// copied into engine buffers.
    pub values_mapped: u64,
    /// Input values copied out of the source into engine-owned buffers.
    pub values_copied: u64,
    /// Output values pushed to the sink.
    pub output_values: u64,
    /// Whether the sink's end-of-run finalization (flush / msync) ran
    /// to completion.
    pub sink_finalized: bool,
}

impl ToValue for GridIoMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("bytes_mapped", self.bytes_mapped.to_value()),
            ("values_mapped", self.values_mapped.to_value()),
            ("values_copied", self.values_copied.to_value()),
            ("output_values", self.output_values.to_value()),
            ("sink_finalized", self.sink_finalized.to_value()),
        ])
    }
}

impl FromValue for GridIoMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            bytes_mapped: field(v, "bytes_mapped")?,
            values_mapped: field(v, "values_mapped")?,
            values_copied: field(v, "values_copied")?,
            output_values: field(v, "output_values")?,
            sink_finalized: field(v, "sink_finalized")?,
        })
    }
}

/// Counters of one unified session run — a temporally chained pipeline
/// of one or more kernel stages executed through `stencil_engine`'s
/// `Session` layer.
///
/// The defining figure of a chained run is `peak_resident` against
/// `resident_bound`: summed across stages, a streaming chain holds
/// roughly the *sum of the stages' halo windows* resident rather than
/// any full intermediate grid
/// ([`crate::validate::BoundCheck::ChainResidency`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMetrics {
    /// Execution mode (`"incore"`, `"tiled"`, or `"streaming"`).
    pub mode: String,
    /// Worker threads used (max across stages).
    pub threads: usize,
    /// Final-stage outputs produced.
    pub outputs: u64,
    /// Peak resident values summed across all stages.
    pub peak_resident: u64,
    /// Planned residency bound summed across all stages.
    pub resident_bound: u64,
    /// End-to-end wall-clock nanoseconds.
    pub elapsed_ns: u64,
    /// Final-stage outputs per second (0.0 when below resolution).
    pub throughput: f64,
    /// Tile plans constructed *during* execution — cache misses past
    /// the plans hoisted to session construction. A well-prepared
    /// iterate run reports 0 here.
    pub tile_plans_built: u64,
    /// Per-stage detail, pipeline order.
    pub stages: Vec<StageMetrics>,
    /// Iterative time-stepping counters, when the session ran via
    /// `iterate`/`iterate_until`.
    pub iterate: Option<IterateMetrics>,
    /// Grid I/O accounting, when the session ran through streaming
    /// endpoints (absent in older reports and pure in-core runs).
    pub grid_io: Option<GridIoMetrics>,
}

impl ToValue for SessionMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("mode", self.mode.to_value()),
            ("threads", self.threads.to_value()),
            ("outputs", self.outputs.to_value()),
            ("peak_resident", self.peak_resident.to_value()),
            ("resident_bound", self.resident_bound.to_value()),
            ("elapsed_ns", self.elapsed_ns.to_value()),
            ("throughput", self.throughput.to_value()),
            ("tile_plans_built", self.tile_plans_built.to_value()),
            ("stages", self.stages.to_value()),
            (
                "iterate",
                self.iterate
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
            (
                "grid_io",
                self.grid_io
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
        ])
    }
}

impl FromValue for SessionMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            mode: field(v, "mode")?,
            threads: field(v, "threads")?,
            outputs: field(v, "outputs")?,
            peak_resident: field(v, "peak_resident")?,
            resident_bound: field(v, "resident_bound")?,
            elapsed_ns: field(v, "elapsed_ns")?,
            throughput: field(v, "throughput")?,
            // Absent in pre-iterate reports: no tile-plan counter, and
            // no iterative time-stepping section.
            tile_plans_built: match v.get("tile_plans_built") {
                None => 0,
                Some(s) => FromValue::from_value(s)?,
            },
            stages: field(v, "stages")?,
            iterate: match v.get("iterate") {
                None => None,
                Some(s) => FromValue::from_value(s)?,
            },
            // Absent in pre-grid-io reports.
            grid_io: match v.get("grid_io") {
                None => None,
                Some(s) => FromValue::from_value(s)?,
            },
        })
    }
}

/// Counters of one serving-front-end run — a batch of grid jobs
/// admitted against a memory budget, dispatched across a worker pool of
/// sessions, and (for oversized grids) sharded into halo-overlapped row
/// bands and merged.
///
/// The defining figures are `peak_resident` against
/// `admitted_bound_peak` (the executing shards never held more resident
/// than admission accounted for) and `outputs_produced` against
/// `outputs_expected` (shard merge conserved every output element).
/// Checked by [`crate::validate::BoundCheck::ServiceResidency`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Worker pool size.
    pub workers: u64,
    /// Bounded-queue capacity (pending shard tasks).
    pub queue_depth: u64,
    /// Admission-control budget in resident f64 elements (0 = no
    /// budget; admission is then queue-bounded only).
    pub memory_budget: u64,
    /// Jobs offered to the front-end.
    pub jobs_submitted: u64,
    /// Jobs admitted past admission control.
    pub jobs_admitted: u64,
    /// Jobs rejected with a retry-after hint (backpressure).
    pub jobs_rejected: u64,
    /// Admitted jobs that failed with a typed engine error.
    pub jobs_failed: u64,
    /// Shard sessions executed (≥ jobs_admitted; sharded jobs run one
    /// session per row band).
    pub shards_executed: u64,
    /// High-water mark of the summed `planned_residency_bound`s of
    /// admitted, not-yet-completed jobs.
    pub admitted_bound_peak: u64,
    /// High-water mark of the summed bounds of shards concurrently
    /// *executing* — the aggregate the service actually held resident.
    pub peak_resident: u64,
    /// Shards whose observed session peak exceeded their own planned
    /// bound (0 in a correct run).
    pub shards_over_bound: u64,
    /// Output elements the admitted jobs' iteration domains promise.
    pub outputs_expected: u64,
    /// Output elements produced and merged across all shards.
    pub outputs_produced: u64,
    /// Tile plans built during shard execution (plan-cache misses past
    /// the schedules seeded from the shared cache).
    pub tile_plans_built: u64,
    /// Shared plan-cache hits across all shard lookups.
    pub plan_cache_hits: u64,
    /// Shared plan-cache misses (one per distinct plan actually built).
    pub plan_cache_misses: u64,
    /// End-to-end wall-clock nanoseconds for the batch.
    pub elapsed_ns: u64,
    /// Merged output elements per second (0.0 when below timer
    /// resolution; always finite).
    pub throughput: f64,
}

impl ToValue for ServiceMetrics {
    fn to_value(&self) -> Value {
        object(vec![
            ("workers", self.workers.to_value()),
            ("queue_depth", self.queue_depth.to_value()),
            ("memory_budget", self.memory_budget.to_value()),
            ("jobs_submitted", self.jobs_submitted.to_value()),
            ("jobs_admitted", self.jobs_admitted.to_value()),
            ("jobs_rejected", self.jobs_rejected.to_value()),
            ("jobs_failed", self.jobs_failed.to_value()),
            ("shards_executed", self.shards_executed.to_value()),
            ("admitted_bound_peak", self.admitted_bound_peak.to_value()),
            ("peak_resident", self.peak_resident.to_value()),
            ("shards_over_bound", self.shards_over_bound.to_value()),
            ("outputs_expected", self.outputs_expected.to_value()),
            ("outputs_produced", self.outputs_produced.to_value()),
            ("tile_plans_built", self.tile_plans_built.to_value()),
            ("plan_cache_hits", self.plan_cache_hits.to_value()),
            ("plan_cache_misses", self.plan_cache_misses.to_value()),
            ("elapsed_ns", self.elapsed_ns.to_value()),
            ("throughput", self.throughput.to_value()),
        ])
    }
}

impl FromValue for ServiceMetrics {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            workers: field(v, "workers")?,
            queue_depth: field(v, "queue_depth")?,
            memory_budget: field(v, "memory_budget")?,
            jobs_submitted: field(v, "jobs_submitted")?,
            jobs_admitted: field(v, "jobs_admitted")?,
            jobs_rejected: field(v, "jobs_rejected")?,
            jobs_failed: field(v, "jobs_failed")?,
            shards_executed: field(v, "shards_executed")?,
            admitted_bound_peak: field(v, "admitted_bound_peak")?,
            peak_resident: field(v, "peak_resident")?,
            shards_over_bound: field(v, "shards_over_bound")?,
            outputs_expected: field(v, "outputs_expected")?,
            outputs_produced: field(v, "outputs_produced")?,
            tile_plans_built: field(v, "tile_plans_built")?,
            plan_cache_hits: field(v, "plan_cache_hits")?,
            plan_cache_misses: field(v, "plan_cache_misses")?,
            elapsed_ns: field(v, "elapsed_ns")?,
            throughput: field(v, "throughput")?,
        })
    }
}

/// A complete metrics report for one named run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The kernel / benchmark name.
    pub name: String,
    /// Cycle-accurate machine counters, if a machine ran.
    pub machine: Option<MachineMetrics>,
    /// Software-engine counters, if the in-core engine ran.
    pub engine: Option<EngineMetrics>,
    /// Streaming-engine counters, if the out-of-core backend ran.
    pub stream: Option<StreamMetrics>,
    /// Session-pipeline counters, if a (possibly chained) session ran.
    pub session: Option<SessionMetrics>,
    /// Serving-front-end counters, if a job batch ran through the
    /// sharded multi-grid service.
    pub service: Option<ServiceMetrics>,
}

impl MetricsReport {
    /// An empty report for a named run.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            name: name.into(),
            machine: None,
            engine: None,
            stream: None,
            session: None,
            service: None,
        }
    }

    /// Renders the report as indented JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON or schema mismatch.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_value(&Value::parse(text)?)
    }
}

impl ToValue for MetricsReport {
    fn to_value(&self) -> Value {
        object(vec![
            ("schema_version", self.schema_version.to_value()),
            ("name", self.name.to_value()),
            (
                "machine",
                self.machine
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
            (
                "engine",
                self.engine
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
            (
                "stream",
                self.stream
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
            (
                "session",
                self.session
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
            (
                "service",
                self.service
                    .as_ref()
                    .map(ToValue::to_value)
                    .unwrap_or(Value::Null),
            ),
        ])
    }
}

impl FromValue for MetricsReport {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            schema_version: field(v, "schema_version")?,
            name: field(v, "name")?,
            machine: field(v, "machine")?,
            engine: field(v, "engine")?,
            // Reports written before the streaming backend existed have
            // no `stream` key at all; treat absence like `null`.
            stream: match v.get("stream") {
                None => None,
                Some(s) => FromValue::from_value(s)?,
            },
            // Reports written before the session layer existed have no
            // `session` key either.
            session: match v.get("session") {
                None => None,
                Some(s) => FromValue::from_value(s)?,
            },
            // ... and pre-serving reports have no `service` key.
            service: match v.get("service") {
                None => None,
                Some(s) => FromValue::from_value(s)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_machine() -> MachineMetrics {
        MachineMetrics {
            cycles: 140,
            outputs: 80,
            iterations: 80,
            fill_latency: 27,
            steady_ii: 1.2,
            ideal_cycles: 141,
            offchip_streams: 1,
            planned_total_buffer: 24,
            min_total_buffer: 24,
            linearity_holds: true,
            chains: vec![ChainMetrics {
                array: "A".into(),
                inputs_streamed: 120,
                input_elements: 120,
                fifos: vec![
                    FifoMetrics {
                        capacity: 11,
                        high_water: 11,
                        pushes: 108,
                        pops: 97,
                        occupancy: Histogram::disabled(),
                    },
                    FifoMetrics {
                        capacity: 1,
                        high_water: 1,
                        pushes: 100,
                        pops: 99,
                        occupancy: Histogram::new(&[1, 2]),
                    },
                ],
                filters: vec![FilterMetrics {
                    forwarded: 80,
                    discarded: 40,
                    stalls: 9,
                    steady_stalls: 0,
                }],
            }],
        }
    }

    pub(crate) fn sample_service() -> ServiceMetrics {
        ServiceMetrics {
            workers: 4,
            queue_depth: 16,
            memory_budget: 100_000,
            jobs_submitted: 12,
            jobs_admitted: 10,
            jobs_rejected: 2,
            jobs_failed: 0,
            shards_executed: 18,
            admitted_bound_peak: 90_000,
            peak_resident: 64_000,
            shards_over_bound: 0,
            outputs_expected: 48_000,
            outputs_produced: 48_000,
            tile_plans_built: 0,
            plan_cache_hits: 14,
            plan_cache_misses: 4,
            elapsed_ns: 1_200_000,
            throughput: 4.0e7,
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = MetricsReport {
            schema_version: SCHEMA_VERSION,
            name: "denoise".into(),
            machine: Some(sample_machine()),
            engine: Some(EngineMetrics {
                outputs: 80,
                tiles: 2,
                threads: 2,
                backend: "compiled".into(),
                unroll: 1,
                datapath: "f64".into(),
                halo_elements: 132,
                elapsed_ns: 81_532,
                throughput: 981_208.3,
                per_tile: vec![TileMetrics {
                    id: 0,
                    outputs: 40,
                    halo_elements: 66,
                    sweep_rows: 5,
                    fast_rows: 0,
                    gather_rows: 0,
                    elapsed_ns: 40_000,
                }],
            }),
            stream: Some(StreamMetrics {
                outputs: 80,
                bands: 4,
                threads: 2,
                backend: "closure".into(),
                unroll: 1,
                datapath: "f64".into(),
                chunk_rows: 3,
                rows_in: 12,
                values_in: 144,
                rows_out: 10,
                peak_resident: 60,
                resident_bound: 60,
                sweep_rows: 0,
                fast_rows: 10,
                gather_rows: 0,
                elapsed_ns: 91_004,
                throughput: 879_082.5,
            }),
            session: Some(SessionMetrics {
                mode: "streaming".into(),
                threads: 2,
                outputs: 60,
                peak_resident: 138,
                resident_bound: 138,
                elapsed_ns: 120_330,
                throughput: 498_628.9,
                tile_plans_built: 0,
                iterate: Some(IterateMetrics {
                    steps: 2,
                    max_steps: 2,
                    converged: false,
                    epsilon: 0.0,
                    final_delta: 0.0,
                    step_peaks: vec![72, 66],
                    planned_peak: 138,
                    observed_peak: 138,
                }),
                grid_io: None,
                stages: vec![
                    StageMetrics {
                        label: "denoise".into(),
                        backend: "compiled".into(),
                        window_taps: 5,
                        window_rows: 3,
                        resident_bound: 72,
                        engine: None,
                        stream: Some(StreamMetrics {
                            outputs: 80,
                            bands: 4,
                            threads: 2,
                            backend: "compiled".into(),
                            unroll: 1,
                            datapath: "f64".into(),
                            chunk_rows: 1,
                            rows_in: 12,
                            values_in: 144,
                            rows_out: 10,
                            peak_resident: 72,
                            resident_bound: 72,
                            sweep_rows: 10,
                            fast_rows: 0,
                            gather_rows: 0,
                            elapsed_ns: 60_000,
                            throughput: 1.0e6,
                        }),
                    },
                    StageMetrics {
                        label: "denoise+1".into(),
                        backend: "compiled".into(),
                        window_taps: 5,
                        window_rows: 3,
                        resident_bound: 66,
                        engine: None,
                        stream: Some(StreamMetrics {
                            outputs: 60,
                            bands: 4,
                            threads: 2,
                            backend: "compiled".into(),
                            unroll: 1,
                            datapath: "f64".into(),
                            chunk_rows: 1,
                            rows_in: 10,
                            values_in: 80,
                            rows_out: 8,
                            peak_resident: 66,
                            resident_bound: 66,
                            sweep_rows: 8,
                            fast_rows: 0,
                            gather_rows: 0,
                            elapsed_ns: 60_330,
                            throughput: 0.9e6,
                        }),
                    },
                ],
            }),
            service: Some(sample_service()),
        };
        let text = report.to_json();
        let back = MetricsReport::parse(&text).unwrap();
        assert_eq!(back, report);
        // And a partial report (engine only) stays partial.
        let partial = MetricsReport::new("x");
        assert_eq!(MetricsReport::parse(&partial.to_json()).unwrap(), partial);
    }

    #[test]
    fn pre_streaming_reports_still_parse() {
        // A report serialized before the `stream` section existed has no
        // such key; parsing must default it to None, not error.
        let mut old = MetricsReport::new("legacy");
        old.machine = Some(sample_machine());
        let Value::Object(mut fields) = old.to_value() else {
            panic!("reports serialize as objects");
        };
        fields.retain(|(k, _)| k != "stream" && k != "session" && k != "service");
        let text = Value::Object(fields).to_json();
        assert!(!text.contains("\"stream\""), "{text}");
        assert!(!text.contains("\"session\""), "{text}");
        assert!(!text.contains("\"service\""), "{text}");
        let back = MetricsReport::parse(&text).unwrap();
        assert_eq!(back.machine, old.machine);
        assert_eq!(back.stream, None);
        assert_eq!(back.service, None);
        assert_eq!(back.session, None);
    }

    #[test]
    fn pre_compilation_reports_default_backend_and_sweep_fields() {
        // Strip the PR 4 additions from a serialized report; parsing
        // must default them (closure backend, zero swept rows).
        let mut report = MetricsReport::new("legacy");
        report.engine = Some(EngineMetrics {
            outputs: 80,
            tiles: 1,
            threads: 1,
            backend: "compiled".into(),
            unroll: 1,
            datapath: "f64".into(),
            halo_elements: 132,
            elapsed_ns: 81_532,
            throughput: 981_208.3,
            per_tile: vec![TileMetrics {
                id: 0,
                outputs: 80,
                halo_elements: 132,
                sweep_rows: 5,
                fast_rows: 0,
                gather_rows: 0,
                elapsed_ns: 40_000,
            }],
        });
        report.stream = Some(StreamMetrics {
            outputs: 80,
            bands: 4,
            threads: 2,
            backend: "compiled".into(),
            unroll: 1,
            datapath: "f64".into(),
            chunk_rows: 3,
            rows_in: 12,
            values_in: 144,
            rows_out: 10,
            peak_resident: 60,
            resident_bound: 60,
            sweep_rows: 10,
            fast_rows: 0,
            gather_rows: 0,
            elapsed_ns: 91_004,
            throughput: 879_082.5,
        });
        fn strip(v: Value) -> Value {
            match v {
                Value::Object(fields) => Value::Object(
                    fields
                        .into_iter()
                        .filter(|(k, _)| k != "backend" && k != "sweep_rows")
                        .map(|(k, v)| (k, strip(v)))
                        .collect(),
                ),
                Value::Array(items) => Value::Array(items.into_iter().map(strip).collect()),
                other => other,
            }
        }
        let text = strip(report.to_value()).to_json();
        assert!(!text.contains("backend"), "{text}");
        let back = MetricsReport::parse(&text).unwrap();
        let engine = back.engine.unwrap();
        assert_eq!(engine.backend, "closure");
        assert_eq!(engine.per_tile[0].sweep_rows, 0);
        assert_eq!(engine.per_tile[0].fast_rows, 0);
        let stream = back.stream.unwrap();
        assert_eq!(stream.backend, "closure");
        assert_eq!(stream.sweep_rows, 0);
    }

    #[test]
    fn pre_unroll_reports_default_sweep_shape() {
        // Reports written before the unrolled sweep and the f32
        // datapath carry neither `unroll` nor `datapath`; schema v1
        // parsing must default them to the single-output f64 shape.
        let mut report = MetricsReport::new("legacy");
        report.engine = Some(EngineMetrics {
            outputs: 80,
            tiles: 1,
            threads: 1,
            backend: "compiled".into(),
            unroll: 4,
            datapath: "f32".into(),
            halo_elements: 132,
            elapsed_ns: 81_532,
            throughput: 981_208.3,
            per_tile: Vec::new(),
        });
        report.stream = Some(StreamMetrics {
            outputs: 80,
            bands: 4,
            threads: 2,
            backend: "compiled".into(),
            unroll: 2,
            datapath: "f32".into(),
            chunk_rows: 3,
            rows_in: 12,
            values_in: 144,
            rows_out: 10,
            peak_resident: 60,
            resident_bound: 60,
            sweep_rows: 10,
            fast_rows: 0,
            gather_rows: 0,
            elapsed_ns: 91_004,
            throughput: 879_082.5,
        });
        // Round trip first: the populated shape survives as written.
        let back = MetricsReport::parse(&report.to_json()).unwrap();
        assert_eq!(back, report);
        fn strip(v: Value) -> Value {
            match v {
                Value::Object(fields) => Value::Object(
                    fields
                        .into_iter()
                        .filter(|(k, _)| k != "unroll" && k != "datapath")
                        .map(|(k, v)| (k, strip(v)))
                        .collect(),
                ),
                Value::Array(items) => Value::Array(items.into_iter().map(strip).collect()),
                other => other,
            }
        }
        let text = strip(report.to_value()).to_json();
        assert!(!text.contains("unroll"), "{text}");
        assert!(!text.contains("datapath"), "{text}");
        let back = MetricsReport::parse(&text).unwrap();
        let engine = back.engine.unwrap();
        assert_eq!(engine.unroll, 1);
        assert_eq!(engine.datapath, "f64");
        let stream = back.stream.unwrap();
        assert_eq!(stream.unroll, 1);
        assert_eq!(stream.datapath, "f64");
    }

    #[test]
    fn pre_heterogeneous_stage_reports_derive_defaults() {
        // Stage sections written before heterogeneous chains carry no
        // per-stage backend/window/bound; schema v1 parsing must derive
        // the backend from the stage's sub-report, the bound from the
        // stream sub-report, and default the window fields to 0.
        let mut report = MetricsReport::new("legacy-hetero");
        report.session = Some(SessionMetrics {
            mode: "streaming".into(),
            threads: 1,
            outputs: 60,
            peak_resident: 66,
            resident_bound: 66,
            elapsed_ns: 10_000,
            throughput: 6.0e6,
            tile_plans_built: 0,
            iterate: None,
            grid_io: None,
            stages: vec![
                StageMetrics {
                    label: "s0".into(),
                    backend: "compiled".into(),
                    window_taps: 5,
                    window_rows: 3,
                    resident_bound: 66,
                    engine: None,
                    stream: Some(StreamMetrics {
                        outputs: 60,
                        bands: 4,
                        threads: 1,
                        backend: "compiled".into(),
                        unroll: 1,
                        datapath: "f64".into(),
                        chunk_rows: 1,
                        rows_in: 10,
                        values_in: 80,
                        rows_out: 8,
                        peak_resident: 66,
                        resident_bound: 66,
                        sweep_rows: 8,
                        fast_rows: 0,
                        gather_rows: 0,
                        elapsed_ns: 10_000,
                        throughput: 6.0e6,
                    }),
                },
                StageMetrics {
                    label: "s1".into(),
                    backend: "closure".into(),
                    window_taps: 9,
                    window_rows: 3,
                    resident_bound: 120,
                    engine: Some(EngineMetrics {
                        outputs: 60,
                        tiles: 1,
                        threads: 1,
                        backend: "closure".into(),
                        unroll: 1,
                        datapath: "f64".into(),
                        halo_elements: 120,
                        elapsed_ns: 10_000,
                        throughput: 6.0e6,
                        per_tile: Vec::new(),
                    }),
                    stream: None,
                },
            ],
        });
        // Round trip first: the populated shape survives as written.
        let back = MetricsReport::parse(&report.to_json()).unwrap();
        assert_eq!(back, report);
        // Strip the stage-level additions only — the sub-reports keep
        // their own `backend`/`resident_bound` keys (stage objects are
        // the ones carrying a `label`).
        fn strip(v: Value) -> Value {
            match v {
                Value::Object(fields) => {
                    let is_stage = fields.iter().any(|(k, _)| k == "label");
                    Value::Object(
                        fields
                            .into_iter()
                            .filter(|(k, _)| {
                                k != "window_taps"
                                    && k != "window_rows"
                                    && !(is_stage && (k == "backend" || k == "resident_bound"))
                            })
                            .map(|(k, v)| (k, strip(v)))
                            .collect(),
                    )
                }
                Value::Array(items) => Value::Array(items.into_iter().map(strip).collect()),
                other => other,
            }
        }
        let text = strip(report.to_value()).to_json();
        assert!(!text.contains("window_taps"), "{text}");
        let back = MetricsReport::parse(&text).unwrap();
        let stages = back.session.unwrap().stages;
        // Stream stage: backend and bound derive from its sub-report.
        assert_eq!(stages[0].backend, "compiled");
        assert_eq!(stages[0].resident_bound, 66);
        assert_eq!(stages[0].window_taps, 0);
        assert_eq!(stages[0].window_rows, 0);
        // In-core stage: backend derives, the bound stays unknown.
        assert_eq!(stages[1].backend, "closure");
        assert_eq!(stages[1].resident_bound, 0);
    }

    #[test]
    fn pre_iterate_session_reports_still_parse() {
        // Session sections written before iterative time-stepping have
        // neither `iterate` nor `tile_plans_built`; schema v1 parsing
        // must default them rather than error.
        let mut report = MetricsReport::new("legacy-session");
        report.session = Some(SessionMetrics {
            mode: "incore".into(),
            threads: 1,
            outputs: 80,
            peak_resident: 120,
            resident_bound: 120,
            elapsed_ns: 10_000,
            throughput: 8.0e6,
            tile_plans_built: 3,
            stages: Vec::new(),
            iterate: None,
            grid_io: None,
        });
        fn strip(v: Value) -> Value {
            match v {
                Value::Object(fields) => Value::Object(
                    fields
                        .into_iter()
                        .filter(|(k, _)| k != "iterate" && k != "tile_plans_built")
                        .map(|(k, v)| (k, strip(v)))
                        .collect(),
                ),
                Value::Array(items) => Value::Array(items.into_iter().map(strip).collect()),
                other => other,
            }
        }
        let text = strip(report.to_value()).to_json();
        assert!(!text.contains("iterate"), "{text}");
        let back = MetricsReport::parse(&text).unwrap();
        let session = back.session.unwrap();
        assert_eq!(session.iterate, None);
        assert_eq!(session.tile_plans_built, 0);
        assert_eq!(SCHEMA_VERSION, back.schema_version);
    }

    #[test]
    fn aggregates() {
        let m = sample_machine();
        assert_eq!(m.observed_total_buffer(), 12);
        assert_eq!(m.steady_stalls(), 0);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        assert!(MetricsReport::parse("{}").is_err());
        assert!(MetricsReport::parse(r#"{"schema_version":"one"}"#).is_err());
    }
}
