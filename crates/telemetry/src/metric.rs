//! Metric primitives: monotone counters, high-water gauges, and
//! fixed-bucket histograms.
//!
//! All three are plain values — recording is an add, a max, or a
//! binary-search-free bucket walk. Disabled histograms (built with
//! [`Histogram::disabled`]) skip recording after a single branch, so
//! instrumentation left in a hot loop costs nothing measurable when it
//! is off.

use serde::json::{field, object, FromValue, JsonError, ToValue, Value};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self(0)
    }

    /// Counts one event.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Counts `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A high-water-mark gauge: remembers the largest value ever observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HighWater(u64);

impl HighWater {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self(0)
    }

    /// Observes a value, raising the mark if it is a new maximum.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        if value > self.0 {
            self.0 = value;
        }
    }

    /// The highest value observed so far.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by their inclusive upper bounds; an implicit
/// overflow bucket catches everything above the last bound. Bounds are
/// fixed at construction — recording never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bound of each explicit bucket, ascending.
    bounds: Vec<u64>,
    /// One count per explicit bucket, plus the trailing overflow bucket.
    counts: Vec<u64>,
}

impl Histogram {
    /// A histogram with the given ascending inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// `buckets` equal-width buckets covering `0..=max` (plus overflow).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    #[must_use]
    pub fn linear(max: u64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let max = max.max(buckets as u64);
        let bounds: Vec<u64> = (1..=buckets as u64)
            .map(|k| max * k / buckets as u64)
            .collect();
        Self::new(&bounds)
    }

    /// A disabled histogram: [`Histogram::record`] is a no-op after one
    /// branch, and the snapshot serializes as empty.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            bounds: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// True if this histogram records samples.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.counts.is_empty()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
    }

    /// The inclusive upper bounds of the explicit buckets.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// The per-bucket counts (explicit buckets, then overflow).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Samples in the overflow bucket (above the last bound).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }
}

impl ToValue for Histogram {
    fn to_value(&self) -> Value {
        object(vec![
            ("bounds", self.bounds.to_value()),
            ("counts", self.counts.to_value()),
        ])
    }
}

impl FromValue for Histogram {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        let bounds: Vec<u64> = field(value, "bounds")?;
        let counts: Vec<u64> = field(value, "counts")?;
        if !counts.is_empty() && counts.len() != bounds.len() + 1 {
            return Err(JsonError::conversion(
                "histogram counts must have one entry per bound plus overflow",
            ));
        }
        Ok(Self { bounds, counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_highwater() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut hw = HighWater::new();
        hw.observe(3);
        hw.observe(1);
        hw.observe(7);
        assert_eq!(hw.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 4, 9]);
        for v in [0, 1, 2, 4, 5, 9, 10, 100] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn linear_bounds_cover_range() {
        let h = Histogram::linear(100, 4);
        assert_eq!(h.bounds(), &[25, 50, 75, 100]);
        let tiny = Histogram::linear(2, 4);
        assert_eq!(tiny.bounds(), &[1, 2, 3, 4]);
    }

    #[test]
    fn disabled_histogram_is_inert() {
        let mut h = Histogram::disabled();
        assert!(!h.is_enabled());
        h.record(5);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn histogram_json_round_trip() {
        let mut h = Histogram::new(&[2, 8]);
        h.record(1);
        h.record(9);
        let v = h.to_value();
        let text = v.to_json();
        let back = Histogram::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[3, 1]);
    }
}
