//! # stencil-telemetry
//!
//! Observability for the reproduced microarchitecture: lightweight
//! metric primitives ([`Counter`], [`HighWater`], [`Histogram`]), a
//! stable JSON schema for run metrics ([`MetricsReport`]), and a
//! validation layer ([`validate`]) that checks the paper's optimality
//! claims against *live* counters instead of only static plan numbers:
//!
//! * **Eq. (2) sizing is safe and tight** — the occupancy high-water
//!   mark of reuse FIFO `k` never exceeds, and actually reaches, its
//!   allocated maximum reuse distance `r̄(A_k → A_{k+1})`.
//! * **The linearity lower bound (§2.3) is met** — summed steady-state
//!   occupancy equals the minimum total buffer size
//!   `r̄(A_0 → A_{n-1})` for single-stream plans where Property 3
//!   holds.
//! * **Full pipelining (II = 1)** — zero steady-state filter stalls
//!   implies the run finished within the input-bandwidth-limited cycle
//!   bound.
//!
//! Serialization goes through the vendored `serde` JSON data model
//! ([`serde::json::Value`]); every schema type round-trips
//! value → text → value losslessly, and [`validate::validate_report`]
//! rejects reports containing non-finite numbers (which JSON cannot
//! represent).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod metric;
mod schema;
pub mod validate;

pub use metric::{Counter, HighWater, Histogram};
pub use schema::{
    ChainMetrics, EngineMetrics, FifoMetrics, FilterMetrics, GridIoMetrics, IterateMetrics,
    MachineMetrics, MetricsReport, ServiceMetrics, SessionMetrics, StageMetrics, StreamMetrics,
    TileMetrics, SCHEMA_VERSION,
};
pub use validate::{validate_machine, validate_report, BoundCheck, BoundViolation};
