//! Runtime bound validation.
//!
//! The planner proves the paper's optimality claims statically; this
//! module re-proves them against what a run actually did. Each
//! [`BoundCheck`] names one claim, and [`validate_machine`] /
//! [`validate_report`] return every [`BoundViolation`] found (empty
//! means all bounds held).
//!
//! The checks, keyed to the paper:
//!
//! * [`BoundCheck::FifoCapacitySafe`] / [`BoundCheck::FifoCapacityTight`]
//!   — Eq. (2): each reuse FIFO's occupancy high-water mark never
//!   exceeds, and for complete runs exactly reaches, its allocated
//!   capacity `r̄(A_k → A_{k+1})` (zero-capacity FIFOs count as the
//!   single register stage the hardware allocates).
//! * [`BoundCheck::TotalBufferTight`] — the summed high-water marks
//!   equal the summed planned capacities, i.e. no allocated element
//!   went unused.
//! * [`BoundCheck::MinimumBuffer`] — §2.3: for single-stream plans
//!   where Property 3 (linearity) holds, the observed total buffering
//!   equals the minimum possible total `r̄(A_0 → A_{n-1})`.
//! * [`BoundCheck::FullyPipelined`] — §3.4: a run with zero
//!   steady-state filter stalls must meet the input-bandwidth-limited
//!   cycle bound (II = 1), and vice versa.
//! * [`BoundCheck::StreamConservation`] — each off-chip stream head
//!   walks its input domain at most once, and enough of it arrives to
//!   feed every output: `outputs ≤ streamed ≤ streams × |D_A|` per
//!   chain.
//! * [`BoundCheck::OutputsComplete`] — the run produced exactly `|D|`
//!   outputs.
//! * [`BoundCheck::ChainResidency`] — a chained session keeps its
//!   summed peak residency within the summed per-stage halo-window
//!   bound (the Sec. 2.3 reuse window, applied per pipeline stage),
//!   and adjacent streaming stages hand every produced value
//!   downstream.
//! * [`BoundCheck::IterateResidency`] — an iterative time-stepping run
//!   (Sec. 2.3 applied across T self-chained steps) executed within its
//!   step budget, its per-step telemetry is internally consistent, the
//!   observed peak stayed within the planned T×halo budget, and a
//!   converged run's final max-abs delta actually fell to epsilon.
//! * [`BoundCheck::GridIoConsistent`] — a session's grid-I/O block is
//!   internally consistent: mapped values imply mapped bytes and fit
//!   within them, and the output sink was finalized (flushed).
//! * [`BoundCheck::Finite`] — the serialized report contains no NaN or
//!   infinity (JSON cannot represent them).

use serde::json::ToValue;

use crate::schema::{MachineMetrics, MetricsReport};

/// The individual claims the validator checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCheck {
    /// Eq. (2) safety: FIFO high-water mark ≤ allocated capacity.
    FifoCapacitySafe,
    /// Eq. (2) tightness: FIFO high-water mark = allocated capacity.
    FifoCapacityTight,
    /// Σ high-water = Σ planned capacity (no over-allocation).
    TotalBufferTight,
    /// §2.3 minimum total buffer bound met exactly.
    MinimumBuffer,
    /// Zero steady-state stalls ⇔ cycles within the bandwidth bound.
    FullyPipelined,
    /// Per chain, `outputs ≤ streamed ≤ streams × |D_A|`.
    StreamConservation,
    /// Outputs equal the iteration-domain size.
    OutputsComplete,
    /// Streaming engine: peak resident input values stay within the
    /// per-band halo-window bound (Sec. 2.3 reuse window).
    ResidencyBound,
    /// Session pipeline: summed peak residency across chained stages
    /// stays within the summed per-stage halo-window bound, per-stage
    /// streaming residency holds, and adjacent streaming stages hand
    /// every produced value downstream.
    ChainResidency,
    /// Iterative time-stepping: steps stayed within the budget, the
    /// per-step telemetry agrees with the per-stage figures, the
    /// observed peak stayed within the planned T×halo budget, and a
    /// converged run's final delta fell to epsilon.
    IterateResidency,
    /// Grid I/O accounting is internally consistent: a run that mapped
    /// zero bytes claims no mapped values, mapped values fit within the
    /// mapped bytes (8 bytes per f64), and the sink was finalized
    /// (flushed/synced) — unfinalized sinks may have lost tail rows.
    GridIoConsistent,
    /// Serving front-end: the aggregate resident high-water across
    /// concurrently executing shards stays within the sum of admitted
    /// `planned_residency_bound`s (which itself stays within the
    /// configured memory budget), no shard exceeded its own bound, and
    /// shard merge conserved every output element of every admitted
    /// job.
    ServiceResidency,
    /// Sweep-row tallies agree with the reported kernel backend: only
    /// the `"compiled"` backend may report vectorized sweep rows.
    BackendConsistent,
    /// The reported sweep shape is well-formed: the unroll factor is at
    /// least 1, an unroll above 1 only appears with the `"compiled"`
    /// backend (the unrolled register sweep is a compiled-kernel
    /// construct), and the datapath names a known precision (`"f64"`
    /// bit-identical runs, `"f32"` tolerance-verified runs).
    SweepShape,
    /// No NaN/infinity anywhere in the report.
    Finite,
}

impl core::fmt::Display for BoundCheck {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Self::FifoCapacitySafe => "fifo-capacity-safe (Eq. 2)",
            Self::FifoCapacityTight => "fifo-capacity-tight (Eq. 2)",
            Self::TotalBufferTight => "total-buffer-tight",
            Self::MinimumBuffer => "minimum-buffer (Sec. 2.3)",
            Self::FullyPipelined => "fully-pipelined (II = 1)",
            Self::StreamConservation => "stream-conservation",
            Self::OutputsComplete => "outputs-complete",
            Self::ResidencyBound => "residency-bound (Sec. 2.3)",
            Self::ChainResidency => "chain-residency (Sec. 2.3)",
            Self::IterateResidency => "iterate-residency (Sec. 2.3)",
            Self::GridIoConsistent => "grid-io-consistent",
            Self::ServiceResidency => "service-residency",
            Self::BackendConsistent => "backend-consistent",
            Self::SweepShape => "sweep-shape",
            Self::Finite => "finite",
        };
        f.write_str(name)
    }
}

/// One failed bound check, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundViolation {
    /// Which claim failed.
    pub check: BoundCheck,
    /// Where in the report it failed (e.g. `chain "in" fifo 2`).
    pub location: String,
    /// Human-readable expected-vs-observed detail.
    pub detail: String,
}

impl core::fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at {}: {}", self.check, self.location, self.detail)
    }
}

fn violation(
    out: &mut Vec<BoundViolation>,
    check: BoundCheck,
    location: impl Into<String>,
    detail: String,
) {
    out.push(BoundViolation {
        check,
        location: location.into(),
        detail,
    });
}

/// Checks every machine-level bound. An incomplete run (fewer outputs
/// than iterations, e.g. a `--cycles`-capped simulation) skips the
/// tightness checks — a partial run may legitimately not have filled
/// its FIFOs — but still enforces the safety ones.
#[must_use]
pub fn validate_machine(m: &MachineMetrics) -> Vec<BoundViolation> {
    let mut v = Vec::new();
    let complete = m.outputs == m.iterations;

    if !complete {
        violation(
            &mut v,
            BoundCheck::OutputsComplete,
            "machine",
            format!("produced {} of {} outputs", m.outputs, m.iterations),
        );
    }

    let mut observed_total = 0u64;
    let mut planned_total = 0u64;
    for chain in &m.chains {
        for (k, fifo) in chain.fifos.iter().enumerate() {
            let loc = format!("chain {:?} fifo {k}", chain.array);
            // The hardware promotes capacity-0 FIFOs to one register.
            let cap = fifo.capacity.max(1);
            observed_total += fifo.high_water;
            planned_total += cap;
            if fifo.high_water > cap {
                violation(
                    &mut v,
                    BoundCheck::FifoCapacitySafe,
                    &loc,
                    format!("high water {} exceeds capacity {cap}", fifo.high_water),
                );
            } else if complete && fifo.high_water < cap {
                violation(
                    &mut v,
                    BoundCheck::FifoCapacityTight,
                    &loc,
                    format!(
                        "high water {} never reached capacity {cap}",
                        fifo.high_water
                    ),
                );
            }
            if fifo.pops > fifo.pushes {
                violation(
                    &mut v,
                    BoundCheck::StreamConservation,
                    &loc,
                    format!("popped {} of {} pushed", fifo.pops, fifo.pushes),
                );
            }
        }
        if complete {
            // Each off-chip stream head walks the input domain at most
            // once, so streamed <= streams x |D_A|. The head stops as
            // soon as the last output fires, leaving trailing elements
            // no window needs unread — but every output has a distinct
            // maximal input tap, so at least `outputs` elements must
            // have been delivered. Chains with no off-chip feed at all
            // (fully forwarded) stream nothing.
            let hi = chain.input_elements * m.offchip_streams as u64;
            let lo = m.outputs.min(hi);
            let ok = chain.inputs_streamed == 0 && chain.input_elements == 0
                || (lo..=hi).contains(&chain.inputs_streamed);
            if !ok {
                violation(
                    &mut v,
                    BoundCheck::StreamConservation,
                    format!("chain {:?}", chain.array),
                    format!(
                        "streamed {} elements, expected {lo}..={hi} ({} stream(s) x {})",
                        chain.inputs_streamed, m.offchip_streams, chain.input_elements
                    ),
                );
            }
        }
    }

    if complete && observed_total != planned_total {
        violation(
            &mut v,
            BoundCheck::TotalBufferTight,
            "machine",
            format!(
                "summed high water {observed_total} != summed planned capacity {planned_total}"
            ),
        );
    }

    // §2.3: with one stream and Property 3 holding, the plan — and
    // therefore the observed steady occupancy — sits exactly on the
    // minimum-buffer bound. Promoted register stages (capacity 0 → 1)
    // are excluded from the planned total by `min_total_buffer`'s
    // definition, so compare against the unpromoted plan figure.
    if complete && m.linearity_holds && m.offchip_streams == 1 {
        let unpromoted: u64 = m
            .chains
            .iter()
            .flat_map(|c| c.fifos.iter())
            .map(|f| f.capacity)
            .sum();
        if unpromoted != m.min_total_buffer {
            violation(
                &mut v,
                BoundCheck::MinimumBuffer,
                "machine",
                format!(
                    "planned total buffer {unpromoted} != minimum bound {}",
                    m.min_total_buffer
                ),
            );
        }
    }

    // II = 1: zero steady-state stalls and meeting the bandwidth-
    // limited cycle bound must agree.
    if complete {
        let steady = m.steady_stalls();
        let within_bound = m.cycles <= m.ideal_cycles;
        if steady == 0 && !within_bound {
            violation(
                &mut v,
                BoundCheck::FullyPipelined,
                "machine",
                format!(
                    "no steady-state stalls but {} cycles exceed the bandwidth bound {}",
                    m.cycles, m.ideal_cycles
                ),
            );
        }
        if steady > 0 && within_bound {
            violation(
                &mut v,
                BoundCheck::FullyPipelined,
                "machine",
                format!("{steady} steady-state stall cycles yet the run met the bandwidth bound"),
            );
        }
    }

    v
}

/// Checks one sweep-shape claim ([`BoundCheck::SweepShape`]): unroll
/// factors start at 1, unrolled dispatch is a compiled-backend
/// construct, and the datapath names a known precision.
fn check_sweep_shape(
    unroll: u64,
    datapath: &str,
    backend: &str,
    loc: &str,
    v: &mut Vec<BoundViolation>,
) {
    if unroll == 0 {
        violation(
            v,
            BoundCheck::SweepShape,
            loc,
            "unroll factor 0: every dispatch produces at least one output".to_string(),
        );
    }
    if unroll > 1 && backend != "compiled" {
        violation(
            v,
            BoundCheck::SweepShape,
            loc,
            format!("backend {backend:?} reports unroll {unroll}: only the compiled backend runs the unrolled sweep"),
        );
    }
    if datapath != "f64" && datapath != "f32" {
        violation(
            v,
            BoundCheck::SweepShape,
            loc,
            format!("unknown datapath {datapath:?} (expected \"f64\" or \"f32\")"),
        );
    }
}

/// Checks a whole report: machine bounds (when present) plus
/// finiteness of every number in the serialized form.
#[must_use]
pub fn validate_report(report: &MetricsReport) -> Vec<BoundViolation> {
    let mut v = match &report.machine {
        Some(m) => validate_machine(m),
        None => Vec::new(),
    };
    if let Some(path) = report.to_value().find_non_finite() {
        violation(
            &mut v,
            BoundCheck::Finite,
            path,
            "non-finite number in report".to_string(),
        );
    }
    if let Some(e) = &report.engine {
        if !e.throughput.is_finite() {
            violation(
                &mut v,
                BoundCheck::Finite,
                "engine.throughput",
                format!("throughput is {}", e.throughput),
            );
        }
        let tile_outputs: u64 = e.per_tile.iter().map(|t| t.outputs).sum();
        if !e.per_tile.is_empty() && tile_outputs != e.outputs {
            violation(
                &mut v,
                BoundCheck::OutputsComplete,
                "engine",
                format!(
                    "tile outputs sum to {tile_outputs}, run reports {}",
                    e.outputs
                ),
            );
        }
        // Only the compiled backend owns the vectorized row sweep.
        let sweep: u64 = e.per_tile.iter().map(|t| t.sweep_rows).sum();
        if e.backend != "compiled" && sweep > 0 {
            violation(
                &mut v,
                BoundCheck::BackendConsistent,
                "engine",
                format!("backend {:?} reports {sweep} swept rows", e.backend),
            );
        }
        check_sweep_shape(e.unroll, &e.datapath, &e.backend, "engine", &mut v);
    }
    if let Some(s) = &report.stream {
        // The streaming backend's defining promise: only one band's
        // halo window of input values is ever resident (Sec. 2.3).
        if s.peak_resident > s.resident_bound {
            violation(
                &mut v,
                BoundCheck::ResidencyBound,
                "stream",
                format!(
                    "peak resident {} values exceeds the halo-window bound {}",
                    s.peak_resident, s.resident_bound
                ),
            );
        }
        if !s.throughput.is_finite() {
            violation(
                &mut v,
                BoundCheck::Finite,
                "stream.throughput",
                format!("throughput is {}", s.throughput),
            );
        }
        // Every value the source handed over belongs to some pulled
        // row, and all output rows together carry all outputs.
        if s.rows_in > 0 && s.values_in == 0 {
            violation(
                &mut v,
                BoundCheck::StreamConservation,
                "stream",
                format!("{} rows pulled but zero values", s.rows_in),
            );
        }
        if s.outputs > 0 && s.rows_out == 0 {
            violation(
                &mut v,
                BoundCheck::OutputsComplete,
                "stream",
                format!(
                    "{} outputs produced but no rows reached the sink",
                    s.outputs
                ),
            );
        }
        if s.backend != "compiled" && s.sweep_rows > 0 {
            violation(
                &mut v,
                BoundCheck::BackendConsistent,
                "stream",
                format!(
                    "backend {:?} reports {} swept rows",
                    s.backend, s.sweep_rows
                ),
            );
        }
        check_sweep_shape(s.unroll, &s.datapath, &s.backend, "stream", &mut v);
    }
    if let Some(s) = &report.session {
        validate_session(s, &mut v);
    }
    if let Some(s) = &report.service {
        validate_service(s, &mut v);
    }
    v
}

/// Checks a serving front-end's admission-control claims: the executing
/// shards' aggregate resident high-water stays within the admitted
/// bound sum, the admitted bound sum stays within the memory budget, no
/// shard exceeded its own planned bound, shard merge conserved every
/// output element, and the reported throughput is finite.
fn validate_service(s: &crate::schema::ServiceMetrics, v: &mut Vec<BoundViolation>) {
    if s.peak_resident > s.admitted_bound_peak {
        violation(
            v,
            BoundCheck::ServiceResidency,
            "service",
            format!(
                "aggregate peak resident {} exceeds the admitted bound sum {}",
                s.peak_resident, s.admitted_bound_peak
            ),
        );
    }
    if s.memory_budget > 0 && s.admitted_bound_peak > s.memory_budget {
        violation(
            v,
            BoundCheck::ServiceResidency,
            "service",
            format!(
                "admitted bound high-water {} exceeds the memory budget {}",
                s.admitted_bound_peak, s.memory_budget
            ),
        );
    }
    if s.shards_over_bound > 0 {
        violation(
            v,
            BoundCheck::ServiceResidency,
            "service",
            format!(
                "{} shard(s) exceeded their own planned residency bound",
                s.shards_over_bound
            ),
        );
    }
    // Shard-merge conservation only holds for a clean batch: a failed
    // job legitimately produces fewer outputs than it promised.
    if s.jobs_failed == 0 && s.outputs_produced != s.outputs_expected {
        violation(
            v,
            BoundCheck::ServiceResidency,
            "service",
            format!(
                "shards produced {} outputs but admitted jobs promised {}",
                s.outputs_produced, s.outputs_expected
            ),
        );
    }
    if s.jobs_admitted > s.jobs_submitted || s.jobs_admitted + s.jobs_rejected != s.jobs_submitted {
        violation(
            v,
            BoundCheck::ServiceResidency,
            "service",
            format!(
                "admission arithmetic broken: {} admitted + {} rejected != {} submitted",
                s.jobs_admitted, s.jobs_rejected, s.jobs_submitted
            ),
        );
    }
    if !s.throughput.is_finite() {
        violation(
            v,
            BoundCheck::Finite,
            "service.throughput",
            format!("throughput is {}", s.throughput),
        );
    }
}

/// Checks a session pipeline's chained-residency claims: the summed
/// peak never exceeds the summed per-stage halo-window bound, each
/// stage individually honours its own declared bound, each stage's
/// declared backend matches what its sub-report actually ran, and
/// adjacent streaming stages conserve the rows flowing between them.
fn validate_session(s: &crate::schema::SessionMetrics, v: &mut Vec<BoundViolation>) {
    if s.peak_resident > s.resident_bound {
        violation(
            v,
            BoundCheck::ChainResidency,
            "session",
            format!(
                "summed peak resident {} values exceeds the summed halo-window bound {}",
                s.peak_resident, s.resident_bound
            ),
        );
    }
    // Heterogeneous chains declare a bound per stage; when every stage
    // carries one, the session peak must also fit under their sum (the
    // stage-wise Sec. 2.3 decomposition of the whole-pipeline bound).
    if !s.stages.is_empty() && s.stages.iter().all(|st| st.resident_bound > 0) {
        let summed = s
            .stages
            .iter()
            .try_fold(0u64, |acc, st| acc.checked_add(st.resident_bound));
        match summed {
            Some(summed) if s.peak_resident <= summed => {}
            Some(summed) => violation(
                v,
                BoundCheck::ChainResidency,
                "session",
                format!(
                    "session peak resident {} values exceeds the sum {} of per-stage bounds",
                    s.peak_resident, summed
                ),
            ),
            None => violation(
                v,
                BoundCheck::ChainResidency,
                "session",
                "per-stage residency bounds overflow u64 when summed".to_string(),
            ),
        }
    }
    if !s.throughput.is_finite() {
        violation(
            v,
            BoundCheck::Finite,
            "session.throughput",
            format!("throughput is {}", s.throughput),
        );
    }
    for (i, stage) in s.stages.iter().enumerate() {
        let loc = format!("session stage {i} ({:?})", stage.label);
        if let Some(sm) = &stage.stream {
            if sm.peak_resident > sm.resident_bound {
                violation(
                    v,
                    BoundCheck::ChainResidency,
                    &loc,
                    format!(
                        "stage peak resident {} values exceeds its halo-window bound {}",
                        sm.peak_resident, sm.resident_bound
                    ),
                );
            }
            if stage.resident_bound > 0 && sm.peak_resident > stage.resident_bound {
                violation(
                    v,
                    BoundCheck::ChainResidency,
                    &loc,
                    format!(
                        "stage peak resident {} values exceeds its declared per-stage bound {}",
                        sm.peak_resident, stage.resident_bound
                    ),
                );
            }
            if sm.backend != stage.backend {
                violation(
                    v,
                    BoundCheck::BackendConsistent,
                    &loc,
                    format!(
                        "stage declares backend {:?} but its stream report ran {:?}",
                        stage.backend, sm.backend
                    ),
                );
            }
            if sm.backend != "compiled" && sm.sweep_rows > 0 {
                violation(
                    v,
                    BoundCheck::BackendConsistent,
                    &loc,
                    format!(
                        "backend {:?} reports {} swept rows",
                        sm.backend, sm.sweep_rows
                    ),
                );
            }
            check_sweep_shape(sm.unroll, &sm.datapath, &sm.backend, &loc, v);
        }
        if let Some(em) = &stage.engine {
            if em.backend != stage.backend {
                violation(
                    v,
                    BoundCheck::BackendConsistent,
                    &loc,
                    format!(
                        "stage declares backend {:?} but its engine report ran {:?}",
                        stage.backend, em.backend
                    ),
                );
            }
            let sweep: u64 = em.per_tile.iter().map(|t| t.sweep_rows).sum();
            if em.backend != "compiled" && sweep > 0 {
                violation(
                    v,
                    BoundCheck::BackendConsistent,
                    &loc,
                    format!("backend {:?} reports {sweep} swept rows", em.backend),
                );
            }
            check_sweep_shape(em.unroll, &em.datapath, &em.backend, &loc, v);
        }
        // A chained streaming stage consumes exactly what its upstream
        // stage produced — no intermediate grid materializes, so any
        // mismatch means rows leaked or were fabricated between stages.
        if i > 0 {
            if let (Some(prev), Some(cur)) = (&s.stages[i - 1].stream, &stage.stream) {
                if cur.values_in != prev.outputs {
                    violation(
                        v,
                        BoundCheck::ChainResidency,
                        &loc,
                        format!(
                            "stage consumed {} values but its upstream stage produced {}",
                            cur.values_in, prev.outputs
                        ),
                    );
                }
            }
        }
    }
    if let Some(it) = &s.iterate {
        validate_iterate(it, s, v);
    }
    if let Some(io) = &s.grid_io {
        validate_grid_io(io, v);
    }
}

/// Checks a grid-I/O block's internal consistency: mapped values imply
/// mapped bytes, the mapped values fit within the mapped byte span, and
/// the sink was finalized — the three invariants that make the
/// zero-copy claim (`values_copied == 0`) trustworthy.
fn validate_grid_io(io: &crate::schema::GridIoMetrics, v: &mut Vec<BoundViolation>) {
    let loc = "session.grid_io";
    if io.bytes_mapped == 0 && io.values_mapped > 0 {
        violation(
            v,
            BoundCheck::GridIoConsistent,
            loc,
            format!(
                "{} values claimed mapped with zero bytes mapped",
                io.values_mapped
            ),
        );
    }
    match io.values_mapped.checked_mul(8) {
        Some(bytes) if bytes <= io.bytes_mapped || io.values_mapped == 0 => {}
        _ => violation(
            v,
            BoundCheck::GridIoConsistent,
            loc,
            format!(
                "{} mapped values need more than the {} mapped bytes",
                io.values_mapped, io.bytes_mapped
            ),
        ),
    }
    if !io.sink_finalized {
        violation(
            v,
            BoundCheck::GridIoConsistent,
            loc,
            "sink was not finalized; tail rows may not be durable".to_string(),
        );
    }
}

/// Checks an iterative time-stepping run (Sec. 2.3 applied across T
/// self-chained steps): the executed step count stays within its budget
/// and agrees with the per-stage telemetry, the observed peak residency
/// stays within the planned T×halo budget, and a run that claims
/// convergence actually drove its final max-abs delta down to epsilon.
fn validate_iterate(
    it: &crate::schema::IterateMetrics,
    s: &crate::schema::SessionMetrics,
    v: &mut Vec<BoundViolation>,
) {
    let loc = "session.iterate";
    if it.steps == 0 || it.steps > it.max_steps {
        violation(
            v,
            BoundCheck::IterateResidency,
            loc,
            format!(
                "executed {} step(s) against a budget of {}",
                it.steps, it.max_steps
            ),
        );
    }
    if it.steps != s.stages.len() as u64 {
        violation(
            v,
            BoundCheck::IterateResidency,
            loc,
            format!(
                "{} step(s) reported but {} stage reports present",
                it.steps,
                s.stages.len()
            ),
        );
    }
    if it.step_peaks.len() as u64 != it.steps {
        violation(
            v,
            BoundCheck::IterateResidency,
            loc,
            format!(
                "{} step(s) reported but {} per-step peaks recorded",
                it.steps,
                it.step_peaks.len()
            ),
        );
    }
    if it.observed_peak > it.planned_peak {
        violation(
            v,
            BoundCheck::IterateResidency,
            loc,
            format!(
                "observed peak {} values exceeds the planned T×halo budget {}",
                it.observed_peak, it.planned_peak
            ),
        );
    }
    if it.observed_peak != s.peak_resident {
        violation(
            v,
            BoundCheck::IterateResidency,
            loc,
            format!(
                "iterate observed peak {} disagrees with the session peak {}",
                it.observed_peak, s.peak_resident
            ),
        );
    }
    if !it.epsilon.is_finite() || it.epsilon < 0.0 || !it.final_delta.is_finite() {
        violation(
            v,
            BoundCheck::Finite,
            loc,
            format!(
                "epsilon {} / final delta {} must be finite and non-negative",
                it.epsilon, it.final_delta
            ),
        );
    } else if it.converged && it.final_delta > it.epsilon {
        violation(
            v,
            BoundCheck::IterateResidency,
            loc,
            format!(
                "run claims convergence but the final delta {} exceeds epsilon {}",
                it.final_delta, it.epsilon
            ),
        );
    }
    // Step-k input conservation: the per-step peaks must be the very
    // figures the per-stage streaming reports measured — the iterate
    // section cannot claim a residency the stages did not see.
    for (k, stage) in s.stages.iter().enumerate() {
        if let (Some(sm), Some(&peak)) = (&stage.stream, it.step_peaks.get(k)) {
            if sm.peak_resident != peak {
                violation(
                    v,
                    BoundCheck::IterateResidency,
                    format!("session.iterate step {k}"),
                    format!(
                        "step peak {} disagrees with stage peak {}",
                        peak, sm.peak_resident
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Histogram;
    use crate::schema::{
        ChainMetrics, EngineMetrics, FifoMetrics, FilterMetrics, MachineMetrics, TileMetrics,
    };

    fn clean_machine() -> MachineMetrics {
        MachineMetrics {
            cycles: 140,
            outputs: 80,
            iterations: 80,
            fill_latency: 27,
            steady_ii: 1.0,
            ideal_cycles: 141,
            offchip_streams: 1,
            planned_total_buffer: 12,
            min_total_buffer: 12,
            linearity_holds: true,
            chains: vec![ChainMetrics {
                array: "A".into(),
                inputs_streamed: 120,
                input_elements: 120,
                fifos: vec![
                    FifoMetrics {
                        capacity: 11,
                        high_water: 11,
                        pushes: 108,
                        pops: 97,
                        occupancy: Histogram::disabled(),
                    },
                    FifoMetrics {
                        capacity: 1,
                        high_water: 1,
                        pushes: 100,
                        pops: 99,
                        occupancy: Histogram::disabled(),
                    },
                ],
                filters: vec![FilterMetrics {
                    forwarded: 80,
                    discarded: 40,
                    stalls: 9,
                    steady_stalls: 0,
                }],
            }],
        }
    }

    #[test]
    fn clean_run_passes() {
        assert_eq!(validate_machine(&clean_machine()), Vec::new());
    }

    #[test]
    fn overfull_fifo_is_flagged() {
        let mut m = clean_machine();
        m.chains[0].fifos[0].high_water = 12;
        let v = validate_machine(&m);
        assert!(v.iter().any(|x| x.check == BoundCheck::FifoCapacitySafe));
    }

    #[test]
    fn underfull_fifo_breaks_tightness_only_when_complete() {
        let mut m = clean_machine();
        m.chains[0].fifos[0].high_water = 7;
        let v = validate_machine(&m);
        assert!(v.iter().any(|x| x.check == BoundCheck::FifoCapacityTight));
        assert!(v.iter().any(|x| x.check == BoundCheck::TotalBufferTight));
        // A truncated run must not be punished for unfilled FIFOs...
        m.outputs = 3;
        let v = validate_machine(&m);
        assert!(!v.iter().any(|x| x.check == BoundCheck::FifoCapacityTight));
        // ...but is reported as incomplete.
        assert!(v.iter().any(|x| x.check == BoundCheck::OutputsComplete));
    }

    #[test]
    fn minimum_buffer_bound_checked_for_single_stream_linear_plans() {
        let mut m = clean_machine();
        m.min_total_buffer = 11;
        let v = validate_machine(&m);
        assert!(v.iter().any(|x| x.check == BoundCheck::MinimumBuffer));
        // Multi-stream tradeoff points trade buffer for bandwidth, so
        // the single-stream minimum no longer applies.
        m.offchip_streams = 2;
        m.chains[0].inputs_streamed = 240;
        let v = validate_machine(&m);
        assert!(!v.iter().any(|x| x.check == BoundCheck::MinimumBuffer));
    }

    #[test]
    fn steady_stalls_and_cycle_bound_must_agree() {
        let mut m = clean_machine();
        m.cycles = 500; // blew the bound with no steady stalls
        let v = validate_machine(&m);
        assert!(v.iter().any(|x| x.check == BoundCheck::FullyPipelined));
        let mut m = clean_machine();
        m.chains[0].filters[0].steady_stalls = 4; // stalled yet met bound
        let v = validate_machine(&m);
        assert!(v.iter().any(|x| x.check == BoundCheck::FullyPipelined));
    }

    #[test]
    fn stream_conservation() {
        // Fewer streamed elements than outputs: some output had no tap.
        let mut m = clean_machine();
        m.chains[0].inputs_streamed = 79;
        let v = validate_machine(&m);
        assert!(v.iter().any(|x| x.check == BoundCheck::StreamConservation));
        // More than streams x |D_A|: a head re-walked its domain.
        m.chains[0].inputs_streamed = 121;
        let v = validate_machine(&m);
        assert!(v.iter().any(|x| x.check == BoundCheck::StreamConservation));
        // An early stop that still fed every output is legitimate.
        m.chains[0].inputs_streamed = 110;
        assert_eq!(validate_machine(&m), Vec::new());
    }

    #[test]
    fn non_finite_engine_numbers_are_flagged() {
        let mut report = MetricsReport::new("x");
        report.engine = Some(EngineMetrics {
            outputs: 10,
            tiles: 1,
            threads: 1,
            backend: "closure".into(),
            unroll: 1,
            datapath: "f64".into(),
            halo_elements: 12,
            elapsed_ns: 0,
            throughput: f64::INFINITY,
            per_tile: vec![TileMetrics {
                id: 0,
                outputs: 10,
                halo_elements: 12,
                sweep_rows: 0,
                fast_rows: 2,
                gather_rows: 0,
                elapsed_ns: 0,
            }],
        });
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::Finite));
        report.engine.as_mut().unwrap().throughput = 1.0;
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn closure_backend_reporting_swept_rows_is_flagged() {
        let mut report = MetricsReport::new("x");
        report.engine = Some(EngineMetrics {
            outputs: 10,
            tiles: 1,
            threads: 1,
            backend: "closure".into(),
            unroll: 1,
            datapath: "f64".into(),
            halo_elements: 12,
            elapsed_ns: 5,
            throughput: 1.0,
            per_tile: vec![TileMetrics {
                id: 0,
                outputs: 10,
                halo_elements: 12,
                sweep_rows: 2,
                fast_rows: 0,
                gather_rows: 0,
                elapsed_ns: 5,
            }],
        });
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::BackendConsistent));
        assert!(v[0].to_string().contains("backend-consistent"), "{}", v[0]);
        // The same tallies under the compiled backend are legitimate.
        report.engine.as_mut().unwrap().backend = "compiled".into();
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn malformed_sweep_shape_is_flagged() {
        let mut report = MetricsReport::new("x");
        report.engine = Some(EngineMetrics {
            outputs: 10,
            tiles: 1,
            threads: 1,
            backend: "compiled".into(),
            unroll: 4,
            datapath: "f32".into(),
            halo_elements: 12,
            elapsed_ns: 5,
            throughput: 1.0,
            per_tile: Vec::new(),
        });
        // An unrolled f32 compiled run is a legitimate shape.
        assert_eq!(validate_report(&report), Vec::new());
        // Unroll 0 is impossible: every dispatch makes >= 1 output.
        report.engine.as_mut().unwrap().unroll = 0;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::SweepShape), "{v:?}");
        assert!(v[0].to_string().contains("sweep-shape"), "{}", v[0]);
        // The unrolled sweep only exists for the compiled backend.
        let e = report.engine.as_mut().unwrap();
        e.unroll = 4;
        e.backend = "closure".into();
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::SweepShape), "{v:?}");
        // An unknown datapath string is malformed telemetry.
        let e = report.engine.as_mut().unwrap();
        e.backend = "compiled".into();
        e.datapath = "f16".into();
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::SweepShape), "{v:?}");
        // The f32 datapath under the closure backend (scalar f32
        // bytecode, used by cross-checks) is well-formed as long as the
        // run does not also claim unrolled dispatch.
        let e = report.engine.as_mut().unwrap();
        e.backend = "closure".into();
        e.datapath = "f32".into();
        e.unroll = 1;
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn residency_bound_violation_is_flagged() {
        use crate::schema::StreamMetrics;
        let mut report = MetricsReport::new("x");
        report.stream = Some(StreamMetrics {
            outputs: 100,
            bands: 5,
            threads: 2,
            backend: "compiled".into(),
            unroll: 1,
            datapath: "f64".into(),
            chunk_rows: 4,
            rows_in: 12,
            values_in: 144,
            rows_out: 10,
            peak_resident: 72,
            resident_bound: 72,
            sweep_rows: 10,
            fast_rows: 0,
            gather_rows: 0,
            elapsed_ns: 1000,
            throughput: 1.0,
        });
        assert_eq!(validate_report(&report), Vec::new());
        // A closure-backend stream claiming swept rows is inconsistent.
        report.stream.as_mut().unwrap().backend = "closure".into();
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::BackendConsistent));
        report.stream.as_mut().unwrap().backend = "compiled".into();
        // Exceeding the halo-window bound is the core violation.
        report.stream.as_mut().unwrap().peak_resident = 73;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ResidencyBound));
        assert!(v[0].to_string().contains("residency-bound"), "{}", v[0]);
        // Non-finite throughput and empty-output inconsistencies too.
        let s = report.stream.as_mut().unwrap();
        s.peak_resident = 72;
        s.throughput = f64::NAN;
        s.rows_out = 0;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::Finite));
        assert!(v.iter().any(|x| x.check == BoundCheck::OutputsComplete));
    }

    #[test]
    fn chain_residency_violations_are_flagged() {
        use crate::schema::{SessionMetrics, StageMetrics, StreamMetrics};
        fn stage(label: &str, outputs: u64, values_in: u64, peak: u64, bound: u64) -> StageMetrics {
            StageMetrics {
                label: label.into(),
                backend: "closure".into(),
                window_taps: 5,
                window_rows: 3,
                resident_bound: bound,
                engine: None,
                stream: Some(StreamMetrics {
                    outputs,
                    bands: 4,
                    threads: 1,
                    backend: "closure".into(),
                    unroll: 1,
                    datapath: "f64".into(),
                    chunk_rows: 1,
                    rows_in: 10,
                    values_in,
                    rows_out: 8,
                    peak_resident: peak,
                    resident_bound: bound,
                    sweep_rows: 0,
                    fast_rows: 8,
                    gather_rows: 0,
                    elapsed_ns: 100,
                    throughput: 1.0,
                }),
            }
        }
        let mut report = MetricsReport::new("chain");
        report.session = Some(SessionMetrics {
            mode: "streaming".into(),
            threads: 1,
            outputs: 320,
            peak_resident: 138,
            resident_bound: 138,
            elapsed_ns: 250,
            throughput: 1.0,
            tile_plans_built: 0,
            stages: vec![stage("s1", 396, 480, 72, 72), stage("s2", 320, 396, 66, 66)],
            iterate: None,
            grid_io: None,
        });
        assert_eq!(validate_report(&report), Vec::new());

        // Summed peak above the summed bound is the core violation.
        report.session.as_mut().unwrap().peak_resident = 139;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ChainResidency));
        assert!(v[0].to_string().contains("chain-residency"), "{}", v[0]);
        report.session.as_mut().unwrap().peak_resident = 138;

        // A single stage blowing its own bound is flagged with the
        // stage's position and label.
        report.session.as_mut().unwrap().stages[1]
            .stream
            .as_mut()
            .unwrap()
            .peak_resident = 67;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ChainResidency
            && x.location.contains("stage 1")
            && x.location.contains("s2")));
        report.session.as_mut().unwrap().stages[1]
            .stream
            .as_mut()
            .unwrap()
            .peak_resident = 66;

        // A downstream stage consuming a different value count than its
        // upstream stage produced means the hand-off leaked rows.
        report.session.as_mut().unwrap().stages[1]
            .stream
            .as_mut()
            .unwrap()
            .values_in = 395;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ChainResidency
            && x.detail.contains("upstream stage produced 396")));
        report.session.as_mut().unwrap().stages[1]
            .stream
            .as_mut()
            .unwrap()
            .values_in = 396;

        // Backend consistency applies per stage.
        report.session.as_mut().unwrap().stages[0]
            .stream
            .as_mut()
            .unwrap()
            .sweep_rows = 3;
        let v = validate_report(&report);
        assert!(v
            .iter()
            .any(|x| x.check == BoundCheck::BackendConsistent && x.location.contains("stage 0")));
        report.session.as_mut().unwrap().stages[0]
            .stream
            .as_mut()
            .unwrap()
            .sweep_rows = 0;

        // A stream peak above the stage's *declared* per-stage bound is
        // flagged even when the stream's own runtime bound kept up.
        report.session.as_mut().unwrap().stages[1].resident_bound = 60;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ChainResidency
            && x.detail.contains("declared per-stage bound 60")));
        report.session.as_mut().unwrap().stages[1].resident_bound = 66;

        // A stage whose declared backend disagrees with what its
        // sub-report actually ran is a backend-consistency violation.
        report.session.as_mut().unwrap().stages[0].backend = "compiled".into();
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::BackendConsistent
            && x.location.contains("stage 0")
            && x.detail.contains("stream report ran")));
        report.session.as_mut().unwrap().stages[0].backend = "closure".into();

        // Non-finite session throughput is rejected like any other.
        report.session.as_mut().unwrap().throughput = f64::NAN;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::Finite));
    }

    #[test]
    fn iterate_residency_violations_are_flagged() {
        use crate::schema::{IterateMetrics, SessionMetrics, StageMetrics, StreamMetrics};
        fn step(label: &str, outputs: u64, values_in: u64, peak: u64) -> StageMetrics {
            StageMetrics {
                label: label.into(),
                backend: "closure".into(),
                window_taps: 5,
                window_rows: 3,
                resident_bound: peak,
                engine: None,
                stream: Some(StreamMetrics {
                    outputs,
                    bands: 4,
                    threads: 1,
                    backend: "closure".into(),
                    unroll: 1,
                    datapath: "f64".into(),
                    chunk_rows: 1,
                    rows_in: 10,
                    values_in,
                    rows_out: 8,
                    peak_resident: peak,
                    resident_bound: peak,
                    sweep_rows: 0,
                    fast_rows: 8,
                    gather_rows: 0,
                    elapsed_ns: 100,
                    throughput: 1.0,
                }),
            }
        }
        let mut report = MetricsReport::new("iterate");
        report.session = Some(SessionMetrics {
            mode: "streaming".into(),
            threads: 1,
            outputs: 320,
            peak_resident: 138,
            resident_bound: 138,
            elapsed_ns: 250,
            throughput: 1.0,
            tile_plans_built: 0,
            stages: vec![step("j@t1", 396, 480, 72), step("j@t2", 320, 396, 66)],
            iterate: Some(IterateMetrics {
                steps: 2,
                max_steps: 2,
                converged: false,
                epsilon: 0.0,
                final_delta: 0.0,
                step_peaks: vec![72, 66],
                planned_peak: 138,
                observed_peak: 138,
            }),
            grid_io: None,
        });
        assert_eq!(validate_report(&report), Vec::new());
        fn it(r: &mut MetricsReport) -> &mut IterateMetrics {
            r.session.as_mut().unwrap().iterate.as_mut().unwrap()
        }

        // Observed peak above the planned T×halo budget is the core
        // violation.
        it(&mut report).observed_peak = 139;
        it(&mut report).planned_peak = 138;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::IterateResidency));
        assert!(v[0].to_string().contains("iterate-residency"), "{}", v[0]);
        it(&mut report).observed_peak = 138;

        // Step count must stay within the budget and match the stages.
        it(&mut report).max_steps = 1;
        let v = validate_report(&report);
        assert!(v
            .iter()
            .any(|x| x.check == BoundCheck::IterateResidency && x.detail.contains("budget")));
        it(&mut report).max_steps = 2;
        it(&mut report).steps = 3;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.detail.contains("stage reports present")));
        assert!(v.iter().any(|x| x.detail.contains("per-step peaks")));
        it(&mut report).steps = 2;

        // Claimed convergence needs the delta at or below epsilon.
        it(&mut report).converged = true;
        it(&mut report).epsilon = 1e-6;
        it(&mut report).final_delta = 1e-3;
        let v = validate_report(&report);
        assert!(v
            .iter()
            .any(|x| x.check == BoundCheck::IterateResidency
                && x.detail.contains("claims convergence")));
        it(&mut report).final_delta = 1e-9;
        assert_eq!(validate_report(&report), Vec::new());

        // Step-k conservation: step peaks are the stage peaks.
        it(&mut report).step_peaks = vec![72, 65];
        let v = validate_report(&report);
        assert!(v
            .iter()
            .any(|x| x.check == BoundCheck::IterateResidency && x.location.contains("step 1")));
        it(&mut report).step_peaks = vec![72, 66];

        // A negative epsilon can never be a meaningful threshold.
        it(&mut report).epsilon = -1.0;
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::Finite));
    }

    #[test]
    fn in_core_session_stage_backend_is_checked() {
        use crate::schema::{SessionMetrics, StageMetrics};
        let mut report = MetricsReport::new("chain");
        report.session = Some(SessionMetrics {
            mode: "incore".into(),
            threads: 1,
            outputs: 10,
            peak_resident: 12,
            resident_bound: 12,
            elapsed_ns: 50,
            throughput: 1.0,
            tile_plans_built: 0,
            iterate: None,
            grid_io: None,
            stages: vec![StageMetrics {
                label: "s1".into(),
                backend: "compiled".into(),
                window_taps: 5,
                window_rows: 3,
                resident_bound: 12,
                engine: Some(EngineMetrics {
                    outputs: 10,
                    tiles: 1,
                    threads: 1,
                    backend: "closure".into(),
                    unroll: 1,
                    datapath: "f64".into(),
                    halo_elements: 12,
                    elapsed_ns: 50,
                    throughput: 1.0,
                    per_tile: vec![TileMetrics {
                        id: 0,
                        outputs: 10,
                        halo_elements: 12,
                        sweep_rows: 4,
                        fast_rows: 0,
                        gather_rows: 0,
                        elapsed_ns: 50,
                    }],
                }),
                stream: None,
            }],
        });
        let v = validate_report(&report);
        assert!(v
            .iter()
            .any(|x| x.check == BoundCheck::BackendConsistent && x.location.contains("stage 0")));
        report.session.as_mut().unwrap().stages[0]
            .engine
            .as_mut()
            .unwrap()
            .backend = "compiled".into();
        assert_eq!(validate_report(&report), Vec::new());
    }

    #[test]
    fn tile_output_sum_must_match_run_total() {
        let mut report = MetricsReport::new("x");
        report.engine = Some(EngineMetrics {
            outputs: 11,
            tiles: 1,
            threads: 1,
            backend: "closure".into(),
            unroll: 1,
            datapath: "f64".into(),
            halo_elements: 12,
            elapsed_ns: 5,
            throughput: 1.0,
            per_tile: vec![TileMetrics {
                id: 0,
                outputs: 10,
                halo_elements: 12,
                sweep_rows: 0,
                fast_rows: 2,
                gather_rows: 0,
                elapsed_ns: 5,
            }],
        });
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::OutputsComplete));
    }

    fn clean_service() -> crate::schema::ServiceMetrics {
        crate::schema::ServiceMetrics {
            workers: 4,
            queue_depth: 16,
            memory_budget: 100_000,
            jobs_submitted: 12,
            jobs_admitted: 10,
            jobs_rejected: 2,
            jobs_failed: 0,
            shards_executed: 18,
            admitted_bound_peak: 90_000,
            peak_resident: 64_000,
            shards_over_bound: 0,
            outputs_expected: 48_000,
            outputs_produced: 48_000,
            tile_plans_built: 0,
            plan_cache_hits: 14,
            plan_cache_misses: 4,
            elapsed_ns: 1_200_000,
            throughput: 4.0e7,
        }
    }

    #[test]
    fn clean_service_report_validates() {
        let mut report = MetricsReport::new("service");
        report.service = Some(clean_service());
        assert_eq!(validate_report(&report), vec![]);
    }

    #[test]
    fn service_peak_over_admitted_bound_is_flagged() {
        let mut report = MetricsReport::new("service");
        let mut s = clean_service();
        s.peak_resident = s.admitted_bound_peak + 1;
        report.service = Some(s);
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ServiceResidency));
    }

    #[test]
    fn service_admission_over_budget_is_flagged() {
        let mut report = MetricsReport::new("service");
        let mut s = clean_service();
        s.admitted_bound_peak = s.memory_budget + 1;
        s.peak_resident = s.memory_budget + 1;
        report.service = Some(s);
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ServiceResidency));
        // An unbudgeted service (0 = unlimited) skips only that check.
        let mut s = clean_service();
        s.memory_budget = 0;
        let mut report = MetricsReport::new("service");
        report.service = Some(s);
        assert_eq!(validate_report(&report), vec![]);
    }

    #[test]
    fn service_output_conservation_is_checked() {
        let mut report = MetricsReport::new("service");
        let mut s = clean_service();
        s.outputs_produced = s.outputs_expected - 1;
        report.service = Some(s);
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ServiceResidency));
        // ...but a batch with failed jobs may legitimately come up short.
        let mut s = clean_service();
        s.outputs_produced = s.outputs_expected - 1;
        s.jobs_failed = 1;
        let mut report = MetricsReport::new("service");
        report.service = Some(s);
        assert_eq!(validate_report(&report), vec![]);
    }

    #[test]
    fn service_admission_arithmetic_is_checked() {
        let mut report = MetricsReport::new("service");
        let mut s = clean_service();
        s.jobs_rejected = 0; // 10 admitted + 0 rejected != 12 submitted
        report.service = Some(s);
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::ServiceResidency));
    }

    #[test]
    fn service_throughput_must_be_finite() {
        let mut report = MetricsReport::new("service");
        let mut s = clean_service();
        s.throughput = f64::INFINITY;
        report.service = Some(s);
        let v = validate_report(&report);
        assert!(v.iter().any(|x| x.check == BoundCheck::Finite));
    }
}
