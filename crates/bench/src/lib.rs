//! # stencil-bench
//!
//! Experiment harnesses for the DAC'14 reproduction. Each table and
//! figure of the paper's evaluation has a binary that regenerates it
//! (see `src/bin/`), and the Criterion benches under `benches/` measure
//! the underlying machinery. Shared helpers live here.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use parking_lot::Mutex;
use stencil_core::{MemorySystemPlan, StencilSpec};
use stencil_kernels::Benchmark;
use stencil_sim::{Machine, RunStats, SimError};

/// Absolute path of `name` under the workspace root (the directory
/// holding the top-level `Cargo.toml`), independent of the current
/// working directory. The bench binaries resolve their default
/// `BENCH_N.json` reports and baselines through this, so the reports
/// land in one canonical place whether a binary is launched from the
/// root, a crate directory, or a CI checkout step.
#[must_use]
pub fn workspace_path(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/bench -> crates
    p.pop(); // crates -> workspace root
    p.push(name);
    p.display().to_string()
}

/// Parses a bench binary's command line: `--out PATH` selects the
/// report file (default: `default_out` at the workspace root via
/// [`workspace_path`]), and a leading positional ending in `.json` is
/// still accepted as the report path for backward compatibility with
/// the original `benchN OUT.json [...]` form. Every other argument is
/// returned in order for the binary's own positionals.
///
/// # Errors
///
/// Returns a usage message when `--out` is missing its path.
pub fn parse_bench_args<I>(default_out: &str, args: I) -> Result<(String, Vec<String>), String>
where
    I: IntoIterator<Item = String>,
{
    let mut out: Option<String> = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            out = Some(
                it.next()
                    .ok_or_else(|| "--out needs a file path".to_owned())?,
            );
        } else if out.is_none() && rest.is_empty() && arg.ends_with(".json") {
            out = Some(arg);
        } else {
            rest.push(arg);
        }
    }
    Ok((out.unwrap_or_else(|| workspace_path(default_out)), rest))
}

/// [`parse_bench_args`] applied to the process arguments.
///
/// # Errors
///
/// Returns a usage message when `--out` is missing its path.
pub fn bench_args(default_out: &str) -> Result<(String, Vec<String>), String> {
    parse_bench_args(default_out, std::env::args().skip(1))
}

/// Shrinks a benchmark's grid until it has at most `max_cells` data
/// points, preserving the aspect ratio (roughly) and dimensionality.
/// Used to keep cycle-accurate simulations fast in tests and benches.
///
/// # Panics
///
/// Panics if even the minimum viable grid exceeds `max_cells`.
#[must_use]
pub fn scaled_extents(bench: &Benchmark, max_cells: u64) -> Vec<i64> {
    let mut extents: Vec<i64> = bench.extents().to_vec();
    // Minimum extent per dimension: window span + 2 so a non-trivial
    // interior remains.
    let mins: Vec<i64> = (0..extents.len())
        .map(|d| {
            let lo = bench.window().iter().map(|f| f[d]).min().unwrap();
            let hi = bench.window().iter().map(|f| f[d]).max().unwrap();
            (hi - lo + 3).max(4)
        })
        .collect();
    loop {
        let cells: u64 = extents.iter().map(|&e| e as u64).product();
        if cells <= max_cells {
            return extents;
        }
        // Halve the largest still-shrinkable dimension.
        let d = (0..extents.len())
            .filter(|&d| extents[d] / 2 >= mins[d])
            .max_by_key(|&d| extents[d])
            .unwrap_or_else(|| {
                panic!(
                    "cannot shrink {:?} below {max_cells} cells",
                    bench.extents()
                )
            });
        extents[d] /= 2;
    }
}

/// Plans and cycle-accurately simulates a benchmark on a scaled grid.
///
/// # Errors
///
/// Propagates planning (wrapped in [`SimError::Plan`]) and simulation
/// errors.
pub fn simulate_scaled(bench: &Benchmark, max_cells: u64) -> Result<RunStats, SimError> {
    let extents = scaled_extents(bench, max_cells);
    let spec: StencilSpec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;
    let mut machine = Machine::new(&plan)?;
    let limit = 64 * max_cells + 100_000;
    machine.run(limit)
}

/// Simulates every benchmark of a suite in parallel (one OS thread per
/// benchmark via `crossbeam::scope`), each on a grid scaled to at most
/// `max_cells` points. Results come back in suite order.
///
/// # Errors
///
/// Returns the first benchmark's error encountered, by suite order.
pub fn simulate_suite_parallel(
    suite: &[Benchmark],
    max_cells: u64,
) -> Result<Vec<(String, RunStats)>, SimError> {
    let slots: Mutex<Vec<Option<Result<RunStats, SimError>>>> = Mutex::new(vec![None; suite.len()]);
    crossbeam::scope(|scope| {
        for (k, bench) in suite.iter().enumerate() {
            let slots = &slots;
            scope.spawn(move |_| {
                let result = simulate_scaled(bench, max_cells);
                slots.lock()[k] = Some(result);
            });
        }
    })
    .expect("no panics in simulation threads");
    let results = slots.into_inner();
    let mut out = Vec::with_capacity(suite.len());
    for (bench, slot) in suite.iter().zip(results) {
        let stats = slot.expect("every slot filled")?;
        out.push((bench.name().to_owned(), stats));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_kernels::{paper_suite, segmentation_3d};

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn bench_args_default_lands_at_the_workspace_root() {
        let (out, rest) = parse_bench_args("BENCH_9.json", strs(&["DENOISE"])).unwrap();
        assert_eq!(out, workspace_path("BENCH_9.json"));
        assert!(out.ends_with("BENCH_9.json"));
        assert!(PathBuf::from(&out)
            .parent()
            .unwrap()
            .join("Cargo.toml")
            .exists());
        assert_eq!(rest, strs(&["DENOISE"]));
    }

    #[test]
    fn bench_args_accepts_out_flag_and_positional_json() {
        let (out, rest) = parse_bench_args(
            "BENCH_9.json",
            strs(&["--out", "x.json", "SOBEL", "base.json"]),
        )
        .unwrap();
        assert_eq!(out, "x.json");
        assert_eq!(rest, strs(&["SOBEL", "base.json"]));

        // Backward compatibility: a leading positional `.json` is OUT,
        // later `.json` positionals (e.g. a baseline) are not.
        let (out, rest) =
            parse_bench_args("BENCH_9.json", strs(&["y.json", "SOBEL", "base.json"])).unwrap();
        assert_eq!(out, "y.json");
        assert_eq!(rest, strs(&["SOBEL", "base.json"]));
    }

    #[test]
    fn bench_args_rejects_a_dangling_out_flag() {
        let err = parse_bench_args("BENCH_9.json", strs(&["--out"])).unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn scaling_respects_budget() {
        for bench in paper_suite() {
            let e = scaled_extents(&bench, 10_000);
            let cells: u64 = e.iter().map(|&x| x as u64).product();
            assert!(cells <= 10_000, "{}: {:?}", bench.name(), e);
            assert_eq!(e.len(), bench.dims());
        }
    }

    #[test]
    fn scaling_is_identity_when_budget_is_large() {
        let b = segmentation_3d();
        let e = scaled_extents(&b, u64::MAX);
        assert_eq!(e, b.extents());
    }

    #[test]
    fn simulate_scaled_runs_all_benchmarks() {
        for bench in paper_suite() {
            let stats = simulate_scaled(&bench, 6_000).unwrap();
            assert!(stats.outputs > 0, "{}", bench.name());
            assert!(stats.fully_pipelined(), "{}", bench.name());
        }
    }

    #[test]
    fn parallel_suite_matches_sequential() {
        let suite = paper_suite();
        let parallel = simulate_suite_parallel(&suite, 4_000).unwrap();
        assert_eq!(parallel.len(), suite.len());
        for (bench, (name, stats)) in suite.iter().zip(&parallel) {
            assert_eq!(name, bench.name());
            let sequential = simulate_scaled(bench, 4_000).unwrap();
            assert_eq!(stats.outputs, sequential.outputs, "{name}");
            assert_eq!(stats.cycles, sequential.cycles, "{name}");
        }
    }
}
