//! Regenerates the Fig. 13(b) observation of the paper: an accelerator
//! with this microarchitecture exposes a *single* sequential data
//! reference per array, so a bus-burst prefetcher with a small buffer
//! hides the off-chip latency completely — the initial bus latency only
//! shifts the fill, never the steady state.

use stencil_core::MemorySystemPlan;
use stencil_kernels::denoise;
use stencil_sim::Machine;

fn main() {
    let bench = denoise();
    let spec = bench.spec_for(&[48, 64]).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");

    println!("Fig. 13(b) — burst prefetching with a single sequential reference");
    println!();
    println!(
        "{:>12} {:>12} {:>12} {:>18}",
        "bus latency", "fill cycles", "total cycles", "bandwidth-limited"
    );
    let mut baseline_total = None;
    for latency in [0u64, 8, 32, 128] {
        let mut m = Machine::with_stream_latency(&plan, latency).expect("machine");
        let stats = m.run(10_000_000).expect("run");
        let base = *baseline_total.get_or_insert(stats.cycles - latency);
        println!(
            "{latency:>12} {:>12} {:>12} {:>18}",
            stats.fill_latency,
            stats.cycles,
            stats.fully_pipelined()
        );
        assert!(stats.fully_pipelined());
        assert_eq!(
            stats.cycles,
            base + latency,
            "latency must only shift the fill"
        );
    }
    println!();
    println!("steady-state throughput is unchanged: the latency is fully hidden");
}
