//! Emits `BENCH_4.json`: closure-vs-compiled kernel throughput on
//! full-size DENOISE (768x1024), the report the CI bench-smoke job
//! publishes and gates on.
//!
//! Runs the same plan four ways — in-core and streaming, each through
//! the original closure datapath and through the compiled row-sweep
//! backend (`KernelExpr` lowered to stack bytecode, evaluated over
//! lane chunks) — best of three runs each. All four output buffers
//! must agree bit-for-bit, every telemetry report must pass the
//! runtime bound validator, and the compiled backend must not be
//! slower than the closure it replaces; any of those failing exits
//! nonzero so a regression fails the pipeline.
//!
//! Usage: `bench4_compiled [OUT.json [BENCHMARK]]` (defaults:
//! `BENCH_4.json`, `DENOISE`; any paper-suite or extra benchmark name
//! is accepted, e.g. `SOBEL`).

use std::process::ExitCode;

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, Session, SessionKernel, SliceSource, VecSink,
};
use stencil_kernels::{extra_suite, paper_suite, Benchmark};
use stencil_telemetry::{validate_report, MetricsReport};

/// Measurement repetitions per configuration; the best run is kept.
const RUNS: usize = 3;

/// The four measured throughputs (elements per second).
struct Measurements {
    name: String,
    extents: Vec<i64>,
    incore_closure: f64,
    incore_compiled: f64,
    streaming_closure: f64,
    streaming_compiled: f64,
    outputs: u64,
    violations: usize,
}

impl Measurements {
    fn incore_speedup(&self) -> f64 {
        self.incore_compiled / self.incore_closure
    }

    fn streaming_speedup(&self) -> f64 {
        self.streaming_compiled / self.streaming_closure
    }

    /// The flat JSON document written to `BENCH_4.json`.
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"extents\": {:?},\n  \
             \"outputs\": {},\n  \"incore_closure_elem_per_s\": {:.1},\n  \
             \"incore_compiled_elem_per_s\": {:.1},\n  \"incore_speedup\": {:.4},\n  \
             \"streaming_closure_elem_per_s\": {:.1},\n  \
             \"streaming_compiled_elem_per_s\": {:.1},\n  \"streaming_speedup\": {:.4},\n  \
             \"violations\": {}\n}}\n",
            self.name,
            self.extents,
            self.outputs,
            self.incore_closure,
            self.incore_compiled,
            self.incore_speedup(),
            self.streaming_closure,
            self.streaming_compiled,
            self.streaming_speedup(),
            self.violations,
        )
    }
}

fn main() -> ExitCode {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_4.json".into());
    let name = std::env::args().nth(2).unwrap_or_else(|| "DENOISE".into());
    let Some(bench) = paper_suite()
        .into_iter()
        .chain(extra_suite())
        .find(|b| b.name() == name)
    else {
        eprintln!("bench4_compiled: unknown benchmark `{name}`");
        return ExitCode::FAILURE;
    };
    match measure(&bench) {
        Ok(m) => {
            if let Err(e) = std::fs::write(&out_path, m.to_json()) {
                eprintln!("bench4_compiled: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {out_path}: {} {} outputs; in-core {:.1} -> {:.1} Melem/s ({:.2}x), \
                 streaming {:.1} -> {:.1} Melem/s ({:.2}x)",
                m.name,
                m.outputs,
                m.incore_closure / 1e6,
                m.incore_compiled / 1e6,
                m.incore_speedup(),
                m.streaming_closure / 1e6,
                m.streaming_compiled / 1e6,
                m.streaming_speedup(),
            );
            if m.violations > 0 {
                eprintln!("runtime bound checks: {} FAILED", m.violations);
                return ExitCode::FAILURE;
            }
            if m.incore_speedup() < 1.0 {
                eprintln!(
                    "compiled backend is SLOWER than the closure in-core: {:.2}x",
                    m.incore_speedup()
                );
                return ExitCode::FAILURE;
            }
            println!("runtime bound checks: all passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench4_compiled: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Plans the benchmark at its full paper extents and measures all four
/// configurations, cross-checking every output buffer bit-for-bit and
/// validating each run's telemetry.
fn measure(bench: &Benchmark) -> Result<Measurements, Box<dyn std::error::Error>> {
    let extents: Vec<i64> = bench.extents().to_vec();
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;

    let in_idx = plan.input_domain().index()?;
    let mut state = 0x5EED_BA5E_D00Du64;
    let in_vals: Vec<f64> = (0..in_idx.len())
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    let input = InputGrid::new(&in_idx, &in_vals)?;
    let compute = bench.compute_fn();
    let kernel = CompiledKernel::for_benchmark(bench)?
        .ok_or_else(|| format!("{} carries no expression", bench.name()))?;

    let stream_mode = ExecMode::Streaming {
        chunk_rows: Some(64),
    };

    let mut violations = 0usize;
    let mut validate = |report: &MetricsReport| {
        let v = validate_report(report);
        for violation in &v {
            eprintln!("  violation: {violation}");
        }
        violations += v.len();
    };

    // In-core, closure datapath.
    let mut reference: Option<Vec<f64>> = None;
    let mut incore_closure = 0.0f64;
    for _ in 0..RUNS {
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)?;
        let engine = run.report.stages[0]
            .engine
            .clone()
            .ok_or("session produced no in-core stage report")?;
        incore_closure = incore_closure.max(engine.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.engine = Some(engine.metrics());
        validate(&report);
        reference = Some(run.outputs);
    }
    let reference = reference.expect("at least one run");
    let outputs = reference.len() as u64;

    // In-core, compiled row sweep.
    let mut incore_compiled = 0.0f64;
    for _ in 0..RUNS {
        let run = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .run(&input)?;
        let engine = run.report.stages[0]
            .engine
            .clone()
            .ok_or("session produced no in-core stage report")?;
        incore_compiled = incore_compiled.max(engine.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.engine = Some(engine.metrics());
        validate(&report);
        if run.outputs != reference {
            return Err("compiled in-core outputs diverge from the closure run".into());
        }
    }

    // Streaming, closure datapath.
    let mut streaming_closure = 0.0f64;
    for _ in 0..RUNS {
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(stream_mode)
            .threads(4)
            .run_streaming(&mut source, &mut sink)?;
        let streamed = session.stages[0]
            .stream
            .clone()
            .ok_or("session produced no streaming stage report")?;
        streaming_closure = streaming_closure.max(streamed.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.stream = Some(streamed.metrics());
        validate(&report);
        if sink.values != reference {
            return Err("closure streaming outputs diverge from the in-core run".into());
        }
    }

    // Streaming, compiled row sweep.
    let mut streaming_compiled = 0.0f64;
    for _ in 0..RUNS {
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(stream_mode)
            .threads(4)
            .run_streaming(&mut source, &mut sink)?;
        let streamed = session.stages[0]
            .stream
            .clone()
            .ok_or("session produced no streaming stage report")?;
        streaming_compiled = streaming_compiled.max(streamed.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.stream = Some(streamed.metrics());
        validate(&report);
        if sink.values != reference {
            return Err("compiled streaming outputs diverge from the in-core run".into());
        }
    }

    Ok(Measurements {
        name: bench.name().to_string(),
        extents,
        incore_closure,
        incore_compiled,
        streaming_closure,
        streaming_compiled,
        outputs,
        violations,
    })
}
