//! Emits `BENCH_4.json`: closure-vs-compiled kernel throughput on
//! full-size DENOISE (768x1024), the report the CI bench-smoke job
//! publishes and gates on.
//!
//! Runs the same plan through the original closure datapath and the
//! compiled row-sweep backend, in-core and streaming, best of three
//! runs each — then sweeps the compiled in-core configuration over
//! unroll factors U in {1, 2, 4, 8} on both the f64 and the f32
//! datapath. All f64 output buffers must agree bit-for-bit, the f32
//! runs must stay inside the benchmark's declared relative tolerance
//! (`Benchmark::f32_rtol`), every telemetry report must pass the
//! runtime bound validator, and two throughput gates hold: the
//! compiled backend must not be slower than the closure it replaces,
//! and (on DENOISE, the CI geometry) the unrolled sweep at
//! `DEFAULT_UNROLL` must clear 1.15x the U=1 compiled in-core rate.
//! Correctness failures exit nonzero immediately; a missed throughput
//! gate earns fresh measurements (keeping the per-configuration
//! maximum) before it fails the pipeline, because a descheduled
//! best-of-N on a shared box is noise, not a regression.
//!
//! Usage: `bench4_compiled [--out OUT.json] [BENCHMARK]` (defaults:
//! `BENCH_4.json` at the workspace root, `DENOISE`; a leading
//! positional `.json` path is still accepted as OUT; any paper-suite
//! or extra benchmark name is accepted, e.g. `SOBEL`).

use std::process::ExitCode;

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    max_rel_error, CompiledKernel, Datapath, ExecMode, InputGrid, Session, SessionKernel,
    SliceSource, VecSink, DEFAULT_UNROLL,
};
use stencil_kernels::{extra_suite, paper_suite, Benchmark};
use stencil_telemetry::{validate_report, MetricsReport};

/// Measurement repetitions per configuration; the best run is kept.
const RUNS: usize = 3;

/// Unroll factors swept on the compiled in-core configuration.
const UNROLL_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Required in-core speedup of the `DEFAULT_UNROLL` f64 sweep over the
/// U=1 compiled run on DENOISE, the CI gate geometry.
const UNROLL_GATE: f64 = 1.15;

/// The measured throughputs (elements per second).
struct Measurements {
    name: String,
    extents: Vec<i64>,
    incore_closure: f64,
    /// Per-factor compiled in-core rates, f64 datapath, [`UNROLL_SWEEP`] order.
    sweep_f64: [f64; UNROLL_SWEEP.len()],
    /// Per-factor compiled in-core rates, f32 datapath, [`UNROLL_SWEEP`] order.
    sweep_f32: [f64; UNROLL_SWEEP.len()],
    streaming_closure: f64,
    streaming_compiled: f64,
    streaming_unrolled: f64,
    streaming_f32: f64,
    f32_max_rel_error: f64,
    f32_rtol: f64,
    outputs: u64,
    violations: usize,
}

/// Index of [`DEFAULT_UNROLL`] within [`UNROLL_SWEEP`].
fn default_unroll_slot() -> usize {
    UNROLL_SWEEP
        .iter()
        .position(|&u| u == DEFAULT_UNROLL)
        .expect("DEFAULT_UNROLL is one of the swept factors")
}

impl Measurements {
    /// Compiled U=1 in-core rate — the baseline both speedup gates divide by.
    fn incore_compiled(&self) -> f64 {
        self.sweep_f64[0]
    }

    fn incore_unrolled(&self) -> f64 {
        self.sweep_f64[default_unroll_slot()]
    }

    fn incore_f32(&self) -> f64 {
        self.sweep_f32[default_unroll_slot()]
    }

    fn incore_speedup(&self) -> f64 {
        self.incore_compiled() / self.incore_closure
    }

    fn unrolled_speedup(&self) -> f64 {
        self.incore_unrolled() / self.incore_compiled()
    }

    fn f32_speedup(&self) -> f64 {
        self.incore_f32() / self.incore_compiled()
    }

    fn streaming_speedup(&self) -> f64 {
        self.streaming_compiled / self.streaming_closure
    }

    /// Folds a fresh measurement in, keeping the maximum per
    /// configuration and accumulating validator violations.
    fn keep_max(&mut self, fresh: &Measurements) {
        self.incore_closure = self.incore_closure.max(fresh.incore_closure);
        for k in 0..UNROLL_SWEEP.len() {
            self.sweep_f64[k] = self.sweep_f64[k].max(fresh.sweep_f64[k]);
            self.sweep_f32[k] = self.sweep_f32[k].max(fresh.sweep_f32[k]);
        }
        self.streaming_closure = self.streaming_closure.max(fresh.streaming_closure);
        self.streaming_compiled = self.streaming_compiled.max(fresh.streaming_compiled);
        self.streaming_unrolled = self.streaming_unrolled.max(fresh.streaming_unrolled);
        self.streaming_f32 = self.streaming_f32.max(fresh.streaming_f32);
        self.f32_max_rel_error = self.f32_max_rel_error.max(fresh.f32_max_rel_error);
        self.violations += fresh.violations;
    }

    /// The flat JSON document written to `BENCH_4.json`.
    fn to_json(&self) -> String {
        let mut sweep = String::new();
        for (k, &u) in UNROLL_SWEEP.iter().enumerate() {
            sweep.push_str(&format!(
                "  \"incore_u{u}_f64_elem_per_s\": {:.1},\n  \
                 \"incore_u{u}_f32_elem_per_s\": {:.1},\n",
                self.sweep_f64[k], self.sweep_f32[k],
            ));
        }
        format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"extents\": {:?},\n  \
             \"outputs\": {},\n  \"unroll\": {},\n  \
             \"incore_closure_elem_per_s\": {:.1},\n  \
             \"incore_compiled_elem_per_s\": {:.1},\n  \"incore_speedup\": {:.4},\n  \
             \"incore_unrolled_elem_per_s\": {:.1},\n  \"unrolled_speedup\": {:.4},\n  \
             \"incore_f32_elem_per_s\": {:.1},\n  \"f32_speedup\": {:.4},\n\
             {sweep}  \
             \"streaming_closure_elem_per_s\": {:.1},\n  \
             \"streaming_compiled_elem_per_s\": {:.1},\n  \"streaming_speedup\": {:.4},\n  \
             \"streaming_unrolled_elem_per_s\": {:.1},\n  \
             \"streaming_f32_elem_per_s\": {:.1},\n  \
             \"f32_max_rel_error\": {:.3e},\n  \"f32_rtol\": {:.1e},\n  \
             \"violations\": {}\n}}\n",
            self.name,
            self.extents,
            self.outputs,
            DEFAULT_UNROLL,
            self.incore_closure,
            self.incore_compiled(),
            self.incore_speedup(),
            self.incore_unrolled(),
            self.unrolled_speedup(),
            self.incore_f32(),
            self.f32_speedup(),
            self.streaming_closure,
            self.streaming_compiled,
            self.streaming_speedup(),
            self.streaming_unrolled,
            self.streaming_f32,
            self.f32_max_rel_error,
            self.f32_rtol,
            self.violations,
        )
    }
}

/// Whether a throughput gate missed (retry-worthy; correctness and
/// validator failures are handled separately and never retried). With
/// `report`, prints the verdict of each gate.
fn gate_fails(m: &Measurements, report: bool) -> bool {
    let mut failed = false;
    if m.incore_speedup() < 1.0 {
        if report {
            eprintln!(
                "compiled backend is SLOWER than the closure in-core: {:.2}x",
                m.incore_speedup()
            );
        }
        failed = true;
    }
    if m.name == "DENOISE" && m.unrolled_speedup() < UNROLL_GATE {
        if report {
            eprintln!(
                "unrolled sweep (U={DEFAULT_UNROLL}) holds only {:.2}x of the U=1 compiled \
                 in-core rate, below the {UNROLL_GATE}x gate",
                m.unrolled_speedup()
            );
        }
        failed = true;
    }
    failed
}

fn main() -> ExitCode {
    let (out_path, rest) = match stencil_bench::bench_args("BENCH_4.json") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench4_compiled: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = rest.first().cloned().unwrap_or_else(|| "DENOISE".into());
    let Some(bench) = paper_suite()
        .into_iter()
        .chain(extra_suite())
        .find(|b| b.name() == name)
    else {
        eprintln!("bench4_compiled: unknown benchmark `{name}`");
        return ExitCode::FAILURE;
    };
    let mut m = match measure(&bench) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench4_compiled: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A shared box can deschedule one whole process for long enough to
    // halve its best-of-N numbers, so a failed throughput gate earns a
    // fresh measurement (keeping the per-configuration maximum) before
    // it fails the pipeline; correctness checks never get a retry.
    for attempt in 0..2 {
        if m.violations > 0 || !gate_fails(&m, false) {
            break;
        }
        eprintln!(
            "throughput gate missed; re-measuring (attempt {})",
            attempt + 2
        );
        match measure(&bench) {
            Ok(fresh) => m.keep_max(&fresh),
            Err(e) => {
                eprintln!("bench4_compiled: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, m.to_json()) {
        eprintln!("bench4_compiled: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out_path}: {} {} outputs; in-core {:.1} -> {:.1} Melem/s ({:.2}x), \
         unrolled U={} {:.1} Melem/s ({:.2}x), f32 {:.1} Melem/s ({:.2}x, \
         max rel err {:.2e} <= {:.0e}); streaming {:.1} -> {:.1} Melem/s ({:.2}x)",
        m.name,
        m.outputs,
        m.incore_closure / 1e6,
        m.incore_compiled() / 1e6,
        m.incore_speedup(),
        DEFAULT_UNROLL,
        m.incore_unrolled() / 1e6,
        m.unrolled_speedup(),
        m.incore_f32() / 1e6,
        m.f32_speedup(),
        m.f32_max_rel_error,
        m.f32_rtol,
        m.streaming_closure / 1e6,
        m.streaming_compiled / 1e6,
        m.streaming_speedup(),
    );
    for (k, &u) in UNROLL_SWEEP.iter().enumerate() {
        println!(
            "  U={u}: f64 {:.1} Melem/s, f32 {:.1} Melem/s",
            m.sweep_f64[k] / 1e6,
            m.sweep_f32[k] / 1e6
        );
    }
    if m.violations > 0 {
        eprintln!("runtime bound checks: {} FAILED", m.violations);
        return ExitCode::FAILURE;
    }
    if gate_fails(&m, true) {
        return ExitCode::FAILURE;
    }
    println!("runtime bound checks: all passed");
    ExitCode::SUCCESS
}

/// Plans the benchmark at its full paper extents and measures every
/// configuration, cross-checking every f64 output buffer bit-for-bit,
/// holding the f32 runs to the benchmark's declared tolerance, and
/// validating each run's telemetry.
fn measure(bench: &Benchmark) -> Result<Measurements, Box<dyn std::error::Error>> {
    let extents: Vec<i64> = bench.extents().to_vec();
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;

    let in_idx = plan.input_domain().index()?;
    let mut state = 0x5EED_BA5E_D00Du64;
    let in_vals: Vec<f64> = (0..in_idx.len())
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    let input = InputGrid::new(&in_idx, &in_vals)?;
    let compute = bench.compute_fn();
    let kernel = CompiledKernel::for_benchmark(bench)?
        .ok_or_else(|| format!("{} carries no expression", bench.name()))?;

    let stream_mode = ExecMode::Streaming {
        chunk_rows: Some(64),
    };

    let mut violations = 0usize;
    let mut validate = |report: &MetricsReport| {
        let v = validate_report(report);
        for violation in &v {
            eprintln!("  violation: {violation}");
        }
        violations += v.len();
    };

    // In-core, closure datapath.
    let mut reference: Option<Vec<f64>> = None;
    let mut incore_closure = 0.0f64;
    for _ in 0..RUNS {
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)?;
        let engine = run.report.stages[0]
            .engine
            .clone()
            .ok_or("session produced no in-core stage report")?;
        incore_closure = incore_closure.max(engine.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.engine = Some(engine.metrics());
        validate(&report);
        reference = Some(run.outputs);
    }
    let reference = reference.expect("at least one run");
    let outputs = reference.len() as u64;

    // In-core, compiled row sweep: unroll factors on both datapaths.
    // The f64 runs must reproduce the closure bits exactly at every
    // factor; the f32 runs must stay inside the declared tolerance.
    let mut sweep_f64 = [0.0f64; UNROLL_SWEEP.len()];
    let mut sweep_f32 = [0.0f64; UNROLL_SWEEP.len()];
    let mut f32_max_rel_error = 0.0f64;
    let mut f32_reference: Option<Vec<f64>> = None;
    for (k, &u) in UNROLL_SWEEP.iter().enumerate() {
        for _ in 0..RUNS {
            let run = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .unroll(u)
                .run(&input)?;
            let engine = run.report.stages[0]
                .engine
                .clone()
                .ok_or("session produced no in-core stage report")?;
            sweep_f64[k] = sweep_f64[k].max(engine.throughput());
            let mut report = MetricsReport::new(spec.name());
            report.engine = Some(engine.metrics());
            validate(&report);
            if run.outputs != reference {
                return Err(format!(
                    "compiled in-core outputs (U={u}) diverge from the closure run"
                )
                .into());
            }
        }
        for _ in 0..RUNS {
            let run = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .unroll(u)
                .datapath(Datapath::F32)
                .run(&input)?;
            let engine = run.report.stages[0]
                .engine
                .clone()
                .ok_or("session produced no in-core stage report")?;
            sweep_f32[k] = sweep_f32[k].max(engine.throughput());
            let mut report = MetricsReport::new(spec.name());
            report.engine = Some(engine.metrics());
            validate(&report);
            let err = max_rel_error(&run.outputs, &reference);
            if err > bench.f32_rtol() {
                return Err(format!(
                    "f32 in-core outputs (U={u}) drift {err:.3e} from the f64 reference, \
                     over the declared tolerance {:.1e}",
                    bench.f32_rtol()
                )
                .into());
            }
            f32_max_rel_error = f32_max_rel_error.max(err);
            if u == DEFAULT_UNROLL {
                f32_reference = Some(run.outputs);
            }
        }
    }
    let f32_reference = f32_reference.expect("DEFAULT_UNROLL is swept");

    // Streaming, closure datapath.
    let mut streaming_closure = 0.0f64;
    for _ in 0..RUNS {
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(stream_mode)
            .threads(4)
            .run_streaming(&mut source, &mut sink)?;
        let streamed = session.stages[0]
            .stream
            .clone()
            .ok_or("session produced no streaming stage report")?;
        streaming_closure = streaming_closure.max(streamed.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.stream = Some(streamed.metrics());
        validate(&report);
        if sink.values != reference {
            return Err("closure streaming outputs diverge from the in-core run".into());
        }
    }

    // Streaming, compiled row sweep: U=1 f64, unrolled f64, and f32.
    let mut streaming_compiled = 0.0f64;
    let mut streaming_unrolled = 0.0f64;
    let mut streaming_f32 = 0.0f64;
    for (slot, unroll, datapath) in [
        (&mut streaming_compiled, 1, Datapath::F64),
        (&mut streaming_unrolled, DEFAULT_UNROLL, Datapath::F64),
        (&mut streaming_f32, DEFAULT_UNROLL, Datapath::F32),
    ] {
        for _ in 0..RUNS {
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            let session = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .mode(stream_mode)
                .threads(4)
                .unroll(unroll)
                .datapath(datapath)
                .run_streaming(&mut source, &mut sink)?;
            let streamed = session.stages[0]
                .stream
                .clone()
                .ok_or("session produced no streaming stage report")?;
            *slot = slot.max(streamed.throughput());
            let mut report = MetricsReport::new(spec.name());
            report.stream = Some(streamed.metrics());
            validate(&report);
            let expected = if datapath == Datapath::F32 {
                &f32_reference
            } else {
                &reference
            };
            if &sink.values != expected {
                return Err(format!(
                    "compiled streaming outputs (U={unroll}, {datapath}) diverge from \
                     the in-core run"
                )
                .into());
            }
        }
    }

    Ok(Measurements {
        name: bench.name().to_string(),
        extents,
        incore_closure,
        sweep_f64,
        sweep_f32,
        streaming_closure,
        streaming_compiled,
        streaming_unrolled,
        streaming_f32,
        f32_max_rel_error,
        f32_rtol: bench.f32_rtol(),
        outputs,
        violations,
    })
}
