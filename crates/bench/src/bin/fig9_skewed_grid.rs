//! Regenerates the Fig. 9 experiment of the paper: on a skewed
//! (non-rectangular) iteration domain the reuse distance changes
//! dynamically, and the number of elements stored in each reuse FIFO
//! adapts automatically — handled by the distributed modules with no
//! central controller.

use stencil_core::MemorySystemPlan;
use stencil_kernels::skewed_denoise;
use stencil_sim::Machine;

fn main() {
    let rows: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let width: i64 = 24;
    let spec = skewed_denoise(rows, width).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");

    println!("Fig. 9 — skewed grid ({rows} rows, width {width}, diagonal window)");
    println!(
        "FIFO capacities (worst-case reuse distances): {:?}",
        plan.fifo_capacities()
    );
    println!();

    let mut machine = Machine::new(&plan).expect("machine");
    let mut profiles: Vec<Vec<u64>> = Vec::new();
    while !machine.is_done() {
        machine.step().expect("step");
        profiles.push(machine.fifo_occupancies(0));
    }
    let stats = machine.stats();

    let fifos = plan.fifo_capacities().len();
    println!("{:>8} {:>24}", "cycle", "FIFO occupancies");
    let step = (profiles.len() / 24).max(1);
    for (c, occ) in profiles.iter().enumerate().step_by(step) {
        println!("{:>8} {:>24}", c + 1, format!("{occ:?}"));
    }
    println!();
    for k in 0..fifos {
        let series: Vec<u64> = profiles.iter().map(|p| p[k]).collect();
        let settle = profiles.len() / 3;
        let min = series[settle..].iter().min().copied().unwrap_or(0);
        let max = series[settle..].iter().max().copied().unwrap_or(0);
        println!(
            "FIFO_{k}: capacity {:>5}, steady occupancy range {min}..{max}{}",
            plan.fifo_capacities()[k],
            if max > min {
                "  <- adapts dynamically"
            } else {
                ""
            }
        );
    }
    println!();
    println!(
        "{} outputs in {} cycles, bandwidth-limited: {}, every FIFO within capacity: {}",
        stats.outputs,
        stats.cycles,
        stats.fully_pipelined(),
        stats.chains[0].occupancy_within_capacity()
    );
}
