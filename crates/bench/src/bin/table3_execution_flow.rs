//! Regenerates Table 3 of the paper: the cycle-by-cycle automatic
//! filling of the reuse buffers — per-filter status
//! (f = forwarding, d = discarding, s = stalled, . = starved) and
//! per-FIFO occupancy — observed in the cycle-accurate simulator with
//! **no** central fill controller.
//!
//! The paper's table idealizes away the chain's propagation latency
//! ("the latency among the data streams at different modules is ignored
//! here for demonstration purpose only"); the simulator shows the real
//! staggered timing. Pass a grid width as the first argument to change
//! the scale (default 16; the paper uses 1024).

use stencil_core::MemorySystemPlan;
use stencil_kernels::denoise;
use stencil_sim::Machine;

fn main() {
    let width: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let rows = (width / 2).max(8);
    let bench = denoise();
    let spec = bench.spec_for(&[rows, width]).expect("valid scaled spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");

    println!("Table 3 — execution flow of the DENOISE memory system on a {rows}x{width} grid");
    println!("FIFO capacities: {:?}", plan.fifo_capacities());
    println!();

    let mut machine = Machine::new(&plan).expect("machine");
    // Record through the fill plus a little steady state.
    let fill_window = (3 * width + 32) as usize;
    machine.enable_trace(0, fill_window);
    let stats = machine.run(10_000_000).expect("run");

    let trace = machine.trace(0).expect("trace enabled");
    print!("{trace}");
    println!();
    println!(
        "first output at cycle {} (stream rank of A[2][1] is {}, matching §3.4.1)",
        stats.fill_latency,
        2 * width + 1
    );
    println!(
        "{} outputs in {} cycles, steady II {:.4}, input-bandwidth-limited: {}",
        stats.outputs,
        stats.cycles,
        stats.steady_ii,
        stats.fully_pipelined()
    );
}
