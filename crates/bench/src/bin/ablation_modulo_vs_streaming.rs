//! Ablation of the paper's §6 future-work question: is **data
//! streaming** the only way to exploit non-uniform reuse buffers, or
//! does a *modulo-scheduled* centralized design work too?
//!
//! Three designs per benchmark: \[8\]'s uniform cyclic baseline, the
//! non-uniform **modulo** design (same minimal buffers, central
//! controller), and the non-uniform **streaming** design (this paper).
//! The modulo design matches the streaming one on storage and
//! throughput for rectangular grids — and is simply impossible on the
//! skewed grid of Fig. 9, which the streaming design handles natively.

use stencil_core::{MappingPolicy, MemorySystemPlan, ModuloSchedulePlan, ReuseAnalysis};
use stencil_fpga::{estimate_modulo, estimate_nonuniform, estimate_uniform};
use stencil_kernels::{paper_suite, skewed_denoise};
use stencil_sim::{Machine, ModuloMachine};
use stencil_uniform::multidim_cyclic;

fn main() {
    println!("Ablation — uniform [8] vs non-uniform modulo vs non-uniform streaming");
    println!();
    println!(
        "{:<18} | {:>5} {:>7} {:>5} | {:>5} {:>7} {:>5} | {:>5} {:>7} {:>5}",
        "benchmark", "BRAM", "slices", "CP", "BRAM", "slices", "CP", "BRAM", "slices", "CP"
    );
    println!(
        "{:<18} | {:-^19} | {:-^19} | {:-^19}",
        "", " [8] uniform ", " nu modulo ", " nu streaming "
    );
    for bench in paper_suite() {
        let spec = bench.spec().expect("spec");
        let analysis = ReuseAnalysis::of(&spec).expect("analysis");
        let splan = MemorySystemPlan::generate(&spec).expect("plan");
        let mplan = ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default())
            .expect("rectangular");
        let part = multidim_cyclic(bench.window(), bench.extents());

        let base = estimate_uniform(
            &part,
            bench.window().len(),
            spec.element_bits(),
            spec.iteration_domain(),
            bench.ops(),
        );
        let modulo = estimate_modulo(&mplan, spec.iteration_domain(), bench.ops());
        let ours = estimate_nonuniform(&splan, bench.ops());
        println!(
            "{:<18} | {:>5} {:>7} {:>5.2} | {:>5} {:>7} {:>5.2} | {:>5} {:>7} {:>5.2}",
            bench.name(),
            base.bram18k,
            base.slices(),
            base.cp_ns,
            modulo.bram18k,
            modulo.slices(),
            modulo.cp_ns,
            ours.bram18k,
            ours.slices(),
            ours.cp_ns,
        );
    }

    // Throughput equivalence on a rectangular grid.
    println!();
    let bench = &paper_suite()[0];
    let spec = bench.spec_for(&[24, 32]).expect("spec");
    let analysis = ReuseAnalysis::of(&spec).expect("analysis");
    let splan = MemorySystemPlan::generate(&spec).expect("plan");
    let mplan = ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default())
        .expect("rectangular");
    let s = Machine::new(&splan)
        .expect("m")
        .run(1_000_000)
        .expect("run");
    let m = ModuloMachine::new(&mplan, spec.iteration_domain(), analysis.input_domain())
        .expect("m")
        .run(1_000_000)
        .expect("run");
    println!(
        "rectangular 24x32 DENOISE: streaming {} cycles, modulo {} cycles (identical: {})",
        s.cycles,
        m.cycles,
        s.cycles == m.cycles
    );

    // And the skewed grid: modulo is structurally impossible.
    let skew = skewed_denoise(24, 16).expect("spec");
    let skew_analysis = ReuseAnalysis::of(&skew).expect("analysis");
    let err = ModuloSchedulePlan::try_from_analysis(&skew_analysis, &MappingPolicy::default())
        .expect_err("must reject");
    println!("skewed grid: modulo scheduling rejected ({err})");
    let sstats = Machine::new(&MemorySystemPlan::generate(&skew).expect("plan"))
        .expect("m")
        .run(1_000_000)
        .expect("run");
    println!(
        "skewed grid: streaming handles it natively ({} outputs, {} cycles)",
        sstats.outputs, sstats.cycles
    );
}
