//! Emits `BENCH_3.json`: the streaming-engine telemetry report the CI
//! bench-smoke job publishes and gates on.
//!
//! Runs scaled DENOISE twice — in-core on the parallel tiled engine
//! and out-of-core through the bounded-memory streaming path with
//! 64-row bands — then checks the two agree bit-for-bit, validates
//! every runtime bound against the live counters (including the
//! streaming residency bound `peak_resident <= resident_bound`), and
//! exits nonzero on any violation so a regression fails the pipeline.
//!
//! Usage: `bench3_streaming [--out OUT.json]` (default: `BENCH_3.json`
//! at the workspace root; a leading positional `.json` path is still
//! accepted as OUT).

use std::process::ExitCode;

use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_engine::{ExecMode, InputGrid, Session, SessionKernel, SliceSource, VecSink};
use stencil_kernels::denoise;
use stencil_telemetry::{validate_report, MetricsReport};

fn main() -> ExitCode {
    let out_path = match stencil_bench::bench_args("BENCH_3.json") {
        Ok((out, _)) => out,
        Err(e) => {
            eprintln!("bench3_streaming: {e}");
            return ExitCode::FAILURE;
        }
    };
    match build_report() {
        Ok(report) => {
            let violations = validate_report(&report);
            let json = report.to_json();
            if let Err(e) = std::fs::write(&out_path, &json) {
                eprintln!("bench3_streaming: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            let engine = report.engine.as_ref().expect("engine section");
            let stream = report.stream.as_ref().expect("stream section");
            println!(
                "wrote {out_path}: {} outputs, {:.0} elem/s in-core vs {:.0} elem/s streaming, \
                 peak resident {} of {} values",
                stream.outputs,
                engine.throughput,
                stream.throughput,
                stream.peak_resident,
                stream.resident_bound
            );
            let over_bound = stream.peak_resident > stream.resident_bound;
            if over_bound {
                eprintln!(
                    "residency bound EXCEEDED: peak {} > bound {}",
                    stream.peak_resident, stream.resident_bound
                );
            }
            if violations.is_empty() && !over_bound {
                println!("runtime bound checks: all passed");
                ExitCode::SUCCESS
            } else {
                eprintln!("runtime bound checks: {} FAILED", violations.len());
                for v in &violations {
                    eprintln!("  violation: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench3_streaming: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Plans scaled DENOISE, runs it in-core and streaming, cross-checks
/// the outputs, and returns the combined telemetry report.
fn build_report() -> Result<MetricsReport, Box<dyn std::error::Error>> {
    let bench = denoise();
    let extents = scaled_extents(&bench, 60_000);
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;

    let in_idx = plan.input_domain().index()?;
    let mut state = 0x5EED_BA5E_D00Du64;
    let in_vals: Vec<f64> = (0..in_idx.len())
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    let input = InputGrid::new(&in_idx, &in_vals)?;
    let compute = stencil_kernels::default_compute();
    let run = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .run(&input)?;
    let engine = run.report.stages[0]
        .engine
        .clone()
        .ok_or("session produced no in-core stage report")?;

    let mut source = SliceSource::new(&in_vals);
    let mut sink = VecSink::new();
    let streamed = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(ExecMode::Streaming {
            chunk_rows: Some(64),
        })
        .threads(4)
        .run_streaming(&mut source, &mut sink)?;
    if sink.values != run.outputs {
        return Err("streaming outputs diverged from the in-core engine".into());
    }
    let streamed = streamed.stages[0]
        .stream
        .clone()
        .ok_or("session produced no streaming stage report")?;

    let mut report = MetricsReport::new(spec.name());
    report.engine = Some(engine.metrics());
    report.stream = Some(streamed.metrics());
    Ok(report)
}
