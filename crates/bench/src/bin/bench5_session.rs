//! Emits `BENCH_5.json`: Session-layer throughput and chained-pipeline
//! residency on full-size DENOISE (768x1024), the report the CI
//! bench-smoke job publishes and gates on.
//!
//! Four measurements, best of five runs each:
//!
//! * single-stage in-core throughput through the `Session` builder
//!   (compiled row-sweep backend),
//! * single-stage streaming throughput through the same builder,
//! * a 2-stage temporally chained streaming pipeline
//!   (`Session::then`), whose outputs must match running the stages
//!   sequentially with a fully materialised intermediate grid, and
//!   whose peak residency must stay within the planned per-stage
//!   halo-window bound (Sec. 2.3),
//! * a *heterogeneous* 2-stage chain — the benchmark's kernel feeding
//!   the 9-tap BLUR3X3 box — where each stage erodes by its own halo
//!   and buffers by its own reuse distances. Its per-stage backends
//!   are recorded, its outputs are verified the same way, and its
//!   throughput must hold [`HETERO_TOLERANCE`] of the homogeneous
//!   chain's (the mixed-window pipeline rides the same machinery).
//!
//! If `BENCH_4.json` exists next to the output path (or at the path
//! given as the third argument), the single-stage numbers are gated
//! against its compiled-backend throughputs: the Session layer must
//! retain at least [`BASELINE_TOLERANCE`] of each. The binary exits
//! nonzero on any regression, residency-bound breach, output
//! divergence, or telemetry bound violation, so CI fails loudly.
//!
//! Usage: `bench5_session [--out OUT.json] [BENCHMARK [BASELINE.json]]`
//! (defaults: `BENCH_5.json` at the workspace root, `DENOISE`,
//! workspace-root `BENCH_4.json`; a leading positional `.json` path is
//! still accepted as OUT).

use std::process::ExitCode;

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, Session, SessionKernel, SliceSource, VecSink,
};
use stencil_kernels::{blur3x3, extra_suite, paper_suite, Benchmark};
use stencil_telemetry::{validate_report, MetricsReport};

/// Measurement repetitions per configuration; the best run is kept.
const RUNS: usize = 5;

/// The Session layer must retain at least this fraction of the
/// `BENCH_4.json` compiled-backend throughput. It is the same executor
/// behind a builder, so the true ratio is ~1.0x, but the baseline
/// comes from a different process run and best-of-N throughput jitters
/// by 10-20% between processes on shared hardware; the gate is sized
/// to catch a real regression (an extra copy, a lost parallel path)
/// without tripping on scheduler noise.
const BASELINE_TOLERANCE: f64 = 0.75;

/// The heterogeneous (mixed-window) chain must hold this fraction of
/// the homogeneous 2-stage chain's throughput, measured in the same
/// process. Both pipelines run the same per-stage machinery — the blur
/// stage merely carries a wider window — so a larger gap means the
/// per-stage planning layer added real overhead.
const HETERO_TOLERANCE: f64 = 0.9;

/// The measured Session-layer numbers written to `BENCH_5.json`.
struct Measurements {
    name: String,
    extents: Vec<i64>,
    outputs: u64,
    incore: f64,
    streaming: f64,
    chained: f64,
    chained_stages: usize,
    chained_peak_resident: u64,
    chained_resident_bound: u64,
    hetero: f64,
    hetero_stage_backends: String,
    hetero_peak_resident: u64,
    hetero_resident_bound: u64,
    violations: usize,
}

/// Clamps a rate to something JSON can carry: `{:.1}` would happily
/// interpolate `inf`/`NaN` (a zero-elapsed timer on a coarse clock),
/// which no JSON parser accepts back.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl Measurements {
    /// The flat JSON document written to `BENCH_5.json`.
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"extents\": {:?},\n  \
             \"outputs\": {},\n  \"session_incore_elem_per_s\": {:.1},\n  \
             \"session_streaming_elem_per_s\": {:.1},\n  \
             \"chained_streaming_elem_per_s\": {:.1},\n  \"chained_stages\": {},\n  \
             \"chained_peak_resident\": {},\n  \"chained_resident_bound\": {},\n  \
             \"hetero_chained_elem_per_s\": {:.1},\n  \
             \"hetero_stage_backends\": \"{}\",\n  \
             \"hetero_peak_resident\": {},\n  \"hetero_resident_bound\": {},\n  \
             \"violations\": {}\n}}\n",
            self.name,
            self.extents,
            self.outputs,
            finite_or_zero(self.incore),
            finite_or_zero(self.streaming),
            finite_or_zero(self.chained),
            self.chained_stages,
            self.chained_peak_resident,
            self.chained_resident_bound,
            finite_or_zero(self.hetero),
            self.hetero_stage_backends,
            self.hetero_peak_resident,
            self.hetero_resident_bound,
            self.violations,
        )
    }
}

/// Pulls `"key": <number>` out of a flat JSON document. Good enough
/// for the hand-formatted reports the bench binaries write.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let (out_path, rest) = match stencil_bench::bench_args("BENCH_5.json") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench5_session: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = rest.first().cloned().unwrap_or_else(|| "DENOISE".into());
    let baseline_path = rest
        .get(1)
        .cloned()
        .unwrap_or_else(|| stencil_bench::workspace_path("BENCH_4.json"));
    let Some(bench) = paper_suite()
        .into_iter()
        .chain(extra_suite())
        .find(|b| b.name() == name)
    else {
        eprintln!("bench5_session: unknown benchmark `{name}`");
        return ExitCode::FAILURE;
    };
    // A shared box can deschedule one whole process for long enough to
    // halve its best-of-N numbers, so a failed throughput gate earns a
    // fresh measurement (keeping the per-configuration maximum) before
    // it fails the pipeline; correctness checks never get a retry.
    let mut m = match measure(&bench) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench5_session: {e}");
            return ExitCode::FAILURE;
        }
    };
    for attempt in 0..2 {
        if m.violations > 0 || (!gate_fails(&m, &baseline_path) && !hetero_gate(&m, false)) {
            break;
        }
        eprintln!(
            "throughput gate missed; re-measuring (attempt {})",
            attempt + 2
        );
        match measure(&bench) {
            Ok(again) => {
                m.incore = m.incore.max(again.incore);
                m.streaming = m.streaming.max(again.streaming);
                m.chained = m.chained.max(again.chained);
                m.hetero = m.hetero.max(again.hetero);
                m.violations += again.violations;
            }
            Err(e) => {
                eprintln!("bench5_session: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, m.to_json()) {
        eprintln!("bench5_session: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out_path}: {} {} outputs; session in-core {:.1} Melem/s, \
         streaming {:.1} Melem/s; {}-stage chain {:.1} Melem/s, \
         peak resident {} <= bound {}; hetero chain (+BLUR3X3) {:.1} Melem/s \
         [{}], peak resident {} <= bound {}",
        m.name,
        m.outputs,
        m.incore / 1e6,
        m.streaming / 1e6,
        m.chained_stages,
        m.chained / 1e6,
        m.chained_peak_resident,
        m.chained_resident_bound,
        m.hetero / 1e6,
        m.hetero_stage_backends,
        m.hetero_peak_resident,
        m.hetero_resident_bound,
    );

    let mut failed = false;
    if m.violations > 0 {
        eprintln!("runtime bound checks: {} FAILED", m.violations);
        failed = true;
    }
    if m.chained_peak_resident > m.chained_resident_bound {
        eprintln!(
            "chained peak residency {} exceeds the planned bound {}",
            m.chained_peak_resident, m.chained_resident_bound
        );
        failed = true;
    }
    if m.hetero_peak_resident > m.hetero_resident_bound {
        eprintln!(
            "heterogeneous chain peak residency {} exceeds the planned bound {}",
            m.hetero_peak_resident, m.hetero_resident_bound
        );
        failed = true;
    }
    if baseline_gate(&m, &baseline_path, true) {
        failed = true;
    }
    if hetero_gate(&m, true) {
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("runtime bound checks: all passed");
    ExitCode::SUCCESS
}

/// Whether a retry is worth it: true when the baseline throughput gate
/// currently fails. Quiet so the retry loop can probe without spamming.
fn gate_fails(m: &Measurements, baseline_path: &str) -> bool {
    baseline_gate(m, baseline_path, false)
}

/// Evaluates the heterogeneous-chain gate: the mixed-window pipeline
/// must hold [`HETERO_TOLERANCE`] of the homogeneous chain's
/// throughput. Both numbers come from the same process, so this gate
/// is far less jitter-prone than the cross-process baseline one.
fn hetero_gate(m: &Measurements, report: bool) -> bool {
    if m.chained <= 0.0 || !m.chained.is_finite() || !m.hetero.is_finite() {
        return false;
    }
    let ratio = m.hetero / m.chained;
    if ratio < HETERO_TOLERANCE {
        if report {
            eprintln!(
                "heterogeneous chain throughput fell to {ratio:.2}x of the homogeneous \
                 chain ({:.1} vs {:.1} elem/s)",
                m.hetero, m.chained
            );
        }
        true
    } else {
        if report {
            println!("heterogeneous chain throughput holds {ratio:.2}x of the homogeneous chain");
        }
        false
    }
}

/// Evaluates the `BENCH_4.json` throughput gate, returning true on a
/// regression. With `report` set, prints the verdict for each number;
/// a missing or key-less baseline skips the gate (with a note) rather
/// than failing, so the first pipeline run bootstraps cleanly.
fn baseline_gate(m: &Measurements, baseline_path: &str, report: bool) -> bool {
    let Ok(doc) = std::fs::read_to_string(baseline_path) else {
        if report {
            println!("no baseline at {baseline_path}; skipping the throughput gate");
        }
        return false;
    };
    let mut failed = false;
    for (key, measured, label) in [
        ("incore_compiled_elem_per_s", m.incore, "in-core"),
        ("streaming_compiled_elem_per_s", m.streaming, "streaming"),
    ] {
        let Some(baseline) = json_number(&doc, key) else {
            if report {
                eprintln!("baseline {baseline_path} carries no `{key}`; skipping that gate");
            }
            continue;
        };
        let ratio = measured / baseline;
        if ratio < BASELINE_TOLERANCE {
            if report {
                eprintln!(
                    "session {label} throughput regressed to {ratio:.2}x of the \
                     {baseline_path} baseline ({measured:.1} vs {baseline:.1} elem/s)"
                );
            }
            failed = true;
        } else if report {
            println!("session {label} throughput holds {ratio:.2}x of the baseline");
        }
    }
    failed
}

/// Plans the benchmark at its full paper extents and measures the
/// Session layer single-stage and chained, cross-checking the chained
/// outputs against sequential stage execution and validating every
/// telemetry report.
fn measure(bench: &Benchmark) -> Result<Measurements, Box<dyn std::error::Error>> {
    let extents: Vec<i64> = bench.extents().to_vec();
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;

    let in_idx = plan.input_domain().index()?;
    let mut state = 0x5EED_BA5E_D00Du64;
    let in_vals: Vec<f64> = (0..in_idx.len())
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    let input = InputGrid::new(&in_idx, &in_vals)?;
    let compute = bench.compute_fn();
    let kernel = CompiledKernel::for_benchmark(bench)?
        .ok_or_else(|| format!("{} carries no expression", bench.name()))?;

    let stream_mode = ExecMode::Streaming {
        chunk_rows: Some(64),
    };

    let mut violations = 0usize;
    let mut validate = |report: &MetricsReport| {
        let v = validate_report(report);
        for violation in &v {
            eprintln!("  violation: {violation}");
        }
        violations += v.len();
    };

    // Untimed warm-up: fault the input pages in and let the frequency
    // governor settle before anything is measured, matching the state
    // the `BENCH_4.json` baseline's compiled runs start from.
    Session::new(&plan)
        .kernel(SessionKernel::Compiled(&kernel))
        .run(&input)?;

    // Single-stage in-core through the Session builder.
    let mut reference: Option<Vec<f64>> = None;
    let mut incore = 0.0f64;
    for _ in 0..RUNS {
        let run = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .telemetry(spec.name())
            .run(&input)?;
        let engine = run.report.stages[0]
            .engine
            .as_ref()
            .ok_or("session produced no in-core stage report")?;
        incore = incore.max(engine.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.session = Some(run.report.metrics());
        validate(&report);
        reference = Some(run.outputs);
    }
    let reference = reference.expect("at least one run");
    let outputs = reference.len() as u64;

    // Single-stage streaming through the Session builder.
    let mut streaming = 0.0f64;
    for _ in 0..RUNS {
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(stream_mode)
            .threads(4)
            .telemetry(spec.name())
            .run_streaming(&mut source, &mut sink)?;
        let streamed = session.stages[0]
            .stream
            .as_ref()
            .ok_or("session produced no streaming stage report")?;
        streaming = streaming.max(streamed.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.session = Some(session.metrics());
        validate(&report);
        if sink.values != reference {
            return Err("session streaming outputs diverge from the in-core run".into());
        }
    }

    // Two-stage chained streaming pipeline, verified against running
    // the stages sequentially with a materialised intermediate grid.
    let stage2 = bench.stage();
    let chained_plan = plan.chain_next(stage2.name(), stage2.window())?;
    let mid_idx = chained_plan.input_domain().index()?;
    let mid_input = InputGrid::new(&mid_idx, &reference)?;
    let golden = Session::new(&chained_plan)
        .kernel(SessionKernel::Closure(&compute))
        .run(&mid_input)?
        .outputs;

    let session = Session::new(&plan)
        .kernel(SessionKernel::Compiled(&kernel))
        .mode(stream_mode)
        .threads(4)
        .telemetry(spec.name())
        .then(&stage2)?;
    let chained_resident_bound = session.planned_residency_bound(Some(64))?;
    let chained_stages = session.stage_count();
    let mut chained = 0.0f64;
    let mut chained_peak_resident = 0u64;
    for _ in 0..RUNS {
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let report = session.run_streaming(&mut source, &mut sink)?;
        chained = chained.max(report.throughput());
        chained_peak_resident = chained_peak_resident.max(report.peak_resident);
        let mut metrics = MetricsReport::new(spec.name());
        metrics.session = Some(report.metrics());
        validate(&metrics);
        if sink.values != golden {
            return Err("chained pipeline outputs diverge from sequential stage execution".into());
        }
    }

    // Heterogeneous chain: the benchmark's kernel feeding the 9-tap
    // BLUR3X3 box. The blur stage erodes by its own 3x3 halo and sizes
    // its inter-stage buffer from its own reuse distances; the session
    // records each stage's resolved backend in its report.
    let blur = blur3x3();
    let blur_stage = blur.stage();
    let hetero_plan = plan.chain_next(blur_stage.name(), blur_stage.window())?;
    let hetero_mid_idx = hetero_plan.input_domain().index()?;
    let hetero_mid = InputGrid::new(&hetero_mid_idx, &reference)?;
    let blur_compute = blur.compute_fn();
    let hetero_golden = Session::new(&hetero_plan)
        .kernel(SessionKernel::Closure(&blur_compute))
        .run(&hetero_mid)?
        .outputs;

    let session = Session::new(&plan)
        .kernel(SessionKernel::Compiled(&kernel))
        .mode(stream_mode)
        .threads(4)
        .telemetry(spec.name())
        .then(&blur_stage)?
        // Per-stage tuning: the 3x3 box shares most taps between
        // adjacent outputs, so the unrolled cross-output-CSE sweep
        // recovers the extra arithmetic the 9-tap window costs.
        .stage_unroll(stencil_engine::DEFAULT_UNROLL);
    let hetero_resident_bound = session.planned_residency_bound(Some(64))?;
    let mut hetero = 0.0f64;
    let mut hetero_peak_resident = 0u64;
    let mut hetero_stage_backends = String::new();
    for _ in 0..RUNS {
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let report = session.run_streaming(&mut source, &mut sink)?;
        hetero = hetero.max(report.throughput());
        hetero_peak_resident = hetero_peak_resident.max(report.peak_resident);
        hetero_stage_backends = report
            .stages
            .iter()
            .map(|s| s.backend.as_str())
            .collect::<Vec<_>>()
            .join(",");
        let mut metrics = MetricsReport::new(spec.name());
        metrics.session = Some(report.metrics());
        validate(&metrics);
        if sink.values != hetero_golden {
            return Err(
                "heterogeneous chained outputs diverge from sequential stage execution".into(),
            );
        }
    }

    Ok(Measurements {
        name: bench.name().to_string(),
        extents,
        outputs,
        incore,
        streaming,
        chained,
        chained_stages,
        chained_peak_resident,
        chained_resident_bound,
        hetero,
        hetero_stage_backends,
        hetero_peak_resident,
        hetero_resident_bound,
        violations,
    })
}
