//! Runs the automation flow's final stage (Fig. 11: "Microarchitecture
//! instance" → RTL): generates the complete Verilog design of a
//! benchmark's memory system and writes it to `target/rtl/<name>/`.
//!
//! Usage: `generate_rtl [BENCHMARK] [OUT_DIR]` (default: DENOISE).

use std::path::PathBuf;

use stencil_core::MemorySystemPlan;
use stencil_kernels::find_benchmark;
use stencil_rtl::generate;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "DENOISE".into());
    let out_root = std::env::args()
        .nth(2)
        .map_or_else(|| PathBuf::from("target/rtl"), PathBuf::from);

    let bench = find_benchmark(&which).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{which}`");
        std::process::exit(2);
    });
    let plan = MemorySystemPlan::generate(&bench.spec().expect("spec")).expect("plan");
    let bundle = generate(&plan).expect("RTL generation");

    let problems = bundle.lint();
    assert!(problems.is_empty(), "lint problems: {problems:?}");

    let dir = out_root.join(bench.name().to_lowercase());
    bundle.write_to_dir(&dir).expect("write RTL");
    println!(
        "generated {} Verilog files for {} into {}",
        bundle.files().len(),
        bench.name(),
        dir.display()
    );
    for f in bundle.files() {
        println!("  {:>8} bytes  {}", f.contents.len(), f.name);
    }
    println!();
    println!("top module preview:");
    for line in bundle.files()[0].contents.lines().take(30) {
        println!("  {line}");
    }
}
