//! Emits `BENCH_7.json`: sharded serving front-end throughput, plan
//! cache behaviour, and backpressure under saturation.
//!
//! Three phases:
//!
//! * **Baseline.** Best-of-N single-session in-core throughput with the
//!   exact configuration a pool worker uses (one session thread), so
//!   the pool speedup below compares like with like.
//! * **Saturating stream.** A batch of identical auto-sharded jobs
//!   through a 4-worker [`ServiceFront`] with a residency budget; the
//!   aggregate rate divided by the baseline is the pool speedup.
//! * **Backpressure flood.** A separate depth-2/1-worker front absorbs
//!   a burst of instant submissions; some must be rejected with a
//!   retry-after hint.
//!
//! Three CI gates:
//!
//! * the pool speedup must reach `SERVICE_SPEEDUP_FLOOR` (2.5x at pool
//!   width 4), prorated by the machine's available parallelism — a
//!   1-core container cannot run a pool 4 wide, so the floor scales by
//!   `min(cores, workers) / workers` with the usual best-of-N
//!   tolerance, and a missed gate earns one fresh measurement;
//! * both phases' aggregated telemetry must pass the runtime bound
//!   validator (`ServiceResidency` included) with zero violations;
//! * the plan cache must reach steady state: `tile_plans_built == 0`
//!   (every session is seeded from the shared cache) and at most one
//!   miss per distinct shard geometry — repeat jobs never rebuild.
//!
//! Usage: `bench7_service [--out OUT.json] [BENCHMARK [BASELINE.json]]`
//! (defaults: `BENCH_7.json` at the workspace root, `DENOISE`,
//! workspace-root `BENCH_5.json`; a leading positional `.json` path is
//! still accepted as OUT). When the
//! `BENCH_5.json` baseline exists its single-session in-core rate is
//! reported alongside for cross-process comparison, but the gate uses
//! the in-process baseline.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    ExecMode, InputGrid, JobRequest, ServiceConfig, ServiceFront, Session, ShardPolicy, Submission,
};
use stencil_kernels::{extra_suite, paper_suite, Benchmark};
use stencil_telemetry::validate_report;

/// Required pool-4 aggregate speedup over the single-session baseline
/// at full pool parallelism.
const SERVICE_SPEEDUP_FLOOR: f64 = 2.5;

/// Margin for scheduler noise. Wider than the other bench binaries'
/// 0.75: their gates compare one measured quantity against a stored
/// baseline, while this gate is a *ratio of two fresh measurements* —
/// jitter in the single-session denominator (best-of-3 spikes on a
/// shared box) compounds with jitter in the aggregate numerator.
const BASELINE_TOLERANCE: f64 = 0.6;

/// Worker pool width of the measured front.
const WORKERS: usize = 4;

/// Jobs in the saturating stream.
const JOBS: usize = 12;

/// The measured serving numbers written to `BENCH_7.json`.
struct Measurements {
    name: String,
    extents: Vec<i64>,
    jobs: u64,
    workers: u64,
    outputs: u64,
    single: f64,
    aggregate: f64,
    speedup: f64,
    peak_resident: u64,
    admitted_bound_peak: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    tile_plans_built: u64,
    rejections_observed: u64,
    violations: usize,
}

/// Clamps a rate to something JSON can carry: `{:.1}` would happily
/// interpolate `inf`/`NaN` (a zero-elapsed timer on a coarse clock),
/// which no JSON parser accepts back.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl Measurements {
    /// The flat JSON document written to `BENCH_7.json`.
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"extents\": {:?},\n  \
             \"jobs\": {},\n  \"workers\": {},\n  \"outputs\": {},\n  \
             \"single_session_elem_per_s\": {:.1},\n  \
             \"service_aggregate_elem_per_s\": {:.1},\n  \
             \"service_speedup\": {:.3},\n  \
             \"service_peak_resident\": {},\n  \
             \"service_admitted_bound_peak\": {},\n  \
             \"plan_cache_hits\": {},\n  \"plan_cache_misses\": {},\n  \
             \"tile_plans_built\": {},\n  \"rejections_observed\": {},\n  \
             \"violations\": {}\n}}\n",
            self.name,
            self.extents,
            self.jobs,
            self.workers,
            self.outputs,
            finite_or_zero(self.single),
            finite_or_zero(self.aggregate),
            finite_or_zero(self.speedup),
            self.peak_resident,
            self.admitted_bound_peak,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.tile_plans_built,
            self.rejections_observed,
            self.violations,
        )
    }
}

/// Pulls `"key": <number>` out of a flat JSON document. Good enough
/// for the hand-formatted reports the bench binaries write.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Deterministic pseudo-random input values in rank order.
fn input_values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect()
}

fn measure(bench: &Benchmark) -> Result<Measurements, Box<dyn std::error::Error>> {
    let extents = bench.extents().to_vec();
    let n: i64 = extents.iter().product();
    let input = Arc::new(input_values(usize::try_from(n)?, 0x5EED_BA5E_D00D));

    // Phase 1: single-session baseline, one session thread — the exact
    // worker configuration, so the speedup isolates pool parallelism.
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;
    let idx = plan.input_domain().index()?;
    let grid = InputGrid::new(&idx, &input)?;
    let stage = bench.stage();
    // Wall-clock rate, not the run report's kernel-only rate: the
    // service's aggregate below is wall-clock (it includes session
    // setup, validation, and merge), so the baseline must be too.
    let mut single = 0.0f64;
    let mut reference: Vec<f64> = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        let session = Session::build(&plan, &stage)?.threads(1);
        let run = session.run(&grid)?;
        single = single.max(stencil_engine::finite_throughput(
            run.outputs.len() as u64,
            t0.elapsed(),
        ));
        reference = run.outputs;
    }

    // Phase 2: saturating stream through the 4-worker front. The
    // budget holds half the batch, so admission control is active, and
    // every job auto-shards to the pool width.
    let single_bound = idx.len();

    // Untimed warm-up batch: fault pages in, spin the pool up, and let
    // the frequency governor settle before anything is measured —
    // the same role as the other bench binaries' warm-up runs.
    {
        let warm = ServiceFront::new(ServiceConfig {
            workers: WORKERS,
            queue_depth: JOBS * WORKERS,
            memory_budget: 0,
            session_threads: 1,
        });
        let warm_req = JobRequest {
            benchmark: bench.clone(),
            extents: Some(extents.clone()),
            mode: ExecMode::InCore,
            shards: ShardPolicy::Auto,
            input: Arc::clone(&input).into(),
        };
        for _ in 0..2 {
            let _ = warm.submit(&warm_req)?;
        }
        let _ = warm.finish();
    }
    let front = ServiceFront::new(ServiceConfig {
        workers: WORKERS,
        queue_depth: JOBS * WORKERS,
        memory_budget: single_bound.saturating_mul(JOBS as u64).saturating_div(2)
            + single_bound * 2,
        session_threads: 1,
    });
    let req = JobRequest {
        benchmark: bench.clone(),
        extents: Some(extents.clone()),
        mode: ExecMode::InCore,
        shards: ShardPolicy::Auto,
        input: Arc::clone(&input).into(),
    };
    let started = Instant::now();
    let mut submitted = 0usize;
    while submitted < JOBS {
        match front.submit(&req)? {
            Submission::Admitted(_) => submitted += 1,
            Submission::Rejected(rej) => std::thread::sleep(rej.retry_after),
        }
    }
    let outcome = front.finish();
    let elapsed = started.elapsed();
    for job in &outcome.jobs {
        if let Some(e) = &job.error {
            return Err(format!("{}: {e}", job.label).into());
        }
        if job.outputs != reference {
            return Err(format!(
                "{}: sharded service outputs diverge from the single session",
                job.label
            )
            .into());
        }
    }
    let report = outcome.report(bench.name());
    let mut violations = 0usize;
    for v in validate_report(&report) {
        eprintln!("  violation: {v}");
        violations += 1;
    }
    let m = outcome.metrics;
    let aggregate = stencil_engine::finite_throughput(m.outputs_produced, elapsed);

    // Phase 3: backpressure flood on a deliberately tiny front. Small
    // grids keep it fast; the burst must overflow a depth-2 queue.
    let flood_extents = vec![96i64, 64];
    let flood_input = Arc::new(input_values(96 * 64, 0xF100D));
    let flood = ServiceFront::new(ServiceConfig {
        workers: 1,
        queue_depth: 2,
        memory_budget: 0,
        session_threads: 1,
    });
    let flood_req = JobRequest {
        benchmark: bench.clone(),
        extents: Some(flood_extents),
        mode: ExecMode::InCore,
        shards: ShardPolicy::Whole,
        input: flood_input.into(),
    };
    for _ in 0..64 {
        let _ = flood.submit(&flood_req)?;
    }
    let flood_outcome = flood.finish();
    for v in validate_report(&flood_outcome.report("flood")) {
        eprintln!("  violation (flood): {v}");
        violations += 1;
    }
    let rejections_observed = flood_outcome.metrics.jobs_rejected;

    Ok(Measurements {
        name: bench.name().to_string(),
        extents,
        jobs: JOBS as u64,
        workers: WORKERS as u64,
        outputs: m.outputs_produced,
        single,
        aggregate,
        speedup: if single > 0.0 {
            aggregate / single
        } else {
            0.0
        },
        peak_resident: m.peak_resident,
        admitted_bound_peak: m.admitted_bound_peak,
        plan_cache_hits: m.plan_cache_hits,
        plan_cache_misses: m.plan_cache_misses,
        tile_plans_built: m.tile_plans_built,
        rejections_observed,
        violations,
    })
}

/// The speedup floor prorated to the machine: a pool cannot run wider
/// than the cores it has, so the 2.5x-at-4-workers requirement scales
/// by `min(cores, workers) / workers`, with the best-of-N tolerance.
fn speedup_floor() -> f64 {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let width = cores.min(WORKERS) as f64 / WORKERS as f64;
    SERVICE_SPEEDUP_FLOOR * width * BASELINE_TOLERANCE
}

/// The hard structural gates (no retry): zero validator violations,
/// observable backpressure, and a steady-state plan cache.
fn structural_failures(m: &Measurements) -> Vec<String> {
    let mut fails = Vec::new();
    if m.violations > 0 {
        fails.push(format!("{} validator violation(s)", m.violations));
    }
    if m.rejections_observed == 0 {
        fails.push("flooded depth-2 queue produced no backpressure rejections".into());
    }
    if m.tile_plans_built > 0 {
        fails.push(format!(
            "{} tile plan(s) built inside sessions; the shared cache should seed them all",
            m.tile_plans_built
        ));
    }
    // Auto-sharding one geometry yields at most two distinct band
    // heights (floor and ceil of the even split); repeats must hit.
    if m.plan_cache_misses > 2 {
        fails.push(format!(
            "{} plan-cache misses for a single repeated geometry (steady state is <= 2)",
            m.plan_cache_misses
        ));
    }
    fails
}

fn main() -> ExitCode {
    let (out_path, rest) = match stencil_bench::bench_args("BENCH_7.json") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench7_service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = rest.first().cloned().unwrap_or_else(|| "DENOISE".into());
    let baseline_path = rest
        .get(1)
        .cloned()
        .unwrap_or_else(|| stencil_bench::workspace_path("BENCH_5.json"));
    let Some(bench) = paper_suite()
        .into_iter()
        .chain(extra_suite())
        .find(|b| b.name() == name)
    else {
        eprintln!("bench7_service: unknown benchmark `{name}`");
        return ExitCode::FAILURE;
    };
    // A shared box can deschedule one whole process for long enough to
    // halve its best-of-N numbers, so a failed speedup gate earns a
    // fresh measurement (keeping the better ratio) before it fails the
    // pipeline; correctness and structural checks never get a retry.
    let mut m = match measure(&bench) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench7_service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let floor = speedup_floor();
    for attempt in 0..2 {
        if !structural_failures(&m).is_empty() || m.speedup >= floor {
            break;
        }
        eprintln!(
            "speedup gate missed ({:.3} < {floor:.3}); re-measuring (attempt {})",
            m.speedup,
            attempt + 2
        );
        match measure(&bench) {
            Ok(again) => {
                if again.speedup > m.speedup {
                    m = again;
                } else {
                    m.violations += again.violations;
                }
            }
            Err(e) => {
                eprintln!("bench7_service: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, m.to_json()) {
        eprintln!("bench7_service: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out_path}: {} x{} jobs on {} workers; single {:.1} Melem/s, \
         aggregate {:.1} Melem/s ({:.2}x), cache {}H/{}M, {} rejection(s) under flood",
        m.name,
        m.jobs,
        m.workers,
        m.single / 1e6,
        m.aggregate / 1e6,
        m.speedup,
        m.plan_cache_hits,
        m.plan_cache_misses,
        m.rejections_observed
    );
    if let Ok(doc) = std::fs::read_to_string(&baseline_path) {
        if let Some(b5) = json_number(&doc, "session_incore_elem_per_s") {
            println!(
                "cross-process: aggregate is {:.2}x the {baseline_path} in-core session",
                m.aggregate / b5
            );
        }
    } else {
        println!("no baseline at {baseline_path}; skipping the cross-process comparison");
    }
    let fails = structural_failures(&m);
    for f in &fails {
        eprintln!("bench7_service: gate FAILED: {f}");
    }
    if m.speedup < floor {
        eprintln!(
            "bench7_service: gate FAILED: pool speedup {:.3} below the prorated floor {floor:.3}",
            m.speedup
        );
        return ExitCode::FAILURE;
    }
    if fails.is_empty() {
        println!("all serving gates passed (speedup floor {floor:.3})");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
