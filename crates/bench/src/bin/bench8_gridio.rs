//! Emits `BENCH_8.json`: the zero-copy grid-I/O telemetry report the
//! CI bench-smoke job publishes and gates on.
//!
//! Packs DENOISE 768x1024 into a temporary `.sgrid` file, then:
//!
//! 1. **Ingestion microbench** — scans the full payload three ways:
//!    per-value `read_exact` on an unbuffered file (the pre-fix
//!    [`ReadSource`] behaviour), the bulk-reading buffered
//!    [`ReadSource`], and the memory-mapped [`MmapSource`]. Gates:
//!    mmap ingestion at least 2x the per-value reader *and* faster
//!    than the buffered reader.
//! 2. **End-to-end equivalence** — streams the same kernel from the
//!    in-memory slice, from [`MmapSource`], and from [`ReadSource`];
//!    all three must produce bit-identical outputs, and the mapped
//!    run's grid-io telemetry must record **zero** payload copies.
//! 3. **Validator** — every runtime bound check on the combined
//!    report must pass.
//!
//! Usage: `bench8_gridio [--out OUT.json]` (default: `BENCH_8.json`
//! at the workspace root; a leading positional `.json` path is still
//! accepted as OUT).

use std::io::{Read, Seek, SeekFrom};
use std::process::ExitCode;
use std::time::Instant;

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    EngineError, ExecMode, MappedGrid, MmapSource, ReadSource, RowSource, Session, SessionKernel,
    SliceSource, VecSink,
};
use stencil_kernels::denoise;
use stencil_telemetry::{validate_report, MetricsReport};

/// DENOISE's paper problem size: the ISSUE-mandated gate geometry.
const EXTENTS: [i64; 2] = [768, 1024];

/// Values pulled per `fill_row` call during the ingestion scans.
const SCAN_CHUNK: usize = 4096;

/// Best-of iterations per ingestion method, to shed scheduler noise.
const SCAN_ITERS: usize = 3;

fn main() -> ExitCode {
    let out_path = match stencil_bench::bench_args("BENCH_8.json") {
        Ok((out, _)) => out,
        Err(e) => {
            eprintln!("bench8_gridio: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_bench(&out_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench8_gridio: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The pre-fix `ReadSource` behaviour, preserved as the baseline under
/// test: one `read_exact` syscall per value on an unbuffered file.
struct PerValueSource {
    file: std::fs::File,
}

impl RowSource for PerValueSource {
    fn fill_row(&mut self, len: usize, buf: &mut Vec<f64>) -> Result<(), EngineError> {
        let mut bytes = [0u8; 8];
        for _ in 0..len {
            self.file
                .read_exact(&mut bytes)
                .map_err(|e| EngineError::Source {
                    detail: format!("read failed: {e}"),
                })?;
            buf.push(f64::from_le_bytes(bytes));
        }
        Ok(())
    }
}

/// Drains `total` values from `source` in `SCAN_CHUNK` pulls and
/// returns (elapsed seconds, checksum). The checksum both defeats
/// dead-code elimination and cross-checks the three scan paths.
fn scan(source: &mut dyn RowSource, total: usize) -> Result<(f64, f64), EngineError> {
    let mut buf = Vec::with_capacity(SCAN_CHUNK);
    let mut left = total;
    let mut sum = 0.0f64;
    let start = Instant::now();
    while left > 0 {
        let n = left.min(SCAN_CHUNK);
        buf.clear();
        source.fill_row(n, &mut buf)?;
        sum += buf.iter().sum::<f64>();
        left -= n;
    }
    Ok((start.elapsed().as_secs_f64(), sum))
}

/// A buffered [`ReadSource`] positioned at the payload of `path`.
fn buffered_payload_source(
    path: &std::path::Path,
    payload_offset: u64,
) -> Result<ReadSource<std::io::BufReader<std::fs::File>>, Box<dyn std::error::Error>> {
    let mut file = std::fs::File::open(path)?;
    file.seek(SeekFrom::Start(payload_offset))?;
    Ok(ReadSource::new(std::io::BufReader::new(file)))
}

#[allow(clippy::too_many_lines)]
fn run_bench(out_path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let bench = denoise();
    let extents = EXTENTS.to_vec();
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;
    let in_idx = plan.input_domain().index()?;
    let bb = in_idx
        .bounding_box()
        .ok_or("empty input domain for DENOISE")?;
    let grid_extents: Vec<u64> = bb.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).collect();
    let total = usize::try_from(in_idx.len())?;

    // Pack the deterministic input into a temporary .sgrid file.
    let mut state = 0x5EED_BA5E_D00Du64;
    let in_vals: Vec<f64> = (0..total)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    let grid_path =
        std::env::temp_dir().join(format!("bench8_gridio_{}.sgrid", std::process::id()));
    stencil_engine::pack_grid(&grid_path, &grid_extents, &in_vals)?;
    let result = gated_run(&grid_path, &plan, &spec, &in_vals, total, out_path);
    let _ = std::fs::remove_file(&grid_path);
    result
}

/// Everything that needs the packed grid file; split out so `run_bench`
/// can delete the temporary regardless of outcome.
#[allow(clippy::too_many_lines)]
fn gated_run(
    grid_path: &std::path::Path,
    plan: &MemorySystemPlan,
    spec: &stencil_core::StencilSpec,
    in_vals: &[f64],
    total: usize,
    out_path: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let header = stencil_engine::inspect_grid(grid_path)?;
    let payload_offset = header.payload_offset() as u64;

    // --- 1. Ingestion microbench: best-of-N full-payload scans. ---
    let mut per_value = f64::INFINITY;
    let mut buffered = f64::INFINITY;
    let mut mapped = f64::INFINITY;
    let mut checksum = None;
    for _ in 0..SCAN_ITERS {
        let mut file = std::fs::File::open(grid_path)?;
        file.seek(SeekFrom::Start(payload_offset))?;
        let (t, sum) = scan(&mut PerValueSource { file }, total)?;
        per_value = per_value.min(t);
        let reference = *checksum.get_or_insert(sum);
        if sum != reference {
            return Err("per-value scan checksum diverged".into());
        }

        let mut src = buffered_payload_source(grid_path, payload_offset)?;
        let (t, sum) = scan(&mut src, total)?;
        buffered = buffered.min(t);
        if sum != reference {
            return Err("buffered scan checksum diverged".into());
        }

        let mut src = MmapSource::open(grid_path)?;
        let (t, sum) = scan(&mut src, total)?;
        mapped = mapped.min(t);
        if sum != reference {
            return Err("mmap scan checksum diverged".into());
        }
    }
    let mib = (total * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "ingestion of {total} values ({mib:.1} MiB): per-value {:.1} MiB/s, \
         buffered {:.1} MiB/s, mmap {:.1} MiB/s",
        mib / per_value,
        mib / buffered,
        mib / mapped,
    );

    // --- 2. End-to-end: three sources, bit-identical outputs. ---
    let compute = stencil_kernels::default_compute();
    let streaming = ExecMode::Streaming {
        chunk_rows: Some(64),
    };

    let mut source = SliceSource::new(in_vals);
    let mut sink = VecSink::new();
    Session::new(plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(streaming)
        .threads(4)
        .run_streaming(&mut source, &mut sink)?;
    let reference_out = sink.values;

    let grid = MappedGrid::open(grid_path)?;
    let mut source = MmapSource::from_grid(grid);
    let mut sink = VecSink::new();
    let mapped_run = Session::new(plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(streaming)
        .threads(4)
        .run_streaming(&mut source, &mut sink)?;
    if sink.values != reference_out {
        return Err("mmap-backed streaming diverged from the in-memory run".into());
    }

    let mut source = buffered_payload_source(grid_path, payload_offset)?;
    let mut sink = VecSink::new();
    let read_run = Session::new(plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(streaming)
        .threads(4)
        .run_streaming(&mut source, &mut sink)?;
    if sink.values != reference_out {
        return Err("ReadSource streaming diverged from the in-memory run".into());
    }
    println!(
        "end-to-end: {} outputs bit-identical across in-memory, mmap, and buffered-read runs",
        reference_out.len()
    );

    let io = mapped_run
        .grid_io
        .clone()
        .ok_or("mapped run reported no grid-io block")?;
    println!("{io}");
    let read_io = read_run
        .grid_io
        .clone()
        .ok_or("read run reported no grid-io block")?;

    // --- 3. Report + validator. ---
    let stream_report = mapped_run.stages[0]
        .stream
        .clone()
        .ok_or("mapped run produced no streaming stage report")?;
    let mut report = MetricsReport::new(spec.name());
    report.stream = Some(stream_report.metrics());
    report.session = Some(mapped_run.metrics());
    let violations = validate_report(&report);
    let json = report.to_json();
    std::fs::write(out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    // --- Gates. ---
    let mut failures = Vec::new();
    if mapped >= per_value / 2.0 {
        failures.push(format!(
            "mmap ingestion ({:.4}s) is not 2x the per-value reader ({:.4}s)",
            mapped, per_value
        ));
    }
    if mapped >= buffered {
        failures.push(format!(
            "mmap ingestion ({:.4}s) is not faster than the buffered reader ({:.4}s)",
            mapped, buffered
        ));
    }
    if !io.zero_copy() {
        failures.push(format!(
            "mapped run copied payload values: {} copied, {} mapped",
            io.values_copied, io.values_mapped
        ));
    }
    if !io.sink_finalized || !read_io.sink_finalized {
        failures.push("a streaming sink was not finalized".into());
    }
    if read_io.values_copied as usize != total {
        failures.push(format!(
            "read run should copy every value: {} of {total}",
            read_io.values_copied
        ));
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("  violation: {v}");
        }
        failures.push(format!("{} runtime bound violation(s)", violations.len()));
    }
    if failures.is_empty() {
        println!(
            "gates: all passed (mmap {:.1}x per-value, {:.1}x buffered, zero copies)",
            per_value / mapped,
            buffered / mapped
        );
        Ok(())
    } else {
        Err(failures.join("; ").into())
    }
}
