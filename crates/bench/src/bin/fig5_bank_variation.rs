//! Regenerates Fig. 5 of the paper: under linear cyclic partitioning
//! \[5\], the number of banks needed for the constant 5-point DENOISE
//! window varies with the row size of the data grid (5–8 in the paper's
//! sweep), while the non-uniform design always needs 4.

use stencil_kernels::denoise;
use stencil_uniform::{bank_count_vs_row_size, rescheduled_cyclic, DEFAULT_LOOKAHEAD};

fn main() {
    let bench = denoise();
    let window = bench.window().to_vec();
    let rows = bench.extents()[0];

    println!("Fig. 5 — bank count of [5] vs grid row size (window fixed: 5-point)");
    println!();
    println!(
        "{:>9} {:>10} {:>10} {:>12}",
        "row size", "[5] banks", "[7] banks", "ours (banks)"
    );
    let sweep = bank_count_vs_row_size(&window, rows, 1000..=1056);
    let mut min = usize::MAX;
    let mut max = 0;
    for (w, banks) in &sweep {
        let resched = rescheduled_cyclic(&window, &[rows, *w], DEFAULT_LOOKAHEAD);
        println!("{w:>9} {banks:>10} {:>10} {:>12}", resched.banks, 4);
        min = min.min(*banks);
        max = max.max(*banks);
    }
    println!();
    println!("[5] bank count range over the sweep: {min}..{max} (paper: 5..8)");
    println!("ours: constant n-1 = 4, independent of the grid");
}
