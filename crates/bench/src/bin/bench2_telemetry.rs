//! Emits `BENCH_2.json`: the instrumented-DENOISE telemetry report the
//! CI bench-smoke job publishes and gates on.
//!
//! Runs the DENOISE benchmark twice — cycle-accurately on the machine
//! with occupancy sampling enabled, and natively on the parallel tiled
//! engine — then validates every paper bound against the live counters
//! (Eq. 2 capacity tightness, the Section 2.3 minimum-buffer bound,
//! II = 1, stream conservation) and that every number in the report is
//! finite. Exits nonzero on any violation, so a regression in either
//! substrate fails the pipeline.
//!
//! Usage: `bench2_telemetry [--out OUT.json]` (default: `BENCH_2.json`
//! at the workspace root; a leading positional `.json` path is still
//! accepted as OUT).

use std::process::ExitCode;

use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_engine::{InputGrid, Session, SessionKernel};
use stencil_kernels::denoise;
use stencil_sim::Machine;
use stencil_telemetry::{validate_report, MetricsReport};

fn main() -> ExitCode {
    let out_path = match stencil_bench::bench_args("BENCH_2.json") {
        Ok((out, _)) => out,
        Err(e) => {
            eprintln!("bench2_telemetry: {e}");
            return ExitCode::FAILURE;
        }
    };
    match build_report() {
        Ok(report) => {
            let violations = validate_report(&report);
            let json = report.to_json();
            if let Err(e) = std::fs::write(&out_path, &json) {
                eprintln!("bench2_telemetry: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            let machine = report.machine.as_ref().expect("machine section");
            let engine = report.engine.as_ref().expect("engine section");
            println!(
                "wrote {out_path}: {} outputs in {} cycles (machine), {:.0} elem/s (engine)",
                machine.outputs, machine.cycles, engine.throughput
            );
            if violations.is_empty() {
                println!("runtime bound checks: all passed");
                ExitCode::SUCCESS
            } else {
                eprintln!("runtime bound checks: {} FAILED", violations.len());
                for v in &violations {
                    eprintln!("  violation: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench2_telemetry: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Plans, simulates, and engine-executes scaled DENOISE, returning the
/// combined telemetry report.
fn build_report() -> Result<MetricsReport, Box<dyn std::error::Error>> {
    let bench = denoise();
    let extents = scaled_extents(&bench, 60_000);
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;

    let mut machine = Machine::new(&plan)?;
    machine.enable_occupancy_sampling();
    machine.run(1_u64 << 34)?;

    let in_idx = plan.input_domain().index()?;
    let mut state = 0x5EED_BA5E_D00Du64;
    let in_vals: Vec<f64> = (0..in_idx.len())
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    let input = InputGrid::new(&in_idx, &in_vals)?;
    let compute = stencil_kernels::default_compute();
    let run = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .run(&input)?;
    let engine = run.report.stages[0]
        .engine
        .clone()
        .ok_or("session produced no in-core stage report")?;

    let mut report = MetricsReport::new(spec.name());
    report.machine = Some(machine.metrics());
    report.engine = Some(engine.metrics());
    Ok(report)
}
