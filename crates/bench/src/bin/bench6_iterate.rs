//! Emits `BENCH_6.json`: iterated time-stepping throughput, residency,
//! and convergence on full-size DENOISE (768x1024), the report the CI
//! bench-smoke job publishes and gates on.
//!
//! Four measurements, best of five runs each where timed:
//!
//! * a T-step in-core ring through `Session::iterate`, bit-identical
//!   to folding the grid through T materialised single-step runs,
//! * the same ring streaming at a 64-row chunk, whose peak residency
//!   must stay within the planned per-step halo-window bound
//!   (Sec. 2.3 applied to every coupled step),
//! * `Session::iterate_until` on a contractive Jacobi-style
//!   relaxation, which must converge well inside its step budget with
//!   the step count recorded in telemetry,
//! * every telemetry report re-validated by the runtime bound checker.
//!
//! If `BENCH_5.json` exists next to the output path (or at the path
//! given as the third argument), the streaming ring is gated against
//! the equivalent depth-T chain extrapolated from its 2-stage chained
//! baseline: per-stage work rate `chained * stages`, divided by the
//! ring depth, scaled by [`BASELINE_TOLERANCE`]. The binary exits
//! nonzero on any regression, residency-bound breach, output
//! divergence, missed convergence, or telemetry bound violation, so CI
//! fails loudly.
//!
//! Usage: `bench6_iterate [--out OUT.json] [BENCHMARK [BASELINE.json]]`
//! (defaults: `BENCH_6.json` at the workspace root, `DENOISE`,
//! workspace-root `BENCH_5.json`; a leading positional `.json` path is
//! still accepted as OUT).

use std::process::ExitCode;

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, Session, SessionKernel, SliceSource, VecSink,
};
use stencil_kernels::{extra_suite, paper_suite, Benchmark};
use stencil_telemetry::{validate_report, MetricsReport};

/// Measurement repetitions per configuration; the best run is kept.
const RUNS: usize = 5;

/// Time steps in the fixed-count ring.
const STEPS: usize = 8;

/// The streaming ring must retain at least this fraction of the
/// depth-T chain rate extrapolated from the `BENCH_5.json` 2-stage
/// chained baseline. The ring is the same coupled-stage executor, and
/// domain erosion even shaves a little work off the later steps, so
/// the true ratio sits at or above 1.0x; the margin absorbs the
/// 10-20% best-of-N jitter between processes on shared hardware.
const BASELINE_TOLERANCE: f64 = 0.9;

/// The measured iterate-ring numbers written to `BENCH_6.json`.
struct Measurements {
    name: String,
    extents: Vec<i64>,
    steps: usize,
    outputs: u64,
    incore: f64,
    streaming: f64,
    peak_resident: u64,
    resident_bound: u64,
    converge_steps: u64,
    converge_budget: u64,
    converged: bool,
    final_delta: f64,
    violations: usize,
}

/// Clamps a rate to something JSON can carry: `{:.1}`/`{:.6e}` would
/// happily interpolate `inf`/`NaN` (a zero-elapsed timer on a coarse
/// clock, or a diverged delta), which no JSON parser accepts back.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl Measurements {
    /// The flat JSON document written to `BENCH_6.json`.
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"{}\",\n  \"extents\": {:?},\n  \
             \"iterate_steps\": {},\n  \"outputs\": {},\n  \
             \"iterate_incore_elem_per_s\": {:.1},\n  \
             \"iterate_streaming_elem_per_s\": {:.1},\n  \
             \"iterate_peak_resident\": {},\n  \"iterate_resident_bound\": {},\n  \
             \"converge_steps\": {},\n  \"converge_budget\": {},\n  \
             \"converged\": {},\n  \"final_delta\": {:.6e},\n  \
             \"violations\": {}\n}}\n",
            self.name,
            self.extents,
            self.steps,
            self.outputs,
            finite_or_zero(self.incore),
            finite_or_zero(self.streaming),
            self.peak_resident,
            self.resident_bound,
            self.converge_steps,
            self.converge_budget,
            self.converged,
            finite_or_zero(self.final_delta),
            self.violations,
        )
    }
}

/// Pulls `"key": <number>` out of a flat JSON document. Good enough
/// for the hand-formatted reports the bench binaries write.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let (out_path, rest) = match stencil_bench::bench_args("BENCH_6.json") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench6_iterate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = rest.first().cloned().unwrap_or_else(|| "DENOISE".into());
    let baseline_path = rest
        .get(1)
        .cloned()
        .unwrap_or_else(|| stencil_bench::workspace_path("BENCH_5.json"));
    let Some(bench) = paper_suite()
        .into_iter()
        .chain(extra_suite())
        .find(|b| b.name() == name)
    else {
        eprintln!("bench6_iterate: unknown benchmark `{name}`");
        return ExitCode::FAILURE;
    };
    // A shared box can deschedule one whole process for long enough to
    // halve its best-of-N numbers, so a failed throughput gate earns a
    // fresh measurement (keeping the per-configuration maximum) before
    // it fails the pipeline; correctness checks never get a retry.
    let mut m = match measure(&bench) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench6_iterate: {e}");
            return ExitCode::FAILURE;
        }
    };
    for attempt in 0..2 {
        if m.violations > 0 || !gate_fails(&m, &baseline_path) {
            break;
        }
        eprintln!(
            "throughput gate missed; re-measuring (attempt {})",
            attempt + 2
        );
        match measure(&bench) {
            Ok(again) => {
                m.incore = m.incore.max(again.incore);
                m.streaming = m.streaming.max(again.streaming);
                m.violations += again.violations;
            }
            Err(e) => {
                eprintln!("bench6_iterate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, m.to_json()) {
        eprintln!("bench6_iterate: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out_path}: {} T={} ring, {} outputs; iterate in-core {:.1} Melem/s, \
         streaming {:.1} Melem/s, peak resident {} <= bound {}; \
         converged after {} of {} step(s) (delta {:.3e})",
        m.name,
        m.steps,
        m.outputs,
        m.incore / 1e6,
        m.streaming / 1e6,
        m.peak_resident,
        m.resident_bound,
        m.converge_steps,
        m.converge_budget,
        m.final_delta,
    );

    let mut failed = false;
    if m.violations > 0 {
        eprintln!("runtime bound checks: {} FAILED", m.violations);
        failed = true;
    }
    if m.peak_resident > m.resident_bound {
        eprintln!(
            "iterate peak residency {} exceeds the planned bound {}",
            m.peak_resident, m.resident_bound
        );
        failed = true;
    }
    if !m.converged {
        eprintln!(
            "iterate_until failed to converge within {} step(s) (final delta {:.3e})",
            m.converge_budget, m.final_delta
        );
        failed = true;
    }
    if baseline_gate(&m, &baseline_path, true) {
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    println!("runtime bound checks: all passed");
    ExitCode::SUCCESS
}

/// Whether a retry is worth it: true when the baseline throughput gate
/// currently fails. Quiet so the retry loop can probe without spamming.
fn gate_fails(m: &Measurements, baseline_path: &str) -> bool {
    baseline_gate(m, baseline_path, false)
}

/// Evaluates the `BENCH_5.json` throughput gate, returning true on a
/// regression. The 2-stage chained baseline is normalised to a
/// per-stage work rate and extrapolated to the ring's depth before
/// comparing final-output throughputs. With `report` set, prints the
/// verdict; a missing or key-less baseline skips the gate (with a
/// note) rather than failing, so the first pipeline run bootstraps
/// cleanly.
fn baseline_gate(m: &Measurements, baseline_path: &str, report: bool) -> bool {
    let Ok(doc) = std::fs::read_to_string(baseline_path) else {
        if report {
            println!("no baseline at {baseline_path}; skipping the throughput gate");
        }
        return false;
    };
    let (Some(chained), Some(stages)) = (
        json_number(&doc, "chained_streaming_elem_per_s"),
        json_number(&doc, "chained_stages"),
    ) else {
        if report {
            eprintln!("baseline {baseline_path} carries no chained throughput; skipping that gate");
        }
        return false;
    };
    // Final-output rate of an equivalent depth-T chain: the baseline's
    // per-stage work rate spread across the ring's steps.
    let equivalent = chained * stages / m.steps as f64;
    let ratio = m.streaming / equivalent;
    if ratio < BASELINE_TOLERANCE {
        if report {
            eprintln!(
                "iterate streaming throughput regressed to {ratio:.2}x of the equivalent \
                 depth-{} chain from {baseline_path} ({:.1} vs {equivalent:.1} elem/s)",
                m.steps, m.streaming
            );
        }
        return true;
    }
    if report {
        println!(
            "iterate streaming throughput holds {ratio:.2}x of the equivalent depth-{} chain",
            m.steps
        );
    }
    false
}

/// Plans the benchmark at its full paper extents and measures the
/// T-step ring in core and streaming, cross-checking the ring outputs
/// against sequential materialised time steps, proving the streaming
/// residency bound, driving `iterate_until` to convergence on a
/// contractive relaxation, and validating every telemetry report.
#[allow(clippy::too_many_lines)]
fn measure(bench: &Benchmark) -> Result<Measurements, Box<dyn std::error::Error>> {
    let extents: Vec<i64> = bench.extents().to_vec();
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;

    let in_idx = plan.input_domain().index()?;
    let mut state = 0x5EED_BA5E_D00Du64;
    let in_vals: Vec<f64> = (0..in_idx.len())
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005u64)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 256.0
        })
        .collect();
    let input = InputGrid::new(&in_idx, &in_vals)?;
    let compute = bench.compute_fn();
    let kernel = CompiledKernel::for_benchmark(bench)?
        .ok_or_else(|| format!("{} carries no expression", bench.name()))?;

    let mut violations = 0usize;
    let mut validate = |report: &MetricsReport| {
        let v = validate_report(report);
        for violation in &v {
            eprintln!("  violation: {violation}");
        }
        violations += v.len();
    };

    // Golden reference: fold the grid through one materialised
    // single-step run per time step (closure backend; `for_benchmark`
    // compiles checked against it, so the ring must match bit for
    // bit either way).
    let mut golden = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .run(&input)?
        .outputs;
    let mut cur_plan = plan.clone();
    for k in 1..STEPS {
        let next = cur_plan.chain_next(format!("{}@t{}", plan.name(), k + 1), bench.window())?;
        let idx = next.input_domain().index()?;
        let grid = InputGrid::new(&idx, &golden)?;
        golden = Session::new(&next)
            .kernel(SessionKernel::Closure(&compute))
            .run(&grid)?
            .outputs;
        cur_plan = next;
    }
    let outputs = golden.len() as u64;

    // T-step in-core ring; the warm-up doubles as the first
    // correctness check.
    let session = Session::new(&plan)
        .kernel(SessionKernel::Compiled(&kernel))
        .telemetry(spec.name())
        .iterate(STEPS)?;
    let mut incore = 0.0f64;
    for _ in 0..=RUNS {
        let run = session.run(&input)?;
        incore = incore.max(run.report.throughput());
        let mut report = MetricsReport::new(spec.name());
        report.session = Some(run.report.metrics());
        validate(&report);
        if run.outputs != golden {
            return Err("in-core ring outputs diverge from sequential time steps".into());
        }
    }

    // The same ring streaming at a 64-row chunk, holding only the
    // coupled halo windows of the T steps resident.
    let session = Session::new(&plan)
        .kernel(SessionKernel::Compiled(&kernel))
        .mode(ExecMode::Streaming {
            chunk_rows: Some(64),
        })
        .threads(4)
        .telemetry(spec.name())
        .iterate(STEPS)?;
    let resident_bound = session.planned_residency_bound(Some(64))?;
    let mut streaming = 0.0f64;
    let mut peak_resident = 0u64;
    for _ in 0..RUNS {
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let report = session.run_streaming(&mut source, &mut sink)?;
        streaming = streaming.max(report.throughput());
        peak_resident = peak_resident.max(report.peak_resident);
        let mut metrics = MetricsReport::new(spec.name());
        metrics.session = Some(report.metrics());
        validate(&metrics);
        if sink.values != golden {
            return Err("streaming ring outputs diverge from sequential time steps".into());
        }
    }

    // Convergence: a contractive Jacobi-style relaxation (tap weights
    // sum to 0.4) over the benchmark's own window, which must early-exit
    // well inside its step budget. The center tap is located from the
    // window so the weighting survives offset reordering.
    let center = bench
        .window()
        .iter()
        .position(|off| off.as_slice().iter().all(|&c| c == 0))
        .ok_or("benchmark window has no center tap")?;
    let taps = bench.window().len();
    let relax = move |w: &[f64]| -> f64 {
        let mut acc = 0.2 * w[center];
        let side = 0.2 / (taps - 1) as f64;
        for (i, v) in w.iter().enumerate() {
            if i != center {
                acc += side * v;
            }
        }
        acc
    };
    let budget = 64usize;
    let run = Session::new(&plan)
        .kernel(SessionKernel::Closure(&relax))
        .telemetry(spec.name())
        .iterate_until(&input, 1e-3, budget)?;
    let it = run
        .report
        .iterate
        .clone()
        .ok_or("iterate_until produced no iterate report")?;
    let mut report = MetricsReport::new(spec.name());
    report.session = Some(run.report.metrics());
    validate(&report);

    Ok(Measurements {
        name: bench.name().to_string(),
        extents,
        steps: STEPS,
        outputs,
        incore,
        streaming,
        peak_resident,
        resident_bound,
        converge_steps: it.steps,
        converge_budget: it.max_steps,
        converged: it.converged,
        final_delta: it.final_delta,
        violations,
    })
}
