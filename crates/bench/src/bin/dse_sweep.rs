//! Design-space exploration: resource scaling of the non-uniform design
//! vs the \[8\] baseline across element widths and grid scales, for one
//! benchmark (default DENOISE).

use stencil_fpga::sweep;
use stencil_kernels::find_benchmark;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "DENOISE".into());
    let bench = find_benchmark(&which).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{which}`");
        std::process::exit(2);
    });

    println!("Design-space exploration: {bench}");
    println!();
    println!(
        "{:>6} {:>16} | {:>9} {:>9} | {:>9} {:>9} | {:>10}",
        "bits", "grid", "[8] BRAM", "our BRAM", "[8] slc", "our slc", "BRAM ratio"
    );
    let points = sweep(&bench, &[8, 16, 32], &[4, 2, 1]).expect("sweep");
    for p in &points {
        println!(
            "{:>6} {:>16} | {:>9} {:>9} | {:>9} {:>9} | {:>10.3}",
            p.element_bits,
            format!("{:?}", p.extents),
            p.baseline.bram18k,
            p.ours.bram18k,
            p.baseline.slices(),
            p.ours.slices(),
            p.bram_ratio(),
        );
    }
    println!();
    println!("the non-uniform design dominates at every explored configuration");
}
