//! Regenerates Fig. 6 of the paper: stencil windows for which uniform
//! cyclic partitioning needs **more** banks than the number of array
//! references — BICUBIC (4-pt → 5), RICIAN (4-pt → 5), and
//! SEGMENTATION_3D (19-pt → 20) — while the non-uniform design always
//! needs n-1.

use stencil_core::MemorySystemPlan;
use stencil_kernels::{bicubic, rician, segmentation_3d};
use stencil_uniform::multidim_cyclic;

fn main() {
    println!("Fig. 6 — windows where [8] needs more banks than references");
    println!();
    println!(
        "{:<18} {:>6} {:>11} {:>12} {:>12}",
        "window", "n", "[8] banks", "ours banks", "minimum"
    );
    for bench in [bicubic(), rician(), segmentation_3d()] {
        let part = multidim_cyclic(bench.window(), bench.extents());
        let plan = MemorySystemPlan::generate(&bench.spec().expect("spec")).expect("plan");
        let n = bench.window().len();
        println!(
            "{:<18} {:>6} {:>11} {:>12} {:>12}",
            bench.name(),
            n,
            part.banks,
            plan.bank_count(),
            n - 1
        );
        assert_eq!(plan.bank_count(), n - 1, "ours must hit the lower bound");
    }
    println!();
    println!("(paper: [7,8] need 5, 5, 20 banks respectively; ours 3, 3, 18)");
}
