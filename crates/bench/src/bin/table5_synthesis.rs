//! Regenerates Table 5 of the paper: post-synthesis resource usage
//! (18 Kb BRAMs, logic slices, DSP48s) and clock period for \[8\] vs the
//! non-uniform design, over all six benchmarks, using the synthetic
//! Virtex-7 resource model (this reproduction's stand-in for Xilinx ISE
//! 14.2 — see DESIGN.md).

use stencil_fpga::{Device, Table5};
use stencil_kernels::paper_suite;

fn main() {
    let device = Device::virtex7_485t();
    println!(
        "Table 5 — synthetic synthesis results (device model {}, target {} ns)",
        device.name, device.target_clock_ns
    );
    println!();
    let table = Table5::build(&paper_suite()).expect("estimation");
    print!("{table}");
    println!();
    println!("(paper, on real ISE: ours/baseline averages BRAM 34%, slices 75%, DSP 0%)");
}
