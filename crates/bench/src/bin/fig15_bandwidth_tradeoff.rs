//! Regenerates Fig. 15 of the paper: the graceful degradation of
//! on-chip reuse-buffer size as the off-chip bandwidth grows, for the
//! 19-point SEGMENTATION_3D window. The chain is broken at the largest
//! remaining FIFO for each extra stream (Fig. 14), producing the three
//! phases the paper describes: inter-plane reuse is given up first,
//! then inter-row, and finally intra-row reuse.

use stencil_core::MemorySystemPlan;
use stencil_kernels::segmentation_3d;

fn main() {
    let bench = segmentation_3d();
    let plan = MemorySystemPlan::generate(&bench.spec().expect("spec")).expect("plan");
    let curve = plan.tradeoff_curve(18).expect("curve");

    println!("Fig. 15 — bandwidth/memory tradeoff on SEGMENTATION_3D (19-point)");
    println!();
    println!(
        "{:>18} {:>14} {:>8}   relative",
        "offchip accesses", "buffer size", "banks"
    );
    let full = curve[0].total_buffer_size.max(1);
    for p in &curve {
        let bar_len = (40 * p.total_buffer_size / full) as usize;
        println!(
            "{:>18} {:>14} {:>8}   {}",
            p.offchip_streams,
            p.total_buffer_size,
            p.bank_count,
            "#".repeat(bar_len)
        );
    }
    println!();
    // Classify the phases by the size of the buffer removed at each step.
    let mut phases = vec![("inter-plane", 0u64), ("inter-row", 0), ("intra-row", 0)];
    for w in curve.windows(2) {
        let removed = w[0].total_buffer_size - w[1].total_buffer_size;
        let slot = if removed > 1000 {
            0
        } else if removed > 4 {
            1
        } else {
            2
        };
        phases[slot].1 += 1;
    }
    for (name, count) in phases {
        println!("phase `{name}` steps: {count}");
    }
}
