//! Regenerates the Appendix 9.3 / Fig. 13(c) experiment: two stencil
//! accelerators chained with **direct data forwarding**. Because both
//! produce and consume data in lexicographic order, the inter-block
//! frame buffer of the conventional design shrinks to a skid buffer of
//! a few elements — measured here by co-simulation.

use stencil_core::{MemorySystemPlan, StencilSpec};
use stencil_polyhedral::{Point, Polyhedron};
use stencil_sim::{ChainedAccelerators, Machine};

fn cross() -> Vec<Point> {
    vec![
        Point::new(&[-1, 0]),
        Point::new(&[0, -1]),
        Point::new(&[0, 0]),
        Point::new(&[0, 1]),
        Point::new(&[1, 0]),
    ]
}

fn main() {
    let (r, c) = (64i64, 96i64);
    // Stage 1 denoises the full frame; stage 2 consumes stage 1's
    // output domain directly.
    let stage1 = StencilSpec::new(
        "stage1",
        Polyhedron::rect(&[(1, r - 2), (1, c - 2)]),
        cross(),
    )
    .expect("spec");
    let stage2 = StencilSpec::new(
        "stage2",
        Polyhedron::rect(&[(2, r - 3), (2, c - 3)]),
        cross(),
    )
    .expect("spec");

    let producer =
        Machine::new(&MemorySystemPlan::generate(&stage1).expect("plan")).expect("machine");
    let consumer =
        Machine::with_external_input(&MemorySystemPlan::generate(&stage2).expect("plan"))
            .expect("machine");
    let mut chain = ChainedAccelerators::new(producer, consumer).expect("compatible");
    let stats = chain.run(10_000_000).expect("run");

    println!("Appendix 9.3 — accelerator-to-accelerator forwarding ({r}x{c} frame)");
    println!();
    println!(
        "stage 1: {:>7} outputs in {:>7} cycles (fill {:>4})",
        stats.producer.outputs, stats.producer.cycles, stats.producer.fill_latency
    );
    println!(
        "stage 2: {:>7} outputs in {:>7} cycles (fill {:>4})",
        stats.consumer.outputs, stats.consumer.cycles, stats.consumer.fill_latency
    );
    println!("co-simulated cycles: {}", stats.cycles);
    println!();
    let frame = (stats.producer.outputs).max(1);
    println!(
        "forwarding skid buffer needed: {} elements (conventional inter-block \
         memory: {} elements — {}x larger)",
        stats.max_forward_backlog,
        frame,
        frame / stats.max_forward_backlog.max(1)
    );
    assert!(stats.max_forward_backlog <= 4);
}
