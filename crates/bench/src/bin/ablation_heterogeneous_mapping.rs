//! Ablation of §3.5.1 / Table 2's heterogeneous buffer mapping: what
//! does the non-uniform design cost if every reuse FIFO is forced into
//! block RAM (as homogeneous uniform-partitioning flows do), versus the
//! heterogeneous register/SRL/BRAM assignment?

use stencil_core::{MappingPolicy, MemorySystemPlan, ReuseAnalysis};
use stencil_fpga::estimate_nonuniform;
use stencil_kernels::paper_suite;

fn main() {
    println!("Ablation — heterogeneous vs BRAM-only buffer mapping (ours)");
    println!();
    println!(
        "{:<18} | {:>9} {:>8} | {:>9} {:>8} | {:>10}",
        "benchmark", "het BRAM", "het slc", "hom BRAM", "hom slc", "BRAM saved"
    );
    for bench in paper_suite() {
        let spec = bench.spec().expect("spec");
        let analysis = ReuseAnalysis::of(&spec).expect("analysis");
        let het = MemorySystemPlan::from_analysis(&analysis, &MappingPolicy::default());
        let hom = MemorySystemPlan::from_analysis(&analysis, &MappingPolicy::bram_only());
        let het_est = estimate_nonuniform(&het, bench.ops());
        let hom_est = estimate_nonuniform(&hom, bench.ops());
        println!(
            "{:<18} | {:>9} {:>8} | {:>9} {:>8} | {:>10}",
            bench.name(),
            het_est.bram18k,
            het_est.slices(),
            hom_est.bram18k,
            hom_est.slices(),
            hom_est.bram18k - het_est.bram18k,
        );
        assert!(het_est.bram18k <= hom_est.bram18k);
    }
    println!();
    println!("heterogeneous mapping trades a few slices for substantial BRAM");
    println!("savings — the second factor behind Table 5's BRAM reduction");
}
