//! Surveys **every** implemented uniform-partitioning method against
//! the non-uniform design, for the whole benchmark suite — the wide
//! version of Table 4 covering \[5\], \[7\], block-cyclic, and \[8\].

use stencil_core::MemorySystemPlan;
use stencil_kernels::{extra_suite, paper_suite};
use stencil_polyhedral::render_window;
use stencil_uniform::survey;

fn main() {
    println!("Partitioning survey — every method, every benchmark");
    for bench in paper_suite().into_iter().chain(extra_suite()) {
        let spec = bench.spec().expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        println!();
        println!("{bench}");
        if let Some(art) = render_window(bench.window()) {
            for line in art.lines() {
                println!("    {line}");
            }
        }
        for r in survey(bench.window(), bench.extents()) {
            println!("  {r}");
        }
        println!(
            "  ours (non-uniform): {} banks, total size {}, II 1",
            plan.bank_count(),
            plan.total_buffer_size()
        );
        let min_uniform = survey(bench.window(), bench.extents())
            .into_iter()
            .map(|r| r.banks)
            .min()
            .expect("non-empty survey");
        assert!(
            plan.bank_count() < min_uniform,
            "{}: non-uniform must beat every uniform method",
            bench.name()
        );
    }
    println!();
    println!("the non-uniform design used fewer banks than every uniform method");
    println!("on every benchmark (paper suite + extras)");
}
