//! Regenerates Table 1 / the Fig. 2 analysis quantities of the paper:
//! the polyhedral denotations of the DENOISE example — data domains,
//! input data domain, reuse-distance vectors and maximum reuse
//! distances.

use stencil_core::ReuseAnalysis;
use stencil_kernels::denoise;
use stencil_polyhedral::{max_reuse_distance, reuse_vector};

fn main() {
    let bench = denoise();
    let spec = bench.spec().expect("valid spec");
    let analysis = ReuseAnalysis::of(&spec).expect("analysis");

    println!(
        "Table 1 — denotations for {} (Fig. 2 example)",
        bench.name()
    );
    println!();
    println!("iteration domain D      : {}", spec.iteration_domain());
    println!(
        "input data domain D_A   : {} points ({})",
        analysis.input_count(),
        analysis.input_domain()
    );
    println!();
    println!(
        "{:<14} {:>12} {:>22}",
        "reference", "offset f_x", "data domain |D_Ax|"
    );
    for k in 0..analysis.window_size() {
        println!(
            "{:<14} {:>12} {:>22}",
            format!("filter_{k}"),
            analysis.filter_offset(k).to_string(),
            analysis.filter_index(k).len()
        );
    }
    println!();
    println!("reuse-distance vectors and maximum reuse distances:");
    let n = analysis.window_size();
    for x in 0..n {
        for y in (x + 1)..n {
            let fx = analysis.filter_offset(x);
            let fy = analysis.filter_offset(y);
            let r = reuse_vector(&fx, &fy);
            let d = max_reuse_distance(analysis.input_index(), analysis.filter_index(y), &r)
                .expect("lex-positive by sorting");
            println!("  A[i+{fx}] -> A[i+{fy}]: r = {r}, max distance = {d}");
        }
    }
    println!();
    println!(
        "end-to-end maximum reuse distance (minimum buffer size): {}",
        analysis.total_distance()
    );
    println!(
        "sum of adjacent distances (allocated buffers): {} (linearity holds: {})",
        analysis.sum_of_distances(),
        analysis.linearity_holds()
    );
}
