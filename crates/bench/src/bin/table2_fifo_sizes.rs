//! Regenerates Table 2 of the paper: the non-uniform reuse-FIFO sizes
//! of the DENOISE memory system and their heterogeneous physical
//! implementations (BRAM / distributed memory / registers).

use stencil_core::{Feed, MemorySystemPlan};
use stencil_kernels::denoise;

fn main() {
    let bench = denoise();
    let plan = MemorySystemPlan::generate(&bench.spec().expect("spec")).expect("plan");

    println!("Table 2 — reuse FIFOs of the DENOISE memory system");
    println!();
    println!(
        "{:<8} {:<28} {:>10} {:<12}",
        "FIFO", "precedent -> successive", "size", "physical impl."
    );
    for (k, feed) in plan.feeds().iter().enumerate() {
        if let Feed::Fifo { capacity, storage } = feed {
            println!(
                "FIFO_{:<3} A[i+{}] -> A[i+{}] {:>10} {:<12}",
                k - 1,
                plan.filters()[k - 1].offset,
                plan.filters()[k].offset,
                capacity,
                storage.to_string()
            );
        }
    }
    println!();
    println!(
        "total buffer size: {} elements (theoretical minimum: {})",
        plan.total_buffer_size(),
        plan.min_total_size()
    );
    println!(
        "banks: {} (theoretical minimum: n-1 = {})",
        plan.bank_count(),
        plan.port_count() - 1
    );
    println!();
    println!("full plan:");
    print!("{plan}");
}
