//! Ablation (motivated by §2.1's loop-fusion discussion): as the stencil
//! window grows — e.g. after fusing multiple stencil iterations — how do
//! bank count and buffer size scale for uniform cyclic partitioning \[8\]
//! versus the non-uniform design?

use stencil_core::{MemorySystemPlan, StencilSpec};
use stencil_polyhedral::{Point, Polyhedron};
use stencil_uniform::multidim_cyclic;

/// The L1-ball window of radius `r` (the shape produced by fusing `r`
/// applications of the 5-point cross).
fn fused_window(r: i64) -> Vec<Point> {
    let mut out = Vec::new();
    for a in -r..=r {
        for b in -r..=r {
            if a.abs() + b.abs() <= r {
                out.push(Point::new(&[a, b]));
            }
        }
    }
    out
}

fn main() {
    let extents = [768i64, 1024];
    println!("Ablation — window growth under loop fusion (768x1024 grid)");
    println!();
    println!(
        "{:>7} {:>4} | {:>9} {:>12} | {:>9} {:>12} | {:>9}",
        "radius", "n", "[8] banks", "[8] size", "our banks", "our size", "size ratio"
    );
    for r in 1..=4 {
        let window = fused_window(r);
        let n = window.len();
        let iter = Polyhedron::rect(&[(r, extents[0] - 1 - r), (r, extents[1] - 1 - r)]);
        let spec = StencilSpec::new(format!("fused_r{r}"), iter, window.clone()).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let base = multidim_cyclic(&window, &extents);
        println!(
            "{:>7} {:>4} | {:>9} {:>12} | {:>9} {:>12} | {:>9.3}",
            r,
            n,
            base.banks,
            base.total_size,
            plan.bank_count(),
            plan.total_buffer_size(),
            plan.total_buffer_size() as f64 / base.total_size as f64,
        );
    }
    println!();
    println!("the non-uniform design stays at n-1 banks and the minimal span;");
    println!("uniform partitioning pays the bank search + padding at every size");
}
