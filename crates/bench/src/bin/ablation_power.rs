//! Power ablation (§5.2): the paper found FPGA power dominated by the
//! static component and noted that *with power gating* power becomes
//! proportional to resource usage. This harness quantifies both
//! statements with the synthetic power model: total power barely moves
//! between the designs, while the gated (design-proportional) component
//! tracks Table 5's resource savings.

use stencil_core::MemorySystemPlan;
use stencil_fpga::{estimate_nonuniform, estimate_power, estimate_uniform, Device, PowerModel};
use stencil_kernels::paper_suite;
use stencil_uniform::multidim_cyclic;

fn main() {
    let device = Device::default();
    let model = PowerModel::default();
    println!("Power ablation (model: static {} mW)", model.static_mw);
    println!();
    println!(
        "{:<18} | {:>11} {:>11} | {:>11} {:>11} | {:>8}",
        "benchmark", "[8] total", "ours total", "[8] gated", "ours gated", "gated %"
    );
    for bench in paper_suite() {
        let spec = bench.spec().expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let ours_est = estimate_nonuniform(&plan, bench.ops());
        let part = multidim_cyclic(bench.window(), bench.extents());
        let base_est = estimate_uniform(
            &part,
            bench.window().len(),
            spec.element_bits(),
            spec.iteration_domain(),
            bench.ops(),
        );
        let ours = estimate_power(&ours_est, &device, &model, 1.0);
        let base = estimate_power(&base_est, &device, &model, 1.0);
        println!(
            "{:<18} | {:>9.1}mW {:>9.1}mW | {:>9.2}mW {:>9.2}mW | {:>7.1}%",
            bench.name(),
            base.total_mw(),
            ours.total_mw(),
            base.dynamic_mw,
            ours.dynamic_mw,
            100.0 * ours.dynamic_mw / base.dynamic_mw,
        );
        assert!(ours.dynamic_mw < base.dynamic_mw);
    }
    println!();
    println!("total power is static-dominated (the paper's XPower observation);");
    println!("the gated component tracks the Table 5 resource savings");
}
