//! Regenerates Table 4 of the paper: high-level partitioning results —
//! original and target II, number of banks and total reuse-buffer size
//! for the baseline \[8\] vs the non-uniform design, over all six
//! benchmarks. With `--simulate`, additionally verifies the achieved
//! initiation behaviour of the non-uniform design cycle-accurately on
//! scaled grids.

use stencil_bench::simulate_suite_parallel;
use stencil_core::MemorySystemPlan;
use stencil_kernels::paper_suite;
use stencil_uniform::{multidim_cyclic, unpartitioned};

fn main() {
    let simulate = std::env::args().any(|a| a == "--simulate");

    println!("Table 4 — high-level partitioning results");
    println!();
    println!(
        "{:<18} {:>8} {:>8} | {:>9} {:>9} | {:>12} {:>12}",
        "benchmark", "orig II", "tgt II", "[8] banks", "our banks", "[8] size", "our size"
    );
    for bench in paper_suite() {
        let spec = bench.spec().expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let base = multidim_cyclic(bench.window(), bench.extents());
        let orig = unpartitioned(bench.window(), bench.extents());
        println!(
            "{:<18} {:>8} {:>8} | {:>9} {:>9} | {:>12} {:>12}",
            bench.name(),
            orig.ii,
            plan.target_ii(),
            base.banks,
            plan.bank_count(),
            base.total_size,
            plan.total_buffer_size(),
        );
        assert!(plan.bank_count() < base.banks, "ours must use fewer banks");
        assert!(
            plan.total_buffer_size() <= base.total_size,
            "ours must not use more buffer"
        );
    }

    if simulate {
        println!();
        println!("cycle-accurate verification (scaled grids, ~64k cells, parallel):");
        let results = simulate_suite_parallel(&paper_suite(), 65_536).expect("simulation");
        for (name, stats) in results {
            println!(
                "  {:<18} outputs {:>8}  cycles {:>8}  steady II {:>6.3}  bandwidth-limited {}",
                name,
                stats.outputs,
                stats.cycles,
                stats.steady_ii,
                stats.fully_pipelined()
            );
        }
    } else {
        println!();
        println!("(run with --simulate for cycle-accurate II verification)");
    }
}
