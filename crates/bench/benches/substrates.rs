//! Criterion bench: the substrate layers — polyhedral rank queries and
//! reuse-distance analysis (what sizes the FIFOs) and Verilog
//! generation (the automation flow's output stage).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use stencil_core::MemorySystemPlan;
use stencil_kernels::{denoise, segmentation_3d};
use stencil_polyhedral::{max_reuse_distance, Point, Polyhedron};
use stencil_rtl::generate;

fn bench_polyhedral(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate/domain_index");
    g.sample_size(20);
    let grid2d = Polyhedron::grid(&[768, 1024]);
    g.bench_function("build_index_768x1024", |b| {
        b.iter(|| black_box(grid2d.index().expect("index").len()));
    });
    let grid3d = Polyhedron::grid(&[96, 96, 96]);
    g.bench_function("build_index_96x96x96", |b| {
        b.iter(|| black_box(grid3d.index().expect("index").len()));
    });

    let idx = grid2d.index().expect("index");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("rank_queries_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..10_000u64 {
                let p = Point::new(&[(k % 700) as i64, (k % 1000) as i64]);
                acc = acc.wrapping_add(idx.rank_lt(black_box(&p)));
            }
            black_box(acc)
        });
    });
    g.finish();

    let mut g = c.benchmark_group("substrate/max_reuse_distance");
    g.sample_size(20);
    let iter = Polyhedron::rect(&[(1, 766), (1, 1022)]);
    let input = grid2d.index().expect("index");
    let dax = iter
        .translated(&Point::new(&[-1, 0]))
        .index()
        .expect("index");
    g.bench_function("denoise_end_to_end_pair", |b| {
        b.iter(|| {
            black_box(max_reuse_distance(&input, &dax, &Point::new(&[2, 0])).expect("distance"))
        });
    });
    g.finish();
}

fn bench_rtl(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow/verilog_generation");
    g.sample_size(10);
    for bench in [denoise(), segmentation_3d()] {
        let plan = MemorySystemPlan::generate(&bench.spec().expect("spec")).expect("plan");
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let bundle = generate(black_box(&plan)).expect("rtl");
                black_box(bundle.concat().len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_polyhedral, bench_rtl);
criterion_main!(benches);
