//! Criterion bench: cycle-accurate simulation throughput behind Table 3
//! and the II verification of Table 4 — simulated cycles per wall
//! second for each benchmark's memory system on scaled grids, plus the
//! skewed-grid machine of Fig. 9.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_kernels::{paper_suite, skewed_denoise};
use stencil_sim::Machine;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_table4/machine_run");
    g.sample_size(10);
    for bench in paper_suite() {
        let extents = scaled_extents(&bench, 16_384);
        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let cycles = Machine::new(&plan)
            .expect("machine")
            .run(10_000_000)
            .expect("run")
            .cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let mut m = Machine::new(black_box(&plan)).expect("machine");
                black_box(m.run(10_000_000).expect("run").outputs)
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig9/skewed_machine_run");
    g.sample_size(10);
    let spec = skewed_denoise(48, 32).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    g.bench_function("SKEWED_DENOISE", |b| {
        b.iter(|| {
            let mut m = Machine::new(black_box(&plan)).expect("machine");
            black_box(m.run(10_000_000).expect("run").outputs)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
