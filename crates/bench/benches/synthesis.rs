//! Criterion bench: the FPGA resource/timing estimation behind Table 5
//! — per-benchmark estimation of both designs and full table assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencil_core::MemorySystemPlan;
use stencil_fpga::{estimate_nonuniform, estimate_uniform, Table5};
use stencil_kernels::paper_suite;
use stencil_uniform::multidim_cyclic;

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5/estimate");
    g.sample_size(20);
    for bench in paper_suite() {
        let spec = bench.spec().expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let part = multidim_cyclic(bench.window(), bench.extents());
        g.bench_function(format!("ours/{}", bench.name()), |b| {
            b.iter(|| black_box(estimate_nonuniform(black_box(&plan), bench.ops())));
        });
        g.bench_function(format!("baseline/{}", bench.name()), |b| {
            b.iter(|| {
                black_box(estimate_uniform(
                    black_box(&part),
                    bench.window().len(),
                    spec.element_bits(),
                    spec.iteration_domain(),
                    bench.ops(),
                ))
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("table5/full_table");
    g.sample_size(10);
    let suite = paper_suite();
    g.bench_function("all_six_benchmarks", |b| {
        b.iter(|| black_box(Table5::build(black_box(&suite)).expect("table")));
    });
    g.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
