//! Criterion bench: the bandwidth/memory tradeoff machinery behind
//! Figs. 14/15 — chain breaking and full design-curve generation, plus
//! a cycle-accurate run of a traded design.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_kernels::segmentation_3d;
use stencil_sim::Machine;

fn bench_tradeoff(c: &mut Criterion) {
    let seg = segmentation_3d();
    let plan = MemorySystemPlan::generate(&seg.spec().expect("spec")).expect("plan");

    let mut g = c.benchmark_group("fig15/curve");
    g.sample_size(30);
    g.bench_function("SEGMENTATION_3D_1..18_streams", |b| {
        b.iter(|| black_box(plan.tradeoff_curve(18).expect("curve")));
    });
    g.finish();

    let mut g = c.benchmark_group("fig14/traded_machine_run");
    g.sample_size(10);
    let extents = scaled_extents(&seg, 16_384);
    let small = MemorySystemPlan::generate(&seg.spec_for(&extents).expect("spec")).expect("plan");
    for streams in [1usize, 3, 9] {
        let traded = small.with_offchip_streams(streams).expect("tradeoff");
        g.bench_function(format!("{streams}_streams"), |b| {
            b.iter(|| {
                let mut m = Machine::new(black_box(&traded)).expect("machine");
                black_box(m.run(10_000_000).expect("run").outputs)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tradeoff);
criterion_main!(benches);
