//! Criterion bench: parallel tiled engine vs the cycle-accurate
//! machine on full-size DENOISE (768x1024), engine thread scaling at
//! 1/2/4/8 workers, the compiled row-sweep backend vs the closure
//! datapath, and the bounded-memory streaming path vs in-core.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, Session, SessionKernel, SliceSource, VecSink,
};
use stencil_kernels::{denoise, GridValues};
use stencil_polyhedral::Polyhedron;
use stencil_sim::Machine;

fn bench_engine(c: &mut Criterion) {
    let bench = denoise();
    let extents: Vec<i64> = bench.extents().to_vec();
    let spec = bench.spec_for(&extents).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let outputs = plan.iteration_domain().count().expect("count");

    let grid = GridValues::from_fn(&Polyhedron::grid(&extents), |p| {
        (p[0] * 3 + p[1]) as f64 * 0.125
    })
    .expect("grid");
    let in_idx = plan.input_domain().index().expect("input index");
    let mut in_vals = Vec::with_capacity(in_idx.len() as usize);
    let mut cur = in_idx.cursor();
    while let Some(p) = cur.point(&in_idx) {
        in_vals.push(grid.value_at(&p).expect("covered"));
        cur.advance(&in_idx);
    }
    let input = InputGrid::new(&in_idx, &in_vals).expect("input");
    let compute = bench.compute_fn();

    let mut g = c.benchmark_group("engine_denoise_768x1024");
    g.sample_size(10);
    g.throughput(Throughput::Elements(outputs));

    // Baseline: the cycle-accurate machine streaming the same kernel.
    g.bench_function("machine", |b| {
        b.iter(|| {
            let mut m = Machine::new(black_box(&plan)).expect("machine");
            black_box(m.run(10_000_000).expect("run").outputs)
        })
    });

    // Engine scaling: one band per worker, 1/2/4/8 workers.
    for threads in [1usize, 2, 4, 8] {
        let tile_plan = plan.tile_plan(threads).expect("tile plan");
        g.bench_function(format!("engine_{threads}thread"), |b| {
            b.iter(|| {
                let run = Session::new(black_box(&plan))
                    .kernel(SessionKernel::Closure(&compute))
                    .tile_plan(&tile_plan)
                    .threads(threads)
                    .run(&input)
                    .expect("engine");
                black_box(run.outputs.len())
            })
        });
    }

    // Compiled row-sweep backend: the same kernel authored as a
    // KernelExpr, lowered to stack bytecode, swept over lane chunks.
    let kernel = CompiledKernel::for_benchmark(&bench)
        .expect("compile")
        .expect("DENOISE carries an expression");
    for threads in [1usize, 4] {
        g.bench_function(format!("compiled_{threads}thread"), |b| {
            b.iter(|| {
                let run = Session::new(black_box(&plan))
                    .kernel(SessionKernel::Compiled(&kernel))
                    .mode(ExecMode::Tiled { tiles: threads })
                    .threads(threads)
                    .run(&input)
                    .expect("compiled engine");
                black_box(run.outputs.len())
            })
        });
    }

    // Streaming out-of-core path against the in-core engine: same
    // kernel, 4 workers, at a bounded chunk (64-row bands, so only a
    // 66-row halo window is ever resident) and whole-grid-as-one-band.
    for chunk in [64u64, 768] {
        g.bench_function(format!("streaming_chunk{chunk}_4thread"), |b| {
            b.iter(|| {
                let mut source = SliceSource::new(black_box(&in_vals));
                let mut sink = VecSink::new();
                let report = Session::new(&plan)
                    .kernel(SessionKernel::Closure(&compute))
                    .mode(ExecMode::Streaming {
                        chunk_rows: Some(chunk),
                    })
                    .threads(4)
                    .run_streaming(&mut source, &mut sink)
                    .expect("streaming");
                black_box((sink.values.len(), report.peak_resident))
            })
        });
    }

    // Compiled streaming: the row sweep under the bounded-memory path.
    g.bench_function("streaming_compiled_chunk64_4thread", |b| {
        b.iter(|| {
            let mut source = SliceSource::new(black_box(&in_vals));
            let mut sink = VecSink::new();
            let report = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(64),
                })
                .threads(4)
                .run_streaming(&mut source, &mut sink)
                .expect("compiled streaming");
            black_box((sink.values.len(), report.peak_resident))
        })
    });

    // Temporal chaining: two DENOISE stages through the bounded
    // halo-window hand-off, versus materializing the intermediate grid.
    let stage2 = bench.stage();
    g.bench_function("chained_2stage_streaming_chunk64_4thread", |b| {
        b.iter(|| {
            let mut source = SliceSource::new(black_box(&in_vals));
            let mut sink = VecSink::new();
            let report = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .then(&stage2)
                .expect("chain")
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(64),
                })
                .threads(4)
                .run_streaming(&mut source, &mut sink)
                .expect("chained streaming");
            black_box((sink.values.len(), report.peak_resident))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
