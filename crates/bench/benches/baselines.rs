//! Criterion bench: the uniform-partitioning baselines behind Figs. 5/6
//! and Table 4's baseline columns — the linear cyclic bank search, the
//! rescheduled search, and \[8\]'s affine coefficient search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencil_kernels::{paper_suite, segmentation_3d};
use stencil_uniform::{
    bank_count_vs_row_size, linear_cyclic, multidim_cyclic, rescheduled_cyclic, DEFAULT_LOOKAHEAD,
};

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/linear_cyclic_sweep");
    g.sample_size(20);
    let denoise = &paper_suite()[0];
    let window = denoise.window().to_vec();
    g.bench_function("row_sizes_1000..1056", |b| {
        b.iter(|| black_box(bank_count_vs_row_size(&window, 768, 1000..=1056)));
    });
    g.finish();

    let mut g = c.benchmark_group("table4/bank_search");
    g.sample_size(20);
    for bench in paper_suite() {
        g.bench_function(format!("[8]_multidim/{}", bench.name()), |b| {
            b.iter(|| black_box(multidim_cyclic(bench.window(), bench.extents())));
        });
    }
    g.bench_function("[5]_linear/DENOISE", |b| {
        b.iter(|| black_box(linear_cyclic(&window, &[768, 1024])));
    });
    g.bench_function("[7]_rescheduled/DENOISE", |b| {
        b.iter(|| black_box(rescheduled_cyclic(&window, &[768, 1024], DEFAULT_LOOKAHEAD)));
    });
    g.finish();

    let mut g = c.benchmark_group("fig6/hard_window_search");
    g.sample_size(10);
    let seg = segmentation_3d();
    g.bench_function("SEGMENTATION_3D_19pt", |b| {
        b.iter(|| black_box(multidim_cyclic(seg.window(), seg.extents())));
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
