//! Criterion bench: the polyhedral reuse analysis + microarchitecture
//! generation behind Tables 1/2/4 — the cost of the automation flow's
//! left branch per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stencil_core::{MemorySystemPlan, ReuseAnalysis};
use stencil_kernels::paper_suite;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_table4/plan_generation");
    g.sample_size(20);
    for bench in paper_suite() {
        let spec = bench.spec().expect("spec");
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let plan = MemorySystemPlan::generate(black_box(&spec)).expect("plan");
                black_box(plan.total_buffer_size())
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("table1/reuse_analysis");
    g.sample_size(20);
    let spec = paper_suite()[0].spec().expect("spec");
    g.bench_function("DENOISE_full_analysis", |b| {
        b.iter(|| {
            let a = ReuseAnalysis::of(black_box(&spec)).expect("analysis");
            black_box(a.total_distance())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
