//! No-op `Serialize`/`Deserialize` derives.
//!
//! This workspace uses serde derives purely as trait markers (no
//! serialization actually happens offline), so the derive macros accept
//! the usual `#[serde(...)]` field attributes and expand to marker
//! trait impls without generating any codec logic.

use proc_macro::{Ident, Span, TokenStream, TokenTree};

/// Extracts the identifier of the type a derive is attached to,
/// skipping attributes, visibility, and the struct/enum keyword.
fn type_name(input: TokenStream) -> Ident {
    let mut tokens = input.into_iter().peekable();
    // `#[...]` attribute heads and visibility groups are skipped
    // implicitly: punct/group trees match nothing here.
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if text == "struct" || text == "enum" || text == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name;
                }
            }
        }
    }
    Ident::new("UnknownType", Span::call_site())
}

fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
