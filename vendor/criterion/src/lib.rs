//! Offline stand-in for `criterion`, exposing the measurement API this
//! workspace's benches use (`benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `iter`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple wall-clock harness.
//!
//! Each benchmark runs one warmup call plus `sample_size` timed samples
//! and reports the median per-iteration time (and derived throughput)
//! on stdout. Under `cargo test` (or with `--test` in the args) every
//! benchmark runs exactly once so bench targets stay cheap smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a manager from the process arguments, accepting the flags
    /// cargo passes to bench targets (`--bench`, `--test`, a name
    /// filter) and ignoring the rest.
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                s if s.starts_with('-') => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Kept for call-site compatibility with real criterion.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        let args = Criterion::from_args();
        Criterion {
            test_mode: self.test_mode || args.test_mode,
            filter: args.filter.or(self.filter),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
    }
}

/// A set of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `f` and prints a report line.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher::default();
            f(&mut b);
            println!("Testing {full}: ok");
            return;
        }

        // Warmup (also lets Bencher observe a first measurement).
        let mut b = Bencher::default();
        f(&mut b);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            samples.push(b.per_iteration());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let line = match self.throughput {
            Some(t) => format!(
                "{full:<48} time: [{}]  thrpt: [{}]",
                format_duration(median),
                format_throughput(t, median)
            ),
            None => format!("{full:<48} time: [{}]", format_duration(median)),
        };
        println!("{line}");
    }

    /// Ends the group (separator line, matching real criterion's flow).
    pub fn finish(&mut self) {
        if !self.criterion.test_mode {
            println!();
        }
    }
}

/// Timing handle passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    fn per_iteration(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iterations).unwrap_or(u32::MAX)
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

fn format_throughput(t: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64();
    let (count, unit) = match t {
        Throughput::Elements(n) => (n, "elem/s"),
        Throughput::Bytes(n) => (n, "B/s"),
    };
    if secs <= 0.0 {
        return format!("inf {unit}");
    }
    let rate = count as f64 / secs;
    if rate >= 1e9 {
        format!("{:.4} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.4} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.4} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Bundles benchmark functions into a runnable group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target from `criterion_group!` entries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
