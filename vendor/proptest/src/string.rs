//! Generation of strings matching a small regex subset: literal
//! characters, escapes (`\n`, `\t`, `\r`, `\\`, `\.` …), character
//! classes with ranges (`[a-z0-9_]`, `[ -~\n]`), and the quantifiers
//! `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 16).

use crate::test_runner::TestRng;

/// One alternative set of characters (inclusive ranges).
#[derive(Debug, Clone)]
struct CharSet(Vec<(char, char)>);

impl CharSet {
    fn single(c: char) -> Self {
        CharSet(vec![(c, c)])
    }

    fn count(&self) -> u32 {
        self.0
            .iter()
            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
            .sum()
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        let mut k = rng.below(u128::from(self.count())) as u32;
        for &(lo, hi) in &self.0 {
            let n = hi as u32 - lo as u32 + 1;
            if k < n {
                return char::from_u32(lo as u32 + k).expect("valid scalar");
            }
            k -= n;
        }
        unreachable!("pick index within count")
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<Atom> = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut members: Vec<char> = Vec::new();
                let mut ranges: Vec<(char, char)> = Vec::new();
                loop {
                    let m = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated character class in `{pattern}`"));
                    if m == ']' {
                        break;
                    }
                    let m = if m == '\\' {
                        unescape(chars.next().expect("escape in class"))
                    } else {
                        m
                    };
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next(); // consume '-'
                        match look.peek() {
                            Some(&']') | None => members.push(m),
                            Some(_) => {
                                chars.next(); // the '-'
                                let hi = chars.next().expect("range end");
                                let hi = if hi == '\\' {
                                    unescape(chars.next().expect("escape in range"))
                                } else {
                                    hi
                                };
                                ranges.push((m, hi));
                            }
                        }
                    } else {
                        members.push(m);
                    }
                }
                ranges.extend(members.into_iter().map(|m| (m, m)));
                assert!(!ranges.is_empty(), "empty character class in `{pattern}`");
                CharSet(ranges)
            }
            '\\' => CharSet::single(unescape(chars.next().expect("trailing escape"))),
            '.' => CharSet(vec![(' ', '~')]),
            literal => CharSet::single(literal),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for m in chars.by_ref() {
                    if m == '}' {
                        break;
                    }
                    spec.push(m);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

/// Generates a random string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let span = u128::from(atom.max - atom.min + 1);
        let reps = atom.min + rng.below(span) as u32;
        for _ in 0..reps {
            out.push(atom.set.pick(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_with_newlines() {
        let mut rng = TestRng::from_seed(8);
        for _ in 0..50 {
            let s = generate_matching("[ -~\n]{0,256}", &mut rng);
            assert!(s.len() <= 256);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = TestRng::from_seed(9);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("a\\nb", &mut rng), "a\nb");
        assert_eq!(generate_matching("x{3}", &mut rng), "xxx");
    }
}
