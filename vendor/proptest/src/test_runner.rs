//! The deterministic case runner: seeding, `PROPTEST_CASES` /
//! `PROPTEST_SEED` environment overrides, panic capture, and
//! `.proptest-regressions` replay/persistence.

use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::strategy::Strategy;

/// A small, fast, deterministic RNG (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from an explicit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` must be nonzero and fit
    /// the caller's target width).
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty sampling bound");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The inputs do not satisfy a `prop_assume!` precondition; the
    /// case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of real proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of novel random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override.
    #[must_use]
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Kept for API familiarity; the macro drives [`run_proptest`] directly.
#[derive(Debug, Clone)]
pub struct TestRunner {
    /// The active configuration.
    pub config: ProptestConfig,
}

const BASE_SEED: u64 = 0x5EED_CAFE_F00D_D154;

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// Locates the `.proptest-regressions` sibling of `source_file`
/// (a `file!()` path, typically workspace-root-relative while tests run
/// from the crate manifest directory). Returns the first candidate whose
/// parent directory exists.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let rel = Path::new(source_file).with_extension("proptest-regressions");
    let mut candidate = rel.clone();
    for _ in 0..4 {
        if candidate.parent().is_some_and(Path::exists) {
            return Some(candidate);
        }
        candidate = Path::new("..").join(&candidate);
    }
    None
}

/// Parses replay seeds out of a regression file: every `cc <hex> …`
/// line contributes the hash of its hex blob.
fn replay_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            Some(hash_str(token))
        })
        .collect()
}

fn persist_failure(source_file: &str, test_name: &str, seed: u64) {
    let Some(path) = regression_path(source_file) else {
        return;
    };
    let fresh = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return;
    };
    if fresh {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let _ = writeln!(f, "cc {seed:016x} # seed replayed for `{test_name}`");
}

fn run_case<S, F>(strategy: &S, test: &F, seed: u64) -> Result<(), String>
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::from_seed(seed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let value = strategy.generate(&mut rng);
        test(value)
    }));
    match outcome {
        Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => Ok(()),
        Ok(Err(TestCaseError::Fail(msg))) => Err(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("test body panicked");
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs one `proptest!` test: replays persisted regression seeds, then
/// `config.resolved_cases()` novel deterministic cases.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) on the first failing
/// case, after persisting its seed.
pub fn run_proptest<S, F>(
    config: &ProptestConfig,
    source_file: &'static str,
    test_name: &'static str,
    strategy: &S,
    test: F,
) where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(BASE_SEED);
    let base = mix(base, hash_str(test_name));

    if let Some(path) = regression_path(source_file) {
        for (k, seed) in replay_seeds(&path).into_iter().enumerate() {
            if let Err(msg) = run_case(strategy, &test, seed) {
                panic!(
                    "{test_name}: persisted regression case {k} (seed {seed:#018x}) failed: {msg}"
                );
            }
        }
    }

    let cases = config.resolved_cases();
    for i in 0..cases {
        let seed = mix(base, u64::from(i));
        if let Err(msg) = run_case(strategy, &test, seed) {
            persist_failure(source_file, test_name, seed);
            panic!(
                "{test_name}: case {i}/{cases} (seed {seed:#018x}) failed: {msg}\n\
                 (seed persisted to the .proptest-regressions file; rerun to replay)"
            );
        }
    }
}
