//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub min: usize,
    /// Largest allowed size.
    pub max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u128) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`, with elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>` with a target size range.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; retry with a generous budget, then
        // accept whatever size was reached (still >= 1 if target >= 1,
        // unless the element domain is a single value).
        let mut attempts = 0usize;
        while out.len() < target && attempts < 64 * (target + 1) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        assert!(
            out.len() >= self.size.min,
            "btree_set reached only {} of the minimum {} distinct elements",
            out.len(),
            self.size.min
        );
        out
    }
}

/// Generates `BTreeSet`s whose size falls in `size` (element domain
/// permitting), with elements from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
