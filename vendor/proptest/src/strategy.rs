//! The [`Strategy`] trait and the primitive strategies: integer ranges,
//! tuples, mapping/filtering combinators, and regex-like string
//! generation (via [`crate::string`]).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of type `Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying (bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = rng.below(span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = rng.below(span as u128) as i128;
                ((*self.start() as i128) + off) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
