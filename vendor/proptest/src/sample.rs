//! Sampling strategies over fixed collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u128) as usize;
        self.options[k].clone()
    }
}

/// Picks one element of `options` uniformly.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}
