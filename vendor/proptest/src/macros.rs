//! The `proptest!` test-definition macro and the in-case assertion
//! macros (`prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//! `prop_assume!`).

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each test becomes a `#[test]` fn that drives
/// [`crate::test_runner::run_proptest`] with a tuple strategy built
/// from the argument list.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };

    // Without a config header.
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])*
            fn $name($($args)*) $body
            $($rest)*
        );
    };

    // Muncher: one test fn at a time.
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_proptest(
                &config,
                file!(),
                stringify!($name),
                &strategy,
                |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };

    // Muncher termination.
    (@munch ($config:expr)) => {};
}

/// Like `assert!`, but reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Like `assert_ne!`, but reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
