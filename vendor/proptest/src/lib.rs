//! An offline, in-tree shim of the [proptest](https://docs.rs/proptest)
//! property-testing crate, implementing exactly the API subset this
//! workspace uses. The container that builds this repository has no
//! network access to crates.io, so the real crate cannot be fetched;
//! this shim keeps every `proptest!` suite runnable.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic by default.** Cases derive from a fixed base seed
//!   mixed with the test name, so CI runs are reproducible. Set
//!   `PROPTEST_SEED` to explore a different region of the input space
//!   and `PROPTEST_CASES` to scale the case count.
//! * **No shrinking.** A failure reports the seed of the failing case
//!   and persists it to the sibling `.proptest-regressions` file; the
//!   seed is replayed (before any novel cases) on the next run.
//! * Regression files written by real proptest are understood: each
//!   `cc <hex> …` line is hashed into a replay seed.

pub mod collection;
mod macros;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a `proptest!`-based test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}
