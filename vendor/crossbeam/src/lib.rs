//! Offline stand-in for `crossbeam`'s scoped threads, implemented over
//! `std::thread::scope` (Rust ≥ 1.63).
//!
//! Only the `crossbeam::scope(|s| { s.spawn(|_| …); })` surface this
//! workspace uses is provided; semantics match crossbeam's: `scope`
//! joins every spawned thread and returns `Err` if any of them (or the
//! closure itself) panicked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle for spawning threads that may borrow from the enclosing
/// scope.
#[derive(Clone, Copy, Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope back so
    /// it can spawn nested work.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which threads borrowing `'env` data can be
/// spawned; joins them all before returning.
///
/// # Errors
///
/// Returns `Err` with the panic payload if the closure or any
/// unjoined spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut partials = vec![0u64; data.len()];
        super::scope(|s| {
            for (slot, &x) in partials.iter_mut().zip(&data) {
                s.spawn(move |_| *slot = x * 10);
            }
        })
        .expect("no panics");
        assert_eq!(partials, vec![10, 20, 30, 40]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
