//! Offline stand-in for `parking_lot`, backed by `std::sync` locks.
//!
//! Matches parking_lot's panic-free, non-poisoning API for the subset
//! this workspace uses (`Mutex::{new, lock, into_inner}`): a lock held
//! across a panic is simply recovered rather than poisoned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning: a panicked holder's state is recovered as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
