//! Minimal offline stand-in for the `memmap2` crate: shared read-only
//! and read-write file mappings, plus aligned `f64` views so downstream
//! crates can stay `#![forbid(unsafe_code)]`.
//!
//! The container this workspace builds in has no network route to a
//! crates registry (see `vendor/README.md`), so the subset of the
//! `memmap2` API the workspace needs is provided in-tree:
//!
//! * [`Mmap::map`] / [`MmapMut::map_mut`] — `MAP_SHARED` mappings of a
//!   whole [`File`] on unix, with a buffered read/write-back fallback on
//!   other platforms;
//! * [`Mmap::as_f64s`] / [`MmapMut::as_f64s_mut`] — safe aligned
//!   `&[f64]` reinterpretation of a little-endian payload, the one
//!   operation that would otherwise force `unsafe` into every consumer.
//!
//! Unlike upstream `memmap2`, the constructors here are *safe
//! functions*: the workspace only maps files it owns for the duration
//! of the mapping. The usual mmap caveat still applies — truncating a
//! file while it is mapped can fault the process — so callers must not
//! shrink a mapped file.

use std::fs::File;
use std::io;
use std::ops::{Deref, DerefMut};

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const MS_SYNC: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    }
}

#[cfg(unix)]
fn map_fd(file: &File, len: usize, writable: bool) -> io::Result<*mut u8> {
    use std::os::unix::io::AsRawFd;
    let prot = if writable {
        sys::PROT_READ | sys::PROT_WRITE
    } else {
        sys::PROT_READ
    };
    // SAFETY: len > 0 (checked by callers), the fd is a live open file,
    // and offset 0 is page-aligned. MAP_SHARED with a valid fd either
    // succeeds or returns MAP_FAILED (-1).
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            prot,
            sys::MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ptr.cast::<u8>())
    }
}

/// Reinterprets an 8-byte-aligned, 8-byte-multiple slice as `&[f64]`.
/// Returns `None` on misalignment, ragged length, or big-endian
/// targets (where the little-endian payload bytes are not host floats).
fn bytes_as_f64s(bytes: &[u8]) -> Option<&[f64]> {
    if cfg!(target_endian = "big") || !bytes.len().is_multiple_of(8) {
        return None;
    }
    // SAFETY: align_to checks alignment itself; f64 has no invalid bit
    // patterns, so any 8 bytes are a valid f64 value.
    let (head, body, tail) = unsafe { bytes.align_to::<f64>() };
    if head.is_empty() && tail.is_empty() {
        Some(body)
    } else {
        None
    }
}

/// Mutable variant of [`bytes_as_f64s`].
fn bytes_as_f64s_mut(bytes: &mut [u8]) -> Option<&mut [f64]> {
    if cfg!(target_endian = "big") || !bytes.len().is_multiple_of(8) {
        return None;
    }
    // SAFETY: as in `bytes_as_f64s`; the mutable borrow is exclusive.
    let (head, body, tail) = unsafe { bytes.align_to_mut::<f64>() };
    if head.is_empty() && tail.is_empty() {
        Some(body)
    } else {
        None
    }
}

/// A read-only shared mapping of an entire file.
pub struct Mmap {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

// SAFETY: the mapping is an owned region of plain bytes; nothing in it
// is thread-affine, and the struct never aliases the pointer mutably.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// # Errors
    ///
    /// Propagates metadata and `mmap(2)` failures.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let meta_len = file.metadata()?.len();
        let len = usize::try_from(meta_len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        #[cfg(unix)]
        {
            if len == 0 {
                // mmap(2) rejects zero-length maps; model one as empty.
                return Ok(Mmap {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let ptr = map_fd(file, len, false)?;
            Ok(Mmap { ptr, len })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut buf)?;
            Ok(Mmap { buf })
        }
    }

    /// A little-endian `f64` view of the bytes from `offset` to the end
    /// of the map. `None` when the tail is misaligned, not a multiple
    /// of 8 bytes, out of range, or the target is big-endian.
    #[must_use]
    pub fn as_f64s(&self, offset: usize) -> Option<&[f64]> {
        bytes_as_f64s(self.get(offset..)?)
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len describe the live mapping created in
            // `map`, unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: exactly the region mmap returned; errors on
            // teardown are unreportable and ignored, as in upstream.
            unsafe {
                let _ = sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.deref().len())
            .finish()
    }
}

/// A writable shared mapping of an entire file.
pub struct MmapMut {
    #[cfg(unix)]
    ptr: *mut u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
    #[cfg(not(unix))]
    file: File,
}

// SAFETY: as for `Mmap`; `&mut` access is serialized by the borrow
// checker, and concurrent `&self` reads of plain bytes are benign.
#[cfg(unix)]
unsafe impl Send for MmapMut {}
#[cfg(unix)]
unsafe impl Sync for MmapMut {}

impl MmapMut {
    /// Maps the whole of `file` (opened read-write) as a shared
    /// writable mapping: stores into the slice land in the file.
    ///
    /// # Errors
    ///
    /// Propagates metadata and `mmap(2)` failures.
    pub fn map_mut(file: &File) -> io::Result<MmapMut> {
        let meta_len = file.metadata()?.len();
        let len = usize::try_from(meta_len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        #[cfg(unix)]
        {
            if len == 0 {
                return Ok(MmapMut {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let ptr = map_fd(file, len, true)?;
            Ok(MmapMut { ptr, len })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut buf)?;
            Ok(MmapMut {
                buf,
                file: file.try_clone()?,
            })
        }
    }

    /// Synchronously writes dirty pages back to the file.
    ///
    /// # Errors
    ///
    /// Propagates `msync(2)` (or write-back) failures.
    pub fn flush(&self) -> io::Result<()> {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return Ok(());
            }
            // SAFETY: the live mapping created in `map_mut`.
            let rc = unsafe { sys::msync(self.ptr.cast(), self.len, sys::MS_SYNC) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(0))?;
            f.write_all(&self.buf)?;
            f.flush()
        }
    }

    /// A little-endian `f64` view of the bytes from `offset` to the end
    /// of the map; see [`Mmap::as_f64s`].
    #[must_use]
    pub fn as_f64s(&self, offset: usize) -> Option<&[f64]> {
        bytes_as_f64s(self.get(offset..)?)
    }

    /// Mutable variant of [`MmapMut::as_f64s`].
    #[must_use]
    pub fn as_f64s_mut(&mut self, offset: usize) -> Option<&mut [f64]> {
        bytes_as_f64s_mut(self.get_mut(offset..)?)
    }
}

impl Deref for MmapMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: as for `Mmap::deref`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
        #[cfg(not(unix))]
        {
            &self.buf
        }
    }
}

impl DerefMut for MmapMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &mut [];
            }
            // SAFETY: exclusive access through `&mut self`.
            unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
        }
        #[cfg(not(unix))]
        {
            &mut self.buf
        }
    }
}

#[cfg(unix)]
impl Drop for MmapMut {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: as for `Mmap::drop`.
            unsafe {
                let _ = sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

impl std::fmt::Debug for MmapMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapMut")
            .field("len", &self.deref().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("memmap2_vendor_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn read_only_map_sees_file_bytes() {
        let p = temp("ro");
        std::fs::File::create(&p)
            .unwrap()
            .write_all(b"hello mapped world")
            .unwrap();
        let map = Mmap::map(&std::fs::File::open(&p).unwrap()).unwrap();
        assert_eq!(&map[..], b"hello mapped world");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn empty_file_maps_as_empty_slice() {
        let p = temp("empty");
        std::fs::File::create(&p).unwrap();
        let map = Mmap::map(&std::fs::File::open(&p).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_f64s(0), Some(&[][..]));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn writable_map_round_trips_f64s_through_the_file() {
        let p = temp("rw");
        let vals = [1.5f64, -2.25, f64::INFINITY, 0.0];
        {
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&p)
                .unwrap();
            file.set_len(32).unwrap();
            let mut map = MmapMut::map_mut(&file).unwrap();
            map.as_f64s_mut(0).unwrap().copy_from_slice(&vals);
            map.flush().unwrap();
        }
        let bytes = std::fs::read(&p).unwrap();
        let expect: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(bytes, expect);
        let map = Mmap::map(&std::fs::File::open(&p).unwrap()).unwrap();
        assert_eq!(map.as_f64s(0).unwrap(), &vals);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn misaligned_or_ragged_views_are_refused() {
        let p = temp("ragged");
        std::fs::File::create(&p)
            .unwrap()
            .write_all(&[0u8; 20])
            .unwrap();
        let map = Mmap::map(&std::fs::File::open(&p).unwrap()).unwrap();
        // 20 - 0 and 20 - 4 are not multiples of 8; 20 - 4 is also
        // misaligned relative to the page-aligned base.
        assert!(map.as_f64s(0).is_none());
        assert!(map.as_f64s(4).is_none());
        assert_eq!(map.as_f64s(4 + 16), Some(&[][..]));
        assert!(map.as_f64s(99).is_none());
        let _ = std::fs::remove_file(&p);
    }
}
