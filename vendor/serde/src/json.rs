//! A minimal JSON data model: the offline stand-in for `serde_json`.
//!
//! [`Value`] is the self-describing tree every serializable type lowers
//! to via [`ToValue`] and is rebuilt from via [`FromValue`]; the tree
//! round-trips through RFC 8259 text with [`Value::to_json`] /
//! [`Value::parse`]. Object key order is preserved (insertion order),
//! so emission is deterministic.
//!
//! Unlike `serde_json`, numbers keep their integer-ness: unsigned and
//! signed integers survive a round trip exactly (no `f64` detour), so
//! 64-bit counters never lose precision. Non-finite floats have no JSON
//! representation and are emitted as `null`; producers that must stay
//! finite should validate before emission (see
//! `stencil_telemetry::validate`).

use std::fmt;

/// A parse or conversion error, with the byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the input where parsing failed (0 for
    /// conversion errors raised by [`FromValue`]).
    pub offset: usize,
}

impl JsonError {
    /// A conversion (non-parse) error.
    #[must_use]
    pub fn conversion(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (u64-exact).
    UInt(u64),
    /// A negative integer (i64-exact; non-negative integers parse as
    /// [`Value::UInt`]).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for every number that is not a finite float — i.e. a NaN or
    /// infinity (integers are always finite). Used by metric validators
    /// to reject values JSON cannot represent.
    #[must_use]
    pub fn is_non_finite(&self) -> bool {
        matches!(*self, Value::Float(x) if !x.is_finite())
    }

    /// Walks the tree and returns the path of the first non-finite
    /// number, if any (e.g. `metrics.engine.throughput`).
    #[must_use]
    pub fn find_non_finite(&self) -> Option<String> {
        fn walk(v: &Value, path: &str) -> Option<String> {
            match v {
                Value::Array(items) => items
                    .iter()
                    .enumerate()
                    .find_map(|(i, item)| walk(item, &format!("{path}[{i}]"))),
                Value::Object(fields) => fields.iter().find_map(|(k, item)| {
                    let p = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    walk(item, &p)
                }),
                _ if v.is_non_finite() => Some(path.to_owned()),
                _ => None,
            }
        }
        walk(self, "")
    }

    /// Renders compact JSON text.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders indented JSON text (two spaces per level).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Value::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so floats
                    // re-parse as floats.
                    let _ = fmt::Write::write_fmt(out, format_args!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first syntax
    /// error, including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                message: "trailing characters after JSON value".into(),
                offset: pos,
            });
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(message: impl Into<String>, offset: usize) -> JsonError {
    JsonError {
        message: message.into(),
        offset,
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(format!("expected `{}`", b as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err("expected `,` or `]` in array", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(err("expected `,` or `}` in object", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(format!("expected `{word}`"), *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let start = *pos;
        // Fast path: advance over a plain UTF-8 run.
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(
            std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| err("invalid UTF-8 in string", start))?,
        );
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *bytes.get(*pos).ok_or_else(|| err("bad escape", *pos))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| err("invalid \\u escape (surrogate)", *pos))?;
                        out.push(c);
                    }
                    _ => return Err(err("unknown escape", *pos - 1)),
                }
            }
            Some(_) => unreachable!("loop stops only at quote or backslash"),
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return Err(err("truncated \\u escape", *pos));
    }
    let hex =
        std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|_| err("bad \\u escape", *pos))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| err("bad \\u escape", *pos))?;
    *pos += 4;
    Ok(code)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    if text.is_empty() || text == "-" {
        return Err(err("expected a JSON value", start));
    }
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| err(format!("invalid number `{text}`"), start))
}

/// Lowers a value into the JSON data model.
///
/// Implemented by hand (or via helper builders) on types that define a
/// stable wire schema — the offline analogue of `serde::Serialize` with
/// `serde_json::to_value`.
pub trait ToValue {
    /// The JSON tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the JSON data model — the offline analogue of
/// `serde::Deserialize` with `serde_json::from_value`.
pub trait FromValue: Sized {
    /// Parses `self` out of a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the tree's shape or a field's type
    /// does not match.
    fn from_value(value: &Value) -> Result<Self, JsonError>;
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl FromValue for $t {
            fn from_value(value: &Value) -> Result<Self, JsonError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| JsonError::conversion("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| JsonError::conversion("integer out of range"))
            }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64);

impl ToValue for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl FromValue for usize {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        let n = value
            .as_u64()
            .ok_or_else(|| JsonError::conversion("expected unsigned integer"))?;
        usize::try_from(n).map_err(|_| JsonError::conversion("integer out of range"))
    }
}

impl ToValue for i64 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::UInt(n),
            Err(_) => Value::Int(*self),
        }
    }
}

impl FromValue for i64 {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        value
            .as_i64()
            .ok_or_else(|| JsonError::conversion("expected integer"))
    }
}

impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromValue for f64 {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        // `null` reads back as NaN: emission writes non-finite floats as
        // null, and this keeps the round trip total.
        if *value == Value::Null {
            return Ok(f64::NAN);
        }
        value
            .as_f64()
            .ok_or_else(|| JsonError::conversion("expected number"))
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromValue for bool {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::conversion("expected bool"))
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromValue for String {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::conversion("expected string"))
    }
}

impl ToValue for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: FromValue> FromValue for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::conversion("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: FromValue> FromValue for Option<T> {
    fn from_value(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Null => Ok(None),
            v => T::from_value(v).map(Some),
        }
    }
}

/// Builds an object value from `(key, value)` pairs — the idiomatic way
/// to implement [`ToValue`] on a struct.
#[must_use]
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Reads a required field of an object, with the field name in the
/// error message.
///
/// # Errors
///
/// Returns [`JsonError`] if the field is absent or has the wrong type.
pub fn field<T: FromValue>(value: &Value, key: &str) -> Result<T, JsonError> {
    let v = value
        .get(key)
        .ok_or_else(|| JsonError::conversion(format!("missing field `{key}`")))?;
    T::from_value(v).map_err(|e| JsonError::conversion(format!("field `{key}`: {}", e.message)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "18446744073709551615", "-7"] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
        assert_eq!(Value::parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(Value::Float(1.5).to_json(), "1.5");
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn u64_counters_survive_exactly() {
        let v = Value::UInt(u64::MAX);
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\tü \u{1}".to_owned());
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert_eq!(
            Value::parse(r#""A\n""#).unwrap(),
            Value::Str("A\n".to_owned())
        );
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"name":"denoise","fifos":[{"cap":1023,"hw":1023},{"cap":1,"hw":1}],"ok":true,"ii":1.004}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("denoise"));
        assert_eq!(
            v.get("fifos").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
        let pretty = v.to_json_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_emit_null_and_are_detectable() {
        let v = object(vec![
            ("ok", Value::Float(2.0)),
            ("bad", Value::Float(f64::INFINITY)),
        ]);
        assert_eq!(v.to_json(), r#"{"ok":2.0,"bad":null}"#);
        assert_eq!(v.find_non_finite(), Some("bad".to_owned()));
        let clean = Value::parse(r#"{"a":[1,2.5],"b":"x"}"#).unwrap();
        assert_eq!(clean.find_non_finite(), None);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").unwrap_err().offset > 0);
        assert!(Value::parse(r#"{"a" 1}"#).is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn field_helpers() {
        let v = Value::parse(r#"{"n":3,"s":"x","opt":null}"#).unwrap();
        assert_eq!(field::<u64>(&v, "n").unwrap(), 3);
        assert_eq!(field::<String>(&v, "s").unwrap(), "x");
        assert_eq!(field::<Option<u64>>(&v, "opt").unwrap(), None);
        assert!(field::<u64>(&v, "missing").is_err());
        assert!(field::<bool>(&v, "n").is_err());
    }
}
