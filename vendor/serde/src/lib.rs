//! Offline stand-in for the `serde` facade.
//!
//! The workspace only uses serde as derive markers on plan/report types
//! (no wire format is produced in this environment), so the traits are
//! empty markers and the derives expand to empty impls. Swapping the
//! workspace dependency back to the real crates.io `serde` requires no
//! source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for types that can be serialized.
///
/// The derive accepts the usual `#[serde(...)]` attributes and ignores
/// them.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
