//! Offline stand-in for the `serde` facade.
//!
//! Two layers live here:
//!
//! * The derive markers: most of the workspace uses serde derives only
//!   as trait markers on plan/report types, so [`Serialize`] /
//!   [`Deserialize`] are empty traits and the derives expand to empty
//!   impls. Swapping the workspace dependency back to the crates.io
//!   `serde` requires no source changes.
//! * The [`json`] data model: a real, minimal `serde_json`-shaped
//!   [`json::Value`] tree with RFC 8259 emission/parsing plus the
//!   [`json::ToValue`] / [`json::FromValue`] conversion traits, used by
//!   `stencil-telemetry` to give runtime metrics a machine-readable
//!   wire format. Against the real crates this module maps to
//!   `serde_json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

/// Marker for types that can be serialized.
///
/// The derive accepts the usual `#[serde(...)]` attributes and ignores
/// them.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
