//! Integration test: the sharded serving front-end is a *transparent*
//! execution surface — concurrency, sharding, and plan caching must
//! never change a single output bit.
//!
//! Three guarantees are certified here:
//!
//! * **Concurrent differential parity.** N submitter threads pushing
//!   every paper benchmark through one [`ServiceFront`] produce
//!   bit-identical outputs to sequential single-[`Session`] runs of the
//!   same jobs, while the aggregated service telemetry passes the
//!   `ServiceResidency` validator rule (peak resident ≤ admitted bound,
//!   exact output conservation, exact admission arithmetic).
//! * **Sharded reassembly.** For random grid extents and shard counts
//!   (proptest), splitting a job into halo-overlapped row bands and
//!   concatenating the band outputs equals the unsharded run — the
//!   serving analogue of the Appendix 9.4 band decomposition.
//! * **Plan-cache steady state.** Repeat jobs over the same geometry
//!   never rebuild a `TilePlan` inside a session (`tile_plans_built`
//!   stays 0) and hit the shared cache instead.

use std::sync::Arc;

use proptest::prelude::*;
use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_engine::{
    ExecMode, InputGrid, JobRequest, ServiceConfig, ServiceFront, ShardPolicy, Submission,
};
use stencil_kernels::{denoise, paper_suite, Benchmark};
use stencil_telemetry::validate_report;

/// Deterministic pseudo-random input values for `n` grid cells.
fn input_values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 1024.0 - 8.0
        })
        .collect()
}

/// The sequential single-session reference for one job.
fn sequential_outputs(bench: &Benchmark, extents: &[i64], input: &[f64]) -> Vec<f64> {
    let spec = bench.spec_for(extents).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let idx = plan.input_domain().index().expect("input index");
    let grid = InputGrid::new(&idx, input).expect("sized input");
    stencil_engine::Session::build(&plan, &bench.stage())
        .expect("session build")
        .run(&grid)
        .expect("session run")
        .outputs
}

#[test]
fn concurrent_serving_matches_sequential_sessions_bit_for_bit() {
    const SUBMITTERS: usize = 4;

    // One job per paper benchmark, per submitter thread, with
    // per-thread seeds so identical geometries carry distinct values.
    let jobs: Vec<(Benchmark, Vec<i64>)> = paper_suite()
        .into_iter()
        .map(|b| {
            let extents = scaled_extents(&b, 3_000);
            (b, extents)
        })
        .collect();

    let front = ServiceFront::new(ServiceConfig {
        workers: 4,
        queue_depth: 256,
        memory_budget: 0,
        session_threads: 1,
    });

    // (submitter, job index, expected outputs) for every admitted id.
    let mut expected: Vec<Option<Vec<f64>>> = Vec::new();
    let ids = std::sync::Mutex::new(Vec::<(usize, usize, usize)>::new());
    crossbeam::scope(|s| {
        for t in 0..SUBMITTERS {
            let front = &front;
            let jobs = &jobs;
            let ids = &ids;
            s.spawn(move |_| {
                for (j, (bench, extents)) in jobs.iter().enumerate() {
                    let n: i64 = extents.iter().product();
                    let seed = 0xD1FF ^ ((t as u64) << 32) ^ (j as u64);
                    let input = Arc::new(input_values(n as usize, seed));
                    let req = JobRequest {
                        benchmark: bench.clone(),
                        extents: Some(extents.clone()),
                        mode: ExecMode::InCore,
                        shards: ShardPolicy::Auto,
                        input: input.into(),
                    };
                    // The queue is deep enough for the whole batch, so
                    // every submission must be admitted.
                    match front.submit(&req).expect("typed submit") {
                        Submission::Admitted(id) => {
                            ids.lock().unwrap().push((t, j, id));
                        }
                        Submission::Rejected(r) => {
                            panic!("depth-256 queue rejected: {r:?}")
                        }
                    }
                }
            });
        }
    })
    .expect("submitter threads");

    let ids = ids.into_inner().unwrap();
    expected.resize(ids.len(), None);
    for (t, j, id) in &ids {
        let (bench, extents) = &jobs[*j];
        let n: i64 = extents.iter().product();
        let seed = 0xD1FF ^ ((*t as u64) << 32) ^ (*j as u64);
        let input = input_values(n as usize, seed);
        expected[*id] = Some(sequential_outputs(bench, extents, &input));
    }

    let outcome = front.finish();
    assert_eq!(outcome.jobs.len(), SUBMITTERS * jobs.len());
    for (id, want) in expected.iter().enumerate() {
        let job = &outcome.jobs[id];
        assert!(job.error.is_none(), "{}: {:?}", job.label, job.error);
        assert_eq!(
            Some(&job.outputs),
            want.as_ref(),
            "{} diverged from its sequential session",
            job.label
        );
    }

    let m = &outcome.metrics;
    assert_eq!(m.jobs_submitted, (SUBMITTERS * jobs.len()) as u64);
    assert_eq!(m.jobs_admitted, m.jobs_submitted);
    assert_eq!(m.jobs_failed, 0);
    assert_eq!(m.outputs_produced, m.outputs_expected);
    // Every (benchmark, shard geometry) pair misses once and hits for
    // the other submitters; no session ever rebuilds a tile plan.
    assert_eq!(m.tile_plans_built, 0);
    assert!(m.plan_cache_hits > 0);
    assert_eq!(validate_report(&outcome.report("serving")), vec![]);
}

#[test]
fn repeat_jobs_keep_the_plan_cache_in_steady_state() {
    let bench = denoise();
    let extents = vec![48i64, 40];
    let input = Arc::new(input_values(48 * 40, 11));
    let front = ServiceFront::new(ServiceConfig {
        workers: 2,
        queue_depth: 64,
        memory_budget: 0,
        session_threads: 1,
    });
    let req = JobRequest {
        benchmark: bench,
        extents: Some(extents),
        mode: ExecMode::Streaming {
            chunk_rows: Some(6),
        },
        shards: ShardPolicy::Fixed(2),
        input: input.into(),
    };
    for _ in 0..8 {
        assert!(matches!(
            front.submit(&req).expect("submit"),
            Submission::Admitted(_)
        ));
    }
    let outcome = front.finish();
    let m = &outcome.metrics;
    // 48 output-bearing rows split evenly in two give both bands the
    // *same* 25-row geometry, so warmup builds exactly one plan; after
    // that every shard of every repeat is a cache hit and no session
    // builds a plan.
    assert_eq!(m.plan_cache_misses, 1);
    assert_eq!(m.plan_cache_hits, 8 * 2 - 1);
    assert_eq!(m.tile_plans_built, 0);
    let first = &outcome.jobs[0].outputs;
    assert!(outcome.jobs.iter().all(|j| &j.outputs == first));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded reassembly ≡ unsharded for random extents and shard
    /// counts, across in-core and streaming shard execution.
    #[test]
    fn sharded_reassembly_matches_unsharded(
        rows in 8i64..40,
        cols in 4i64..24,
        shards in 1usize..9,
        streaming in 0u8..2,
        seed in 0u64..1_000_000_000_000,
    ) {
        let streaming = streaming == 1;
        let bench = denoise();
        let extents = vec![rows, cols];
        let input = Arc::new(input_values((rows * cols) as usize, seed));
        let reference = sequential_outputs(&bench, &extents, &input);

        let front = ServiceFront::new(ServiceConfig {
            workers: 3,
            queue_depth: 64,
            memory_budget: 0,
            session_threads: 1,
        });
        let mode = if streaming {
            ExecMode::Streaming { chunk_rows: Some(3) }
        } else {
            ExecMode::InCore
        };
        let req = JobRequest {
            benchmark: bench,
            extents: Some(extents),
            mode,
            shards: ShardPolicy::Fixed(shards),
            input: input.into(),
        };
        let sub = front.submit(&req).expect("typed submit");
        prop_assert!(matches!(sub, Submission::Admitted(_)));
        let outcome = front.finish();
        let job = &outcome.jobs[0];
        prop_assert!(job.error.is_none(), "{:?}", job.error);
        prop_assert_eq!(&job.outputs, &reference);
        prop_assert_eq!(outcome.metrics.shards_over_bound, 0);
        prop_assert_eq!(validate_report(&outcome.report("serving")), vec![]);
    }
}
