//! Property-based cross-validation over randomized stencil windows and
//! grids: the planner's guarantees and the simulator's invariants must
//! hold for *any* stencil computation, not just the paper's suite.

use proptest::prelude::*;
use stencil_core::{verify_plan, MemorySystemPlan, ReuseAnalysis, StencilSpec};
use stencil_polyhedral::{Point, Polyhedron};
use stencil_sim::Machine;
use stencil_uniform::multidim_cyclic;

/// A random 2-D window of 2..=7 distinct offsets within radius 2.
fn window_2d() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set(((-2i64..=2), (-2i64..=2)), 2..=7)
        .prop_map(|set| set.into_iter().map(|(a, b)| Point::new(&[a, b])).collect())
}

/// A random interior grid large enough for any radius-2 window.
fn grid_2d() -> impl Strategy<Value = (i64, i64)> {
    ((10i64..28), (10i64..36))
}

fn spec_for(window: &[Point], rows: i64, cols: i64) -> StencilSpec {
    let lo0 = window.iter().map(|f| f[0]).min().unwrap().min(0).abs();
    let hi0 = window.iter().map(|f| f[0]).max().unwrap().max(0);
    let lo1 = window.iter().map(|f| f[1]).min().unwrap().min(0).abs();
    let hi1 = window.iter().map(|f| f[1]).max().unwrap().max(0);
    StencilSpec::new(
        "random",
        Polyhedron::rect(&[(lo0, rows - 1 - hi0), (lo1, cols - 1 - hi1)]),
        window.to_vec(),
    )
    .expect("valid random spec")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generated plan always hits the n-1 bank bound, satisfies both
    /// deadlock-freedom conditions, and never exceeds [8]'s buffer size.
    #[test]
    fn planner_guarantees((rows, cols) in grid_2d(), window in window_2d()) {
        let spec = spec_for(&window, rows, cols);
        let analysis = ReuseAnalysis::of(&spec).expect("analysis");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let report = verify_plan(&plan, &analysis);

        prop_assert_eq!(plan.bank_count(), window.len() - 1);
        prop_assert!(report.deadlock_free());
        prop_assert!(report.banks_optimal());
        // Rectangular grids: linearity holds, so size is optimal too.
        prop_assert!(analysis.linearity_holds());
        prop_assert!(report.size_optimal());

        let base = multidim_cyclic(&window, &[rows, cols]);
        prop_assert!(plan.bank_count() < base.banks || base.banks == window.len());
        prop_assert!(plan.total_buffer_size() <= base.total_size);
    }

    /// Every random design simulates to completion, fully pipelined,
    /// with every FIFO's occupancy exactly reaching (never exceeding)
    /// its allocated maximum reuse distance.
    #[test]
    fn simulator_invariants((rows, cols) in grid_2d(), window in window_2d()) {
        let spec = spec_for(&window, rows, cols);
        let analysis = ReuseAnalysis::of(&spec).expect("analysis");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let mut machine = Machine::new(&plan).expect("machine");
        let stats = machine.run(5_000_000).expect("run");

        prop_assert_eq!(stats.outputs, analysis.iteration_count());
        prop_assert!(stats.fully_pipelined(),
            "cycles {} > ideal {}", stats.cycles, stats.ideal_cycles);
        prop_assert!(stats.chains[0].occupancy_within_capacity());
        prop_assert!(stats.chains[0].occupancy_reaches_capacity(),
            "occupancy {:?} vs capacity {:?}",
            stats.chains[0].fifo_max_occupancy,
            stats.chains[0].fifo_capacity);
        // Each filter forwarded exactly one element per iteration; the
        // rest of what it saw was discarded. Trailing stream elements no
        // filter needs may remain in flight when the kernel finishes, so
        // consumed counts are bounded by (not equal to) the input size.
        for (fwd, disc) in stats.chains[0].forwarded.iter()
            .zip(&stats.chains[0].discarded)
        {
            prop_assert_eq!(*fwd, analysis.iteration_count());
            prop_assert!(*fwd + *disc <= analysis.input_count());
        }
        // The head of the chain must have streamed at least up to the
        // last element any reference needs.
        prop_assert!(stats.chains[0].inputs_streamed <= analysis.input_count());
        prop_assert!(
            stats.chains[0].inputs_streamed + 1 >= stats.cycles.min(analysis.input_count())
        );
    }

    /// Any bandwidth tradeoff point still simulates correctly.
    #[test]
    fn tradeoff_points_simulate(
        (rows, cols) in grid_2d(),
        window in window_2d(),
        pick in 0usize..4,
    ) {
        let spec = spec_for(&window, rows, cols);
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let streams = 1 + pick % window.len();
        let traded = plan.with_offchip_streams(streams).expect("tradeoff");
        let stats = Machine::new(&traded).expect("machine")
            .run(5_000_000).expect("run");
        let expected = spec.iteration_domain().count().expect("count");
        prop_assert_eq!(stats.outputs, expected);
        prop_assert!(stats.fully_pipelined());
    }
}
