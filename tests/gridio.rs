//! Integration test: the `.sgrid` binary grid format and the
//! mmap-backed zero-copy streaming path.
//!
//! Four guarantees are certified here:
//!
//! * **Byte-level round-trip.** For every paper benchmark, packing the
//!   input grid to a `.sgrid` file and mapping it back reproduces each
//!   value bit-for-bit (`to_bits` equality), and streaming the kernel
//!   from the mapping is bit-identical to the in-memory run while the
//!   grid-io telemetry records zero payload copies.
//! * **Corruption is typed, never a panic.** Proptest flips arbitrary
//!   header bytes, truncates, and pads files; every structural defect
//!   surfaces as a typed [`GridFormatError`] from `MappedGrid::open`.
//! * **Streaming I/O fixes hold.** [`ReadSource`] reports truncated
//!   payloads with a typed error carrying the partial-value byte
//!   count; [`WriteSink`] flushes on `finish()` rather than relying on
//!   drop order; [`MmapSink`] refuses an incomplete finalize.
//! * **Oversized jobs are typed.** Grid extents whose element or byte
//!   count overflows are rejected by the serving front-end as
//!   [`EngineError::JobTooLarge`], not silently saturated.

use std::path::PathBuf;

use proptest::prelude::*;
use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_engine::{
    pack_grid, EngineError, ExecMode, GridFormatError, InputGrid, JobRequest, MappedGrid, MmapSink,
    MmapSource, ReadSource, RowSink, RowSource, ServiceConfig, ServiceFront, Session, ShardPolicy,
    SliceSource, VecSink, WriteSink,
};
use stencil_kernels::{denoise, paper_suite};

/// Deterministic pseudo-random values for `n` grid cells.
fn input_values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 1024.0 - 8.0
        })
        .collect()
}

/// A fresh path in a per-test temp directory.
fn temp_path(dir: &str, file: &str) -> PathBuf {
    let d = std::env::temp_dir().join(dir);
    std::fs::create_dir_all(&d).expect("temp dir");
    d.join(file)
}

/// A small but valid `.sgrid` byte image for the corruption tests.
fn valid_sgrid_bytes(dir: &str) -> Vec<u8> {
    let path = temp_path(dir, "valid.sgrid");
    pack_grid(&path, &[5, 7], &input_values(35, 3)).expect("pack");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn every_paper_benchmark_round_trips_through_sgrid_bit_for_bit() {
    for bench in paper_suite() {
        let extents = scaled_extents(&bench, 20_000);
        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let in_idx = plan.input_domain().index().expect("input index");
        let bb = in_idx.bounding_box().expect("non-empty input domain");
        let grid_extents: Vec<u64> = bb.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).collect();
        let n = usize::try_from(in_idx.len()).expect("domain fits");
        let vals = input_values(n, 0x517E ^ bench.name().len() as u64);

        let path = temp_path(
            "stencil_gridio_roundtrip",
            &format!("{}.sgrid", bench.name()),
        );
        pack_grid(&path, &grid_extents, &vals).expect("pack");
        let grid = MappedGrid::open(&path).expect("map");
        assert_eq!(grid.values().len(), vals.len(), "{}", bench.name());
        for (i, (a, b)) in grid.values().iter().zip(&vals).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: value {i} corrupted in round-trip",
                bench.name()
            );
        }

        // Streaming from the mapping == streaming from memory, with
        // zero payload copies recorded.
        let mut source = SliceSource::new(&vals);
        let mut sink = VecSink::new();
        let session = Session::build(&plan, &bench.stage()).expect("session");
        session
            .mode(ExecMode::Streaming { chunk_rows: None })
            .run_streaming(&mut source, &mut sink)
            .expect("in-memory streaming");
        let reference = sink.values;

        let mut source = MmapSource::from_grid(grid);
        let mut sink = VecSink::new();
        let session = Session::build(&plan, &bench.stage()).expect("session");
        let run = session
            .mode(ExecMode::Streaming { chunk_rows: None })
            .run_streaming(&mut source, &mut sink)
            .expect("mapped streaming");
        assert_eq!(
            sink.values.len(),
            reference.len(),
            "{}: output count",
            bench.name()
        );
        for (i, (a, b)) in sink.values.iter().zip(&reference).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: output {i} diverged between mapped and in-memory streaming",
                bench.name()
            );
        }
        let io = run.grid_io.expect("grid-io block");
        assert_eq!(
            io.values_copied,
            0,
            "{}: copies on mapped path",
            bench.name()
        );
        assert_eq!(io.values_mapped, vals.len() as u64, "{}", bench.name());
        assert!(io.zero_copy(), "{}", bench.name());
        assert!(io.sink_finalized, "{}", bench.name());
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    /// Flipping any single byte of the fixed header (or any byte of the
    /// extents table) yields a typed error or a still-consistent file —
    /// never a panic. The exact-length rule makes every header
    /// corruption detectable: a changed extent changes the expected
    /// payload length, which no longer matches the file.
    #[test]
    fn corrupt_header_bytes_are_typed_errors(offset in 0usize..40, bits in 1u8..=255) {
        let mut bytes = valid_sgrid_bytes("stencil_gridio_prop");
        prop_assume!(offset < bytes.len());
        bytes[offset] ^= bits;
        let path = temp_path(
            "stencil_gridio_prop",
            &format!("flip_{offset}_{bits}.sgrid"),
        );
        std::fs::write(&path, &bytes).expect("write corrupted");
        let result = MappedGrid::open(&path);
        let _ = std::fs::remove_file(&path);
        // The header is 24 fixed bytes + 16 extent bytes; any flip in
        // that range breaks magic, version, dtype, dims, or the
        // extents-vs-file-length equation.
        prop_assert!(result.is_err(), "flip at {offset} accepted");
    }

    /// Truncating anywhere, or padding with trailing bytes, is a typed
    /// error — never a panic, never a silently short grid.
    #[test]
    fn truncated_or_padded_files_are_typed_errors(cut in 0usize..320, pad in 1usize..64) {
        let bytes = valid_sgrid_bytes("stencil_gridio_prop");
        prop_assume!(cut < bytes.len());

        let path = temp_path("stencil_gridio_prop", &format!("cut_{cut}.sgrid"));
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        let truncated = MappedGrid::open(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(truncated.is_err(), "truncation to {cut} bytes accepted");

        let path = temp_path("stencil_gridio_prop", &format!("pad_{pad}.sgrid"));
        let mut padded = bytes.clone();
        padded.extend(std::iter::repeat_n(0xAAu8, pad));
        std::fs::write(&path, &padded).expect("write padded");
        let result = MappedGrid::open(&path);
        let _ = std::fs::remove_file(&path);
        match result {
            Err(GridFormatError::TrailingBytes { extra }) => {
                prop_assert_eq!(extra, pad as u64);
            }
            other => prop_assert!(false, "padded file: {other:?}"),
        }
    }
}

#[test]
fn read_source_types_truncation_instead_of_hanging_or_panicking() {
    // 2 whole values plus 5 stray bytes of a third.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1.5f64.to_le_bytes());
    bytes.extend_from_slice(&(-2.5f64).to_le_bytes());
    bytes.extend_from_slice(&[1, 2, 3, 4, 5]);
    let mut source = ReadSource::new(std::io::Cursor::new(bytes));
    let mut buf = Vec::new();
    let err = source.fill_row(4, &mut buf).expect_err("short payload");
    match err {
        EngineError::TruncatedInput {
            values_expected,
            values_got,
            trailing_bytes,
        } => {
            assert_eq!(values_expected, 4);
            assert_eq!(values_got, 2);
            assert_eq!(trailing_bytes, 5);
        }
        other => panic!("expected TruncatedInput, got {other:?}"),
    }
}

#[test]
fn write_sink_finish_flushes_buffered_rows_to_disk() {
    let path = temp_path("stencil_gridio_sink", "flush.bin");
    let file = std::fs::File::create(&path).expect("create");
    let mut sink = WriteSink::new(std::io::BufWriter::new(file));
    sink.push_row(&[1.0, 2.0, 3.0]).expect("push");
    sink.finish().expect("finish");
    // Read while the BufWriter is still alive: finish() must already
    // have flushed, not rely on Drop.
    let bytes = std::fs::read(&path).expect("read back");
    assert_eq!(bytes.len(), 24, "finish() left rows in the buffer");
    drop(sink);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn write_sink_surfaces_flush_failures() {
    /// A writer whose flush always fails, as a full disk would.
    struct FailingFlush;
    impl std::io::Write for FailingFlush {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }
    let mut sink = WriteSink::new(FailingFlush);
    sink.push_row(&[1.0]).expect("buffered push");
    let err = sink.finish().expect_err("flush failure must surface");
    assert!(matches!(err, EngineError::Sink { .. }), "{err:?}");
}

#[test]
fn mmap_sink_round_trips_and_rejects_partial_grids() {
    let path = temp_path("stencil_gridio_sink", "out.sgrid");
    let mut sink = MmapSink::create(&path, &[2, 3]).expect("create");
    sink.push_row(&[1.0, 2.0, 3.0]).expect("row 0");
    let err = sink.finish().expect_err("half-written grid");
    assert!(matches!(err, EngineError::Sink { .. }), "{err:?}");
    sink.push_row(&[4.0, 5.0, 6.0]).expect("row 1");
    sink.finish().expect("complete finish");
    drop(sink);
    let grid = MappedGrid::open(&path).expect("reopen");
    assert_eq!(grid.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn overflowing_job_extents_are_rejected_as_job_too_large() {
    let front = ServiceFront::new(ServiceConfig::default());
    let req = JobRequest {
        benchmark: denoise(),
        extents: Some(vec![i64::MAX / 4, 16, 16]),
        mode: ExecMode::InCore,
        shards: ShardPolicy::Whole,
        input: vec![0.0; 8].into(),
    };
    let err = front.submit(&req).expect_err("overflowing extents");
    assert!(
        matches!(err, EngineError::JobTooLarge { .. }),
        "expected JobTooLarge, got {err:?}"
    );
    let _ = front.finish();
}

#[test]
fn in_core_session_reads_a_mapped_grid_without_copying() {
    // The in-core path also accepts a mapped source: run_streaming
    // materializes nothing when the source advertises a mapping.
    let bench = denoise();
    let extents = scaled_extents(&bench, 10_000);
    let spec = bench.spec_for(&extents).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let in_idx = plan.input_domain().index().expect("index");
    let bb = in_idx.bounding_box().expect("bounding box");
    let grid_extents: Vec<u64> = bb.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).collect();
    let n = usize::try_from(in_idx.len()).expect("fits");
    let vals = input_values(n, 99);
    let path = temp_path("stencil_gridio_incore", "in.sgrid");
    pack_grid(&path, &grid_extents, &vals).expect("pack");

    let input = InputGrid::new(&in_idx, &vals).expect("grid");
    let session = Session::build(&plan, &bench.stage()).expect("session");
    let reference = session.run(&input).expect("in-core run").outputs;

    let mut source = MmapSource::open(&path).expect("open");
    let mut sink = VecSink::new();
    let session = Session::build(&plan, &bench.stage()).expect("session");
    let run = session
        .mode(ExecMode::InCore)
        .run_streaming(&mut source, &mut sink)
        .expect("mapped in-core run");
    assert_eq!(sink.values, reference);
    let io = run.grid_io.expect("grid-io block");
    assert_eq!(io.values_copied, 0);
    assert!(io.zero_copy());
    assert!(io.sink_finalized);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pack_grid_is_what_a_manual_writer_would_produce() {
    // Belt and braces on the layout: magic, version, dtype, dims,
    // extents, then LE f64 payload — byte-for-byte.
    let path = temp_path("stencil_gridio_layout", "layout.sgrid");
    pack_grid(&path, &[2, 2], &[0.5, 1.5, -2.0, 3.25]).expect("pack");
    let got = std::fs::read(&path).expect("read");
    let mut want = Vec::new();
    want.extend_from_slice(b"SGRIDBIN");
    want.extend_from_slice(&1u32.to_le_bytes()); // version
    want.extend_from_slice(&1u32.to_le_bytes()); // dtype f64le
    want.extend_from_slice(&2u64.to_le_bytes()); // ndim
    want.extend_from_slice(&2u64.to_le_bytes()); // extent 0
    want.extend_from_slice(&2u64.to_le_bytes()); // extent 1
    for v in [0.5f64, 1.5, -2.0, 3.25] {
        want.extend_from_slice(&v.to_le_bytes());
    }
    assert_eq!(got, want);
    let _ = std::fs::remove_file(&path);
}
