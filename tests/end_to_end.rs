//! Cross-crate integration: specification → analysis → plan → verified
//! optimality → cycle-accurate simulation → value-exact results, for
//! the whole benchmark suite.

use stencil_bench::scaled_extents;
use stencil_core::{verify_plan, MemorySystemPlan, ReuseAnalysis};
use stencil_kernels::{
    extra_suite, paper_suite, run_golden, skewed_denoise, Benchmark, GridValues,
};
use stencil_polyhedral::Polyhedron;
use stencil_sim::Machine;

/// Plans, verifies, and simulates one benchmark at a scaled size,
/// returning (outputs, iterations).
fn full_stack(bench: &Benchmark, max_cells: u64) -> (u64, u64) {
    let extents = scaled_extents(bench, max_cells);
    let spec = bench.spec_for(&extents).expect("spec");
    let analysis = ReuseAnalysis::of(&spec).expect("analysis");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");

    let report = verify_plan(&plan, &analysis);
    assert!(report.is_optimal(), "{}: {report}", bench.name());
    assert_eq!(
        plan.bank_count(),
        bench.window().len() - 1,
        "{}",
        bench.name()
    );

    let mut machine = Machine::new(&plan).expect("machine");
    let stats = machine.run(50_000_000).expect("run");
    assert!(
        stats.fully_pipelined(),
        "{}: II {}",
        bench.name(),
        stats.steady_ii
    );
    assert!(
        stats.chains[0].occupancy_within_capacity(),
        "{}: overflow",
        bench.name()
    );
    assert!(
        stats.chains[0].occupancy_reaches_capacity(),
        "{}: buffer oversized (occupancy {:?} vs capacity {:?})",
        bench.name(),
        stats.chains[0].fifo_max_occupancy,
        stats.chains[0].fifo_capacity
    );
    (stats.outputs, analysis.iteration_count())
}

#[test]
fn paper_suite_full_stack() {
    for bench in paper_suite() {
        let (outputs, iterations) = full_stack(&bench, 8_192);
        assert_eq!(outputs, iterations, "{}", bench.name());
    }
}

#[test]
fn extra_suite_full_stack() {
    for bench in extra_suite() {
        let (outputs, iterations) = full_stack(&bench, 8_192);
        assert_eq!(outputs, iterations, "{}", bench.name());
    }
}

#[test]
fn accelerated_values_match_golden_denoise() {
    let bench = stencil_kernels::denoise();
    let extents = [24i64, 32];
    let image = GridValues::from_fn(&Polyhedron::grid(&extents), |p| {
        ((p[0] * 31 + p[1] * 17) % 97) as f64 * 0.5 + 10.0
    })
    .expect("grid");
    let golden = run_golden(&bench, &extents, &image).expect("golden");

    let plan = MemorySystemPlan::generate(&bench.spec_for(&extents).expect("spec")).expect("plan");
    let mut machine = Machine::new(&plan).expect("machine");
    let port_offsets = machine.port_offsets(0).to_vec();
    let mut accelerated = Vec::new();
    while !machine.is_done() {
        machine.step().expect("step");
        if let Some(fire) = machine.last_fire() {
            let values: Vec<f64> = fire.ports[0]
                .iter()
                .map(|e| image.value_by_rank(e.id()).expect("rank"))
                .collect();
            let ordered = bench.reorder_ports(&port_offsets, &values);
            accelerated.push(bench.compute(&ordered));
        }
    }
    assert_eq!(golden, accelerated, "accelerator must be bit-exact");
}

#[test]
fn accelerated_values_match_golden_segmentation_3d() {
    let bench = stencil_kernels::segmentation_3d();
    let extents = [10i64, 10, 10];
    let volume = GridValues::from_fn(&Polyhedron::grid(&extents), |p| {
        ((p[0] * 131 + p[1] * 37 + p[2] * 7) % 53) as f64 - 26.0
    })
    .expect("grid");
    let golden = run_golden(&bench, &extents, &volume).expect("golden");

    let plan = MemorySystemPlan::generate(&bench.spec_for(&extents).expect("spec")).expect("plan");
    let mut machine = Machine::new(&plan).expect("machine");
    let port_offsets = machine.port_offsets(0).to_vec();
    let mut accelerated = Vec::new();
    while !machine.is_done() {
        machine.step().expect("step");
        if let Some(fire) = machine.last_fire() {
            let values: Vec<f64> = fire.ports[0]
                .iter()
                .map(|e| volume.value_by_rank(e.id()).expect("rank"))
                .collect();
            let ordered = bench.reorder_ports(&port_offsets, &values);
            accelerated.push(bench.compute(&ordered));
        }
    }
    assert_eq!(golden, accelerated);
}

#[test]
fn tradeoff_configurations_remain_correct() {
    let bench = stencil_kernels::denoise();
    let extents = [16i64, 20];
    let plan = MemorySystemPlan::generate(&bench.spec_for(&extents).expect("spec")).expect("plan");
    let full_outputs = Machine::new(&plan)
        .expect("machine")
        .run(1_000_000)
        .expect("run")
        .outputs;
    for streams in 1..=bench.window().len() {
        let traded = plan.with_offchip_streams(streams).expect("tradeoff");
        let stats = Machine::new(&traded)
            .expect("machine")
            .run(1_000_000)
            .expect("run");
        assert_eq!(stats.outputs, full_outputs, "{streams} streams");
        assert!(stats.fully_pipelined(), "{streams} streams");
    }
}

#[test]
fn skewed_grid_full_stack() {
    let spec = skewed_denoise(24, 16).expect("spec");
    let analysis = ReuseAnalysis::of(&spec).expect("analysis");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let report = verify_plan(&plan, &analysis);
    assert!(report.deadlock_free());
    assert!(report.banks_optimal());
    let stats = Machine::new(&plan)
        .expect("machine")
        .run(10_000_000)
        .expect("run");
    assert_eq!(stats.outputs, analysis.iteration_count());
    assert!(stats.chains[0].occupancy_within_capacity());
}

#[test]
fn multi_array_accelerator_full_stack() {
    use stencil_core::{compile, ArrayAccesses, StencilProgram};
    use stencil_polyhedral::Point;

    let program = StencilProgram {
        name: "rician_step".to_owned(),
        iteration_domain: Polyhedron::rect(&[(1, 22), (1, 30)]),
        arrays: vec![
            ArrayAccesses::new(
                "u",
                vec![
                    Point::new(&[-1, 0]),
                    Point::new(&[0, -1]),
                    Point::new(&[0, 1]),
                    Point::new(&[1, 0]),
                ],
            ),
            ArrayAccesses::new("f", vec![Point::new(&[0, 0])]),
        ],
    };
    let acc = compile(&program).expect("compile");
    assert_eq!(acc.bank_count(), 3);
    let stats = Machine::for_accelerator(&acc)
        .expect("machine")
        .run(1_000_000)
        .expect("run");
    assert_eq!(stats.outputs, 22 * 30);
    assert!(stats.fully_pipelined());
}
