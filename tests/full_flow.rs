//! The complete automation flow, end to end and cross-crate:
//! specification → analysis → plan → Verilog + testbench → simulated
//! equivalence, plus deep pipelines and the modulo-scheduled
//! alternative across the whole suite.

use stencil_core::{MappingPolicy, MemorySystemPlan, ModuloSchedulePlan, ReuseAnalysis};
use stencil_kernels::{accelerate, extra_suite, paper_suite, run_golden, GridValues};
use stencil_polyhedral::Polyhedron;
use stencil_rtl::generate;
use stencil_sim::{AcceleratorPipeline, Machine, ModuloMachine};

/// Every benchmark (paper + extras) flows through RTL generation with a
/// lint-clean bundle whose structure matches the plan.
#[test]
fn rtl_generation_covers_every_benchmark() {
    for bench in paper_suite().into_iter().chain(extra_suite()) {
        let spec = bench.spec().expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let bundle = generate(&plan).expect("rtl");
        assert!(
            bundle.lint().is_empty(),
            "{}: {:?}",
            bench.name(),
            bundle.lint()
        );
        // Top + splitter + fifo + 3 per reference + testbench + kernel
        // + accelerator top.
        assert_eq!(
            bundle.files().len(),
            6 + 3 * bench.window().len(),
            "{}",
            bench.name()
        );
        let top = &bundle.files()[0].contents;
        // Every non-uniform FIFO depth appears as an instance parameter.
        for cap in plan.fifo_capacities() {
            assert!(
                top.contains(&format!(".DEPTH({})", cap.max(1))),
                "{}: missing DEPTH({cap})",
                bench.name()
            );
        }
    }
}

/// The modulo-scheduled alternative produces cycle-identical executions
/// to the streaming machine on every (rectangular) benchmark.
#[test]
fn modulo_equivalence_across_the_suite() {
    for bench in paper_suite() {
        let extents: Vec<i64> = match bench.dims() {
            2 => vec![18, 22],
            _ => vec![9, 9, 9],
        };
        let spec = bench.spec_for(&extents).expect("spec");
        let analysis = ReuseAnalysis::of(&spec).expect("analysis");
        let mplan = ModuloSchedulePlan::try_from_analysis(&analysis, &MappingPolicy::default())
            .expect("rectangular");
        let mstats = ModuloMachine::new(&mplan, spec.iteration_domain(), analysis.input_domain())
            .expect("machine")
            .run(10_000_000)
            .expect("run");
        let sstats = Machine::new(&MemorySystemPlan::generate(&spec).expect("plan"))
            .expect("machine")
            .run(10_000_000)
            .expect("run");
        assert_eq!(mstats.outputs, sstats.outputs, "{}", bench.name());
        assert_eq!(mstats.cycles, sstats.cycles, "{}", bench.name());
    }
}

/// Extras (including the every-storage-tier HIGH_ORDER_2D and the
/// lopsided ASYMMETRIC_2D) are bit-exact against golden software.
#[test]
fn extras_accelerated_bit_exact() {
    for bench in extra_suite() {
        let extents: Vec<i64> = match bench.dims() {
            1 => vec![96],
            _ => vec![16, 18],
        };
        let grid = GridValues::from_fn(&Polyhedron::grid(&extents), |p| {
            p.as_slice()
                .iter()
                .map(|&c| (c * 13 % 31) as f64)
                .sum::<f64>()
                + 2.0
        })
        .expect("grid");
        let run = accelerate(&bench, &extents, &grid).expect("accelerate");
        let golden = run_golden(&bench, &extents, &grid).expect("golden");
        assert_eq!(run.outputs, golden, "{}", bench.name());
        assert!(run.stats.fully_pipelined(), "{}", bench.name());
    }
}

/// A deep (8-stage) pipeline of chained accelerators still overlaps
/// completely and needs only unit skid buffers at each boundary.
#[test]
fn eight_stage_pipeline() {
    use stencil_core::StencilSpec;
    use stencil_polyhedral::Point;
    let (r, c) = (40i64, 48i64);
    let cross = vec![
        Point::new(&[-1, 0]),
        Point::new(&[0, -1]),
        Point::new(&[0, 0]),
        Point::new(&[0, 1]),
        Point::new(&[1, 0]),
    ];
    let mut stages = Vec::new();
    for k in 0..8i64 {
        let spec = StencilSpec::new(
            format!("s{k}"),
            Polyhedron::rect(&[(1 + k, r - 2 - k), (1 + k, c - 2 - k)]),
            cross.clone(),
        )
        .expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        stages.push(if k == 0 {
            Machine::new(&plan).expect("machine")
        } else {
            Machine::with_external_input(&plan).expect("machine")
        });
    }
    let mut p = AcceleratorPipeline::new(stages).expect("pipeline");
    let stats = p.run(10_000_000).expect("run");
    assert_eq!(stats.final_outputs(), ((r - 16) * (c - 16)) as u64);
    assert!(stats.cycles < (r * c) as u64 + 8 * (3 * c as u64 + 32));
    assert!(stats.forward_backlogs.iter().all(|&b| b <= 4));
}

/// HIGH_ORDER_2D exercises all three storage tiers in one plan.
#[test]
fn high_order_uses_every_storage_tier() {
    use stencil_core::{Feed, StorageKind};
    let bench = stencil_kernels::high_order_2d();
    let plan = MemorySystemPlan::generate(&bench.spec().expect("spec")).expect("plan");
    let mut kinds = std::collections::BTreeSet::new();
    for feed in plan.feeds() {
        if let Feed::Fifo { storage, .. } = feed {
            kinds.insert(format!("{storage}"));
        }
    }
    assert!(kinds.contains("register"), "{kinds:?}");
    assert!(kinds.contains("BRAM"), "{kinds:?}");
    let _ = StorageKind::ShiftRegister; // tier existence is policy-dependent
    assert_eq!(plan.bank_count(), 8);
}
