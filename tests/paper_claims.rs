//! The paper's quantitative claims, checked table by table and figure
//! by figure. These are the assertions EXPERIMENTS.md reports against.

use stencil_core::MemorySystemPlan;
use stencil_fpga::Table5;
use stencil_kernels::{bicubic, denoise, paper_suite, rician, segmentation_3d};
use stencil_uniform::{bank_count_vs_row_size, linear_cyclic, multidim_cyclic, unpartitioned};

/// §2.3 / Table 2: the DENOISE example's exact numbers.
#[test]
fn table2_denoise_exact() {
    let plan = MemorySystemPlan::generate(&denoise().spec().expect("spec")).expect("plan");
    assert_eq!(plan.fifo_capacities(), vec![1023, 1, 1, 1023]);
    assert_eq!(plan.total_buffer_size(), 2048);
    assert_eq!(plan.min_total_size(), 2048);
    assert_eq!(plan.bank_count(), 4);
    assert_eq!(plan.target_ii(), 1);
}

/// Fig. 5: the bank count of [5] varies with row size for the constant
/// 5-point window, dipping to 5 but exceeding it for many sizes; ours
/// stays at 4.
#[test]
fn fig5_linear_cyclic_varies() {
    let window = denoise().window().to_vec();
    let sweep = bank_count_vs_row_size(&window, 768, 1018..=1032);
    let min = *sweep.iter().map(|(_, b)| b).min().expect("non-empty");
    let max = *sweep.iter().map(|(_, b)| b).max().expect("non-empty");
    assert_eq!(min, 5);
    assert!(max > 5);
    // The paper's specific anchor: at the 1024-wide grid of Fig. 2,
    // plain cyclic cannot do 5 banks.
    assert!(linear_cyclic(&window, &[768, 1024]).banks > 5);
}

/// Fig. 6: windows where uniform partitioning needs more banks than
/// references — [8] needs 5, 5, 20; ours 3, 3, 18.
#[test]
fn fig6_hard_windows_exact() {
    for (bench, base_banks) in [(bicubic(), 5), (rician(), 5), (segmentation_3d(), 20)] {
        let part = multidim_cyclic(bench.window(), bench.extents());
        assert_eq!(part.banks, base_banks, "{}", bench.name());
        let plan = MemorySystemPlan::generate(&bench.spec().expect("spec")).expect("plan");
        assert_eq!(
            plan.bank_count(),
            bench.window().len() - 1,
            "{}",
            bench.name()
        );
    }
}

/// Table 4: for every benchmark, the original II equals the window
/// size, both methods target II = 1, ours uses strictly fewer banks and
/// no more total buffer than [8].
#[test]
fn table4_partitioning_dominance() {
    for bench in paper_suite() {
        let spec = bench.spec().expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let base = multidim_cyclic(bench.window(), bench.extents());
        let orig = unpartitioned(bench.window(), bench.extents());

        assert_eq!(orig.ii, bench.window().len(), "{}", bench.name());
        assert_eq!(base.ii, 1, "{}", bench.name());
        assert_eq!(plan.target_ii(), 1, "{}", bench.name());
        assert!(plan.bank_count() < base.banks, "{}", bench.name());
        assert!(
            plan.total_buffer_size() <= base.total_size,
            "{}: {} > {}",
            bench.name(),
            plan.total_buffer_size(),
            base.total_size
        );
        // Ours is at the theoretical minimum for both metrics.
        assert_eq!(plan.bank_count(), bench.window().len() - 1);
        assert_eq!(plan.total_buffer_size(), plan.min_total_size());
    }
}

/// Table 5 (synthetic model): ours needs fewer BRAMs and slices, zero
/// DSPs, and closes timing with more slack, on every benchmark.
#[test]
fn table5_resource_dominance() {
    let table = Table5::build(&paper_suite()).expect("table");
    for (name, row) in table.names.iter().zip(&table.rows) {
        assert!(row.ours.bram18k < row.baseline.bram18k, "{name}");
        assert!(row.ours.slices() < row.baseline.slices(), "{name}");
        assert_eq!(row.ours.dsps, 0, "{name}");
        assert!(row.baseline.dsps > 0, "{name}");
        assert!(row.ours.cp_ns < row.baseline.cp_ns, "{name}");
        assert!(row.baseline.cp_ns <= 5.0, "{name}: must meet 200 MHz");
    }
    let (bram_pct, slice_pct, dsp_pct) = table.average_pct();
    assert!(bram_pct < 80.0, "average BRAM {bram_pct:.1}% (paper: 34%)");
    assert!(
        slice_pct < 90.0,
        "average slices {slice_pct:.1}% (paper: 75%)"
    );
    assert_eq!(dsp_pct, 0.0, "paper: DSPs eliminated");
}

/// Fig. 15: the design curve is monotone non-increasing, spans from the
/// full minimum buffer down to zero... (the last FIFO of capacity 1 is
/// traded at n streams), and shows the three phases (plane/row/element
/// buffers) for SEGMENTATION_3D.
#[test]
fn fig15_tradeoff_curve_shape() {
    let plan = MemorySystemPlan::generate(&segmentation_3d().spec().expect("spec")).expect("plan");
    let curve = plan.tradeoff_curve(19).expect("curve");
    assert_eq!(curve.len(), 19);
    assert_eq!(curve[0].total_buffer_size, plan.min_total_size());
    assert_eq!(curve[18].total_buffer_size, 0);
    for w in curve.windows(2) {
        assert!(w[1].total_buffer_size <= w[0].total_buffer_size);
        assert_eq!(w[1].bank_count + 1, w[0].bank_count);
    }
    // Three phases: the first two steps each drop a plane buffer
    // (thousands of elements), the next steps drop row buffers
    // (~grid width), the tail drops registers.
    let drop01 = curve[0].total_buffer_size - curve[1].total_buffer_size;
    let drop12 = curve[1].total_buffer_size - curve[2].total_buffer_size;
    assert!(drop01 > 1_000 && drop12 > 1_000, "plane-buffer phase");
    let drop23 = curve[2].total_buffer_size - curve[3].total_buffer_size;
    assert!((5..1_000).contains(&drop23), "row-buffer phase: {drop23}");
    let tail = curve[17].total_buffer_size - curve[18].total_buffer_size;
    assert!(tail <= 4, "register phase: {tail}");
}

/// §2.1's motivation: the original unpartitioned DENOISE suffers II = n
/// from port contention; the paper's design reaches the II = 1 target.
#[test]
fn original_ii_motivation() {
    let bench = denoise();
    assert_eq!(unpartitioned(bench.window(), bench.extents()).ii, 5);
    assert_eq!(bench.spec().expect("spec").original_ii(), 5);
}
