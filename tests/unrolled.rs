//! Integration test: the unrolled compiled sweep and the f32 datapath
//! across the paper benchmark suite.
//!
//! Two guarantees are certified here:
//!
//! * **f32 tolerance goldens.** For each of the six paper benchmarks,
//!   the f32 datapath's in-core outputs stay within the benchmark's
//!   declared relative tolerance (`Benchmark::f32_rtol`) of the f64
//!   reference — the narrowed datapath trades bits for throughput in a
//!   bounded, per-kernel-audited way, like fixed-point width selection
//!   in the paper's FPGA datapath.
//! * **Chunking invariance at f32.** Streaming the f32 run at chunk
//!   heights of one row, the halo window height, and the whole grid
//!   reproduces the in-core f32 bits exactly: the register program is
//!   bit-deterministic per output row, so reduced precision never
//!   becomes schedule-dependent.

use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_engine::{
    max_rel_error, CompiledKernel, Datapath, ExecMode, InputGrid, Session, SessionKernel,
    SliceSource, VecSink, DEFAULT_UNROLL,
};
use stencil_kernels::{paper_suite, Benchmark};

/// Deterministic pseudo-random input values for `n` grid cells. The
/// 0.1-granularity lattice is not exactly representable in f32, so
/// narrowing genuinely perturbs the arithmetic.
fn input_values(n: u64) -> Vec<f64> {
    let mut state = 0x0f32_0f32_u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) * 0.1 - 800.0
        })
        .collect()
}

/// Builds a scaled plan and matching input grid values for `bench`.
fn plan_and_values(bench: &Benchmark) -> (MemorySystemPlan, Vec<f64>) {
    let extents = scaled_extents(bench, 4_000);
    let spec = bench.spec_for(&extents).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let n = plan.input_domain().index().expect("input index").len();
    (plan, input_values(n))
}

/// The halo window height of `plan`'s stencil in the outermost
/// dimension — the natural streaming chunk unit.
fn halo_rows(bench: &Benchmark) -> u64 {
    let lo = bench.window().iter().map(|p| p[0]).min().expect("window");
    let hi = bench.window().iter().map(|p| p[0]).max().expect("window");
    (hi - lo + 1).unsigned_abs()
}

#[test]
fn f32_datapath_stays_within_declared_tolerance_on_paper_benchmarks() {
    for bench in paper_suite() {
        let (plan, in_vals) = plan_and_values(&bench);
        let in_idx = plan.input_domain().index().expect("input index");
        let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
        let kernel = CompiledKernel::for_benchmark(&bench)
            .expect("compile")
            .expect("every paper benchmark carries an expression");

        let f64_golden = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .run(&input)
            .expect("f64 in-core")
            .outputs;
        let f32_incore = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .datapath(Datapath::F32)
            .unroll(DEFAULT_UNROLL)
            .run(&input)
            .expect("f32 in-core")
            .outputs;

        let err = max_rel_error(&f32_incore, &f64_golden);
        assert!(
            err <= bench.f32_rtol(),
            "{}: f32 datapath drifted {err:.3e} from the f64 reference, \
             over the declared tolerance {:.1e}",
            bench.name(),
            bench.f32_rtol()
        );

        // Chunking invariance: one row, one halo window, whole grid.
        let grid_rows = plan
            .iteration_domain()
            .index()
            .expect("iteration index")
            .bounding_box()
            .map_or(1, |bb| (bb[0].1 - bb[0].0 + 1).unsigned_abs());
        for chunk in [1, halo_rows(&bench), grid_rows] {
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .datapath(Datapath::F32)
                .unroll(DEFAULT_UNROLL)
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .run_streaming(&mut source, &mut sink)
                .expect("f32 streaming");
            assert_eq!(
                sink.values,
                f32_incore,
                "{}: f32 streaming at chunk {} diverged from f32 in-core",
                bench.name(),
                chunk
            );
        }
    }
}

#[test]
fn unrolled_f64_sweep_is_bit_exact_on_paper_benchmarks() {
    for bench in paper_suite() {
        let (plan, in_vals) = plan_and_values(&bench);
        let in_idx = plan.input_domain().index().expect("input index");
        let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
        let compute = bench.compute_fn();
        let kernel = CompiledKernel::for_benchmark(&bench)
            .expect("compile")
            .expect("every paper benchmark carries an expression");

        let golden = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)
            .expect("closure in-core")
            .outputs;
        let unrolled = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .unroll(DEFAULT_UNROLL)
            .run(&input)
            .expect("unrolled in-core")
            .outputs;
        assert_eq!(
            unrolled,
            golden,
            "{}: unrolled f64 sweep diverged from the closure",
            bench.name()
        );
    }
}
