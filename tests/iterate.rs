//! Differential and property tests pinning `Session::iterate` and
//! `Session::iterate_until`.
//!
//! Three guarantees are certified here:
//!
//! * **Differential fidelity.** For every iteration-stable benchmark,
//!   `Session::iterate(T)` is bit-identical to T sequential fully
//!   materialised runs of the same kernel — in core and streaming at
//!   chunk heights {1, halo, whole grid}, with the closure and (where
//!   the benchmark carries an expression) compiled backends.
//! * **Residency safety.** For random grids, chunk heights, and step
//!   counts, a streaming iterate run's peak residency never exceeds
//!   the session's planned residency bound; degenerate requests (T=0,
//!   grids the ring erodes away) are clean errors, never panics.
//! * **Convergence determinism.** A contractive relaxation kernel
//!   converges under `iterate_until` with `converged=true`, steps
//!   within the cap, and an identical step count across the closure
//!   and compiled backends (their outputs are bit-identical by
//!   construction).

use proptest::prelude::*;
use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, Session, SessionKernel, SliceSource, VecSink,
};
use stencil_kernels::{extra_suite, paper_suite, Benchmark};
use stencil_polyhedral::{Point, Polyhedron};

/// Deterministic pseudo-random input values for `n` grid cells.
fn input_values(n: u64) -> Vec<f64> {
    let mut state = 0x00c0_ffee_u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 1024.0 - 8.0
        })
        .collect()
}

/// Per-dimension extents sized so the benchmark's iteration domain
/// survives `steps` erosions of its own window with interior to spare.
fn extents_for(bench: &Benchmark, steps: i64) -> Vec<i64> {
    (0..bench.dims())
        .map(|d| {
            let lo = bench.window().iter().map(|f| f[d]).min().unwrap().min(0);
            let hi = bench.window().iter().map(|f| f[d]).max().unwrap().max(0);
            (hi - lo) * (steps + 1) + 4
        })
        .collect()
}

/// The stage-0 halo height in rows: the window's vertical span.
fn halo_rows(bench: &Benchmark) -> u64 {
    let lo = bench.window().iter().map(|f| f[0]).min().unwrap().min(0);
    let hi = bench.window().iter().map(|f| f[0]).max().unwrap().max(0);
    (hi - lo + 1) as u64
}

/// The golden reference: `steps` sequential runs of the benchmark's
/// kernel, each step re-planned over the previous step's fully
/// materialised output grid.
fn sequential_steps(
    bench: &Benchmark,
    plan: &MemorySystemPlan,
    in_vals: &[f64],
    steps: usize,
) -> Vec<f64> {
    let compute = bench.compute_fn();
    let in_idx = plan.input_domain().index().expect("input index");
    let input = InputGrid::new(&in_idx, in_vals).expect("sized input");
    let mut cur = Session::new(plan)
        .kernel(SessionKernel::Closure(&compute))
        .run(&input)
        .expect("step 1")
        .outputs;
    let mut cur_plan = plan.clone();
    for k in 1..steps {
        let next = cur_plan
            .chain_next(format!("t{}", k + 1), bench.window())
            .expect("chained plan");
        let idx = next.input_domain().index().expect("input index");
        let grid = InputGrid::new(&idx, &cur).expect("sized intermediate");
        cur = Session::new(&next)
            .kernel(SessionKernel::Closure(&compute))
            .run(&grid)
            .expect("chained step")
            .outputs;
        cur_plan = next;
    }
    cur
}

/// Every iteration-stable benchmark across the paper and extra suites.
fn iteration_stable_suite() -> Vec<Benchmark> {
    paper_suite()
        .into_iter()
        .chain(extra_suite())
        .filter(Benchmark::iteration_stable)
        .collect()
}

#[test]
fn iterate_matches_sequential_runs_on_every_stable_benchmark() {
    for bench in iteration_stable_suite() {
        // 3-D rings at T=17 would need ~37^3 grids x 17 coupled stages;
        // cap depth by dimensionality to keep the debug-mode matrix
        // tractable while 1-D/2-D benchmarks still exercise T=17.
        let depths: &[usize] = if bench.dims() >= 3 {
            &[1, 2, 5]
        } else {
            &[1, 2, 5, 17]
        };
        for &steps in depths {
            let extents = extents_for(&bench, steps as i64);
            let spec = bench.spec_for(&extents).expect("spec");
            let plan = MemorySystemPlan::generate(&spec).expect("plan");
            let in_idx = plan.input_domain().index().expect("input index");
            let in_vals = input_values(in_idx.len());
            let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
            let compute = bench.compute_fn();
            let golden = sequential_steps(&bench, &plan, &in_vals, steps);

            // In-core ring, closure backend.
            let run = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .iterate(steps)
                .expect("iterate")
                .run(&input)
                .expect("in-core iterate run");
            assert_eq!(run.outputs, golden, "{} T={steps}: in-core", bench.name());
            let it = run.report.iterate.expect("iterate report");
            assert_eq!(it.steps, steps as u64, "{} T={steps}", bench.name());

            // Streaming ring at {1, halo, whole grid} chunk heights.
            for chunk in [1u64, halo_rows(&bench), extents[0] as u64] {
                let session = Session::new(&plan)
                    .kernel(SessionKernel::Closure(&compute))
                    .mode(ExecMode::Streaming {
                        chunk_rows: Some(chunk),
                    })
                    .iterate(steps)
                    .expect("iterate");
                let planned = session
                    .planned_residency_bound(Some(chunk))
                    .expect("planned bound");
                let mut source = SliceSource::new(&in_vals);
                let mut sink = VecSink::new();
                let report = session
                    .run_streaming(&mut source, &mut sink)
                    .expect("streaming iterate run");
                assert_eq!(
                    sink.values,
                    golden,
                    "{} T={steps}: streaming chunk {chunk}",
                    bench.name()
                );
                assert!(report.within_residency_bound());
                assert!(
                    report.peak_resident <= planned,
                    "{} T={steps} chunk {chunk}: peak {} > planned {planned}",
                    bench.name(),
                    report.peak_resident
                );
            }

            // Compiled backend, where the benchmark carries an expression.
            let Some(kernel) = CompiledKernel::for_benchmark(&bench).expect("compile") else {
                continue;
            };
            let run = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .iterate(steps)
                .expect("iterate")
                .run(&input)
                .expect("compiled iterate run");
            assert_eq!(run.outputs, golden, "{} T={steps}: compiled", bench.name());

            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(halo_rows(&bench)),
                })
                .iterate(steps)
                .expect("iterate")
                .run_streaming(&mut source, &mut sink)
                .expect("compiled streaming iterate run");
            assert_eq!(
                sink.values,
                golden,
                "{} T={steps}: compiled streaming",
                bench.name()
            );
        }
    }
}

/// The 5-point DENOISE-shaped window used by the property tests.
fn window_5pt() -> Vec<Point> {
    vec![
        Point::new(&[-1, 0]),
        Point::new(&[0, -1]),
        Point::new(&[0, 0]),
        Point::new(&[0, 1]),
        Point::new(&[1, 0]),
    ]
}

fn plan_5pt(rows: i64, cols: i64) -> MemorySystemPlan {
    let spec = stencil_core::StencilSpec::new(
        "prop",
        Polyhedron::rect(&[(1, rows - 2), (1, cols - 2)]),
        window_5pt(),
    )
    .expect("spec");
    MemorySystemPlan::generate(&spec).expect("plan")
}

fn compute_5pt(w: &[f64]) -> f64 {
    w[2] + 0.25 * (w[0] + w[1] + w[3] + w[4] - 4.0 * w[2])
}

proptest! {
    /// A streaming iterate run never exceeds the session's planned
    /// residency bound — for any grid, chunk height, and step count
    /// the ring supports — and requests the ring cannot satisfy are
    /// clean errors, never panics.
    #[test]
    fn iterate_residency_is_bounded_and_degenerates_cleanly(
        rows in 6i64..30,
        cols in 6i64..30,
        steps in 0usize..9,
        chunk in 1u64..6,
    ) {
        let plan = plan_5pt(rows, cols);
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute_5pt))
            .mode(ExecMode::Streaming { chunk_rows: Some(chunk) })
            .iterate(steps);
        // The 5-point window erodes one ring per step: the (rows-2) x
        // (cols-2) iteration domain supports exactly this many steps.
        let supported = ((rows - 2).min(cols - 2) + 1) / 2;
        let Ok(session) = session else {
            // T=0 or a domain smaller than the ring needs: a clean
            // error is exactly the contract.
            prop_assert!(steps == 0 || steps as i64 > supported);
            return Ok(());
        };
        prop_assert!(steps as i64 <= supported);
        let planned = session.planned_residency_bound(Some(chunk)).expect("bound");
        let in_idx = plan.input_domain().index().expect("index");
        let in_vals = input_values(in_idx.len());
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        let report = session
            .run_streaming(&mut source, &mut sink)
            .expect("streaming run");
        prop_assert!(report.within_residency_bound());
        prop_assert!(
            report.peak_resident <= planned,
            "peak {} > planned {planned}", report.peak_resident
        );
        let it = report.iterate.expect("iterate report");
        prop_assert_eq!(it.steps, steps as u64);
        prop_assert_eq!(it.step_peaks.len(), steps);
        prop_assert!(it.observed_peak <= it.planned_peak);
    }

    /// A contractive Jacobi-style kernel (tap weights summing to 0.4,
    /// so deltas shrink geometrically) converges under `iterate_until`
    /// within the step cap, and the closure and compiled backends
    /// measure identical deltas — so they exit after the same step.
    #[test]
    fn iterate_until_converges_identically_across_backends(
        rows in 24i64..48,
        cols in 24i64..48,
        eps_exp in 1u32..3,
    ) {
        let plan = plan_5pt(rows, cols);
        let relax = |w: &[f64]| 0.2 * w[2] + 0.05 * (w[0] + w[1] + w[3] + w[4]);
        let in_idx = plan.input_domain().index().expect("index");
        // Scale inputs to O(10) so the geometric delta decay reaches
        // epsilon well inside the erosion-capped step budget.
        let in_vals: Vec<f64> = input_values(in_idx.len())
            .into_iter()
            .map(|v| v / 2048.0)
            .collect();
        let input = InputGrid::new(&in_idx, &in_vals).expect("input");
        let epsilon = 10f64.powi(-(eps_exp as i32));
        // Values contract by 2.5x per step, so the delta reaches 1e-2
        // from O(10) inputs within ~9 steps; the eroding ring caps how
        // many steps the grid supports (>= 12 at these sizes).
        let max_steps = (((rows - 2).min(cols - 2) + 1) / 2) as usize;

        let closure_run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&relax))
            .iterate_until(&input, epsilon, max_steps)
            .expect("closure iterate_until");
        let it = closure_run.report.iterate.clone().expect("iterate report");
        prop_assert!(it.converged, "no convergence in {} steps", max_steps);
        prop_assert!(it.steps <= max_steps as u64);
        prop_assert!(it.final_delta <= epsilon);

        let [t0, t1, t2, t3, t4] = stencil_kernels::KernelExpr::taps::<5>();
        let expr = 0.2 * t2 + 0.05 * (t0 + t1 + t3 + t4);
        let kernel = CompiledKernel::compile_checked(&expr, 5, &relax).expect("compile");
        let compiled_run = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .iterate_until(&input, epsilon, max_steps)
            .expect("compiled iterate_until");
        let it2 = compiled_run.report.iterate.clone().expect("iterate report");
        prop_assert_eq!(it2.steps, it.steps);
        prop_assert_eq!(it2.final_delta, it.final_delta);
        prop_assert_eq!(compiled_run.outputs, closure_run.outputs);
    }
}
