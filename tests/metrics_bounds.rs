//! Integration test: the paper's optimality bounds hold in the *live*
//! counters of every benchmark run, not just in the planner's algebra.
//!
//! For each suite benchmark (scaled so cycle-accurate simulation stays
//! fast) the machine runs with occupancy sampling on, and the telemetry
//! validator checks the full report:
//!
//! - every FIFO's occupancy high-water equals its planned Eq. 2
//!   capacity (max reuse distance between adjacent accesses),
//! - the summed steady occupancy equals the Section 2.3 minimum total
//!   buffer bound when linearity holds,
//! - zero steady-state stalls, i.e. II = 1 full pipelining,
//! - and the Appendix 9.4 bandwidth/memory tradeoff points obey the
//!   same bounds with multiple off-chip streams.

use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_engine::{ExecMode, InputGrid, Session, SessionKernel};
use stencil_kernels::{denoise, paper_suite};
use stencil_sim::Machine;
use stencil_telemetry::{validate_machine, validate_report, MachineMetrics, MetricsReport};

/// Simulates a scaled benchmark with telemetry enabled and returns the
/// machine's metrics.
fn instrumented_run(bench: &stencil_kernels::Benchmark, streams: usize) -> MachineMetrics {
    let extents = scaled_extents(bench, 6_000);
    let spec = bench.spec_for(&extents).unwrap();
    let plan = MemorySystemPlan::generate(&spec)
        .unwrap()
        .with_offchip_streams(streams)
        .unwrap();
    let mut machine = Machine::new(&plan).unwrap();
    machine.enable_occupancy_sampling();
    machine.run(1_u64 << 34).unwrap();

    let metrics = machine.metrics();
    // The validator's bounds come from the report itself; cross-check
    // its planned values against the plan that built the machine.
    let caps: Vec<u64> = metrics
        .chains
        .iter()
        .flat_map(|c| c.fifos.iter().map(|f| f.capacity))
        .collect();
    assert_eq!(caps, plan.fifo_capacities(), "{}", bench.name());
    assert_eq!(
        metrics.min_total_buffer,
        plan.min_total_size(),
        "{}",
        bench.name()
    );
    metrics
}

#[test]
fn every_benchmark_meets_the_paper_bounds_live() {
    for bench in paper_suite() {
        let metrics = instrumented_run(&bench, 1);
        let violations = validate_machine(&metrics);
        assert!(violations.is_empty(), "{}: {violations:?}", bench.name());

        // The bounds the validator certifies, restated explicitly.
        for chain in &metrics.chains {
            for fifo in &chain.fifos {
                assert_eq!(
                    fifo.high_water,
                    fifo.capacity.max(1),
                    "{}/{}: high-water must hit the Eq. 2 capacity",
                    bench.name(),
                    chain.array
                );
            }
        }
        if metrics.linearity_holds {
            let planned: u64 = metrics
                .chains
                .iter()
                .flat_map(|c| c.fifos.iter().map(|f| f.capacity))
                .sum();
            assert_eq!(
                planned,
                metrics.min_total_buffer,
                "{}: total buffering must meet the Section 2.3 minimum",
                bench.name()
            );
        }
        assert_eq!(metrics.steady_stalls(), 0, "{}: II = 1", bench.name());
    }
}

#[test]
fn tradeoff_points_meet_the_bounds_live() {
    // Appendix 9.4: trading off-chip bandwidth for on-chip memory must
    // not break capacity tightness or full pipelining.
    for streams in [2, 4] {
        let metrics = instrumented_run(&denoise(), streams);
        assert_eq!(metrics.offchip_streams, streams);
        let violations = validate_machine(&metrics);
        assert!(violations.is_empty(), "streams={streams}: {violations:?}");
        assert_eq!(metrics.steady_stalls(), 0, "streams={streams}");
    }
}

#[test]
fn combined_machine_and_engine_report_validates() {
    let bench = denoise();
    let extents = scaled_extents(&bench, 6_000);
    let spec = bench.spec_for(&extents).unwrap();
    let plan = MemorySystemPlan::generate(&spec).unwrap();

    let mut machine = Machine::new(&plan).unwrap();
    machine.enable_occupancy_sampling();
    machine.run(1_u64 << 34).unwrap();

    let in_idx = plan.input_domain().index().unwrap();
    let in_vals: Vec<f64> = (0..in_idx.len()).map(|r| r as f64 * 0.5).collect();
    let input = InputGrid::new(&in_idx, &in_vals).unwrap();
    let compute = stencil_kernels::default_compute();
    let run = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(ExecMode::Tiled { tiles: 3 })
        .telemetry(spec.name())
        .run(&input)
        .unwrap();
    let engine_report = run.report.stages[0].engine.as_ref().unwrap();

    let mut report = MetricsReport::new(spec.name());
    report.machine = Some(machine.metrics());
    report.engine = Some(engine_report.metrics());
    report.session = Some(run.report.metrics());
    let violations = validate_report(&report);
    assert!(violations.is_empty(), "{violations:?}");

    // The full report survives a JSON round trip bit-for-bit.
    let reparsed = MetricsReport::parse(&report.to_json()).unwrap();
    assert_eq!(reparsed, report);
    assert!(validate_report(&reparsed).is_empty());
}
