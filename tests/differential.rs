//! Differential verification: the parallel tiled engine, the golden
//! software executor, and the cycle-accurate machine must agree
//! bit-for-bit on every benchmark of the paper suite, at every band
//! count, with and without the Appendix 9.4 bandwidth tradeoff.
//!
//! Three independent implementations of the same semantics:
//!
//! * `stencil_kernels::run_golden` — direct nested-loop execution;
//! * `stencil_kernels::accelerate` — the simulated microarchitecture,
//!   element by element through FIFOs and filters;
//! * `stencil_engine::Session` — batched row loops over row-band
//!   tiles on worker threads.
//!
//! Any divergence between the three is a bug in one of them.

use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, KernelBackend, Session, SessionKernel, SliceSource,
    VecSink,
};
use stencil_kernels::{accelerate, paper_suite, run_golden, Benchmark, GridValues};
use stencil_polyhedral::Polyhedron;

/// Pseudo-random but deterministic grid values with varied magnitudes.
fn test_grid(extents: &[i64]) -> GridValues {
    let mut state = 0x1234_5678_9abc_def0u64;
    GridValues::from_fn(&Polyhedron::grid(extents), |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 25) as f64 - 128.0
    })
    .expect("grid")
}

fn small_extents(bench: &Benchmark) -> Vec<i64> {
    match bench.dims() {
        2 => vec![18, 22],
        _ => vec![9, 10, 11],
    }
}

/// The plan's input domain values drawn from `grid`, in rank order —
/// both the `InputGrid` buffer and the streaming source stream.
fn input_values(plan: &MemorySystemPlan, grid: &GridValues) -> Vec<f64> {
    let in_idx = plan.input_domain().index().expect("input index");
    let mut in_vals = Vec::with_capacity(in_idx.len() as usize);
    let mut c = in_idx.cursor();
    while let Some(p) = c.point(&in_idx) {
        in_vals.push(grid.value_at(&p).expect("grid covers input domain"));
        c.advance(&in_idx);
    }
    in_vals
}

/// Runs the engine for `bench` over `grid`, returning outputs.
fn engine_outputs(
    bench: &Benchmark,
    plan: &MemorySystemPlan,
    grid: &GridValues,
    mode: ExecMode,
    threads: usize,
) -> Vec<f64> {
    let in_idx = plan.input_domain().index().expect("input index");
    let in_vals = input_values(plan, grid);
    let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
    let compute = bench.compute_fn();
    Session::new(plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(mode)
        .threads(threads)
        .run(&input)
        .expect("engine run")
        .outputs
}

#[test]
fn engine_equals_golden_and_machine_on_paper_suite() {
    for bench in paper_suite() {
        let extents = small_extents(&bench);
        let grid = test_grid(&extents);

        let golden = run_golden(&bench, &extents, &grid).expect("golden");
        let machine = accelerate(&bench, &extents, &grid).expect("machine");
        assert_eq!(
            machine.outputs,
            golden,
            "machine vs golden: {}",
            bench.name()
        );

        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        for tiles in [1usize, 2, 3, 5] {
            let engine = engine_outputs(
                &bench,
                &plan,
                &grid,
                ExecMode::Tiled { tiles },
                tiles.min(4),
            );
            assert_eq!(
                engine,
                golden,
                "engine({} tiles) vs golden: {}",
                tiles,
                bench.name()
            );
        }
    }
}

#[test]
fn engine_follows_stream_sharding_of_tradeoff_plans() {
    // Appendix 9.4: a k-stream plan shards into k bands by default; the
    // result must stay bit-identical regardless of k.
    for bench in paper_suite() {
        let extents = small_extents(&bench);
        let grid = test_grid(&extents);
        let golden = run_golden(&bench, &extents, &grid).expect("golden");
        let spec = bench.spec_for(&extents).expect("spec");
        let base = MemorySystemPlan::generate(&spec).expect("plan");
        for streams in 1..=base.port_count().min(4) {
            let plan = base
                .clone()
                .with_offchip_streams(streams)
                .expect("tradeoff");
            let engine = engine_outputs(&bench, &plan, &grid, ExecMode::InCore, 0);
            assert_eq!(
                engine,
                golden,
                "engine({streams} streams) vs golden: {}",
                bench.name()
            );
        }
    }
}

#[test]
fn streaming_equals_plan_and_golden_on_paper_suite() {
    // The bounded-memory streaming path must be bit-exact with both the
    // in-core engine and the golden executor on every paper benchmark,
    // at the three characteristic chunk sizes: one row per band, one
    // halo height per band, and the whole grid in one band.
    for bench in paper_suite() {
        let extents = small_extents(&bench);
        let grid = test_grid(&extents);
        let golden = run_golden(&bench, &extents, &grid).expect("golden");
        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let in_core = engine_outputs(&bench, &plan, &grid, ExecMode::InCore, 0);
        assert_eq!(in_core, golden, "in-core vs golden: {}", bench.name());

        let in_vals = input_values(&plan, &grid);
        let compute = bench.compute_fn();
        let halo_rows = {
            let lo = bench.window().iter().map(|f| f[0]).min().unwrap();
            let hi = bench.window().iter().map(|f| f[0]).max().unwrap();
            (hi - lo + 1) as u64
        };
        let whole_grid = extents[0] as u64;
        for chunk in [1u64, halo_rows, whole_grid] {
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            let session = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .threads(2)
                .run_streaming(&mut source, &mut sink)
                .expect("streaming run");
            let report = session.stages[0].stream.as_ref().expect("stream report");
            assert_eq!(
                sink.values,
                golden,
                "streaming(chunk={chunk}) vs golden: {}",
                bench.name()
            );
            assert!(
                report.within_residency_bound(),
                "{} chunk={chunk}: peak {} > bound {}",
                bench.name(),
                report.peak_resident,
                report.resident_bound
            );
            assert_eq!(
                report.rows_out,
                spec.iteration_domain().index().unwrap().rows().len() as u64
            );
        }
    }
}

#[test]
fn compiled_backend_equals_closure_and_golden_on_paper_suite() {
    // The compiled row-sweep executor, the scalar bytecode interpreter
    // (backend forced to `Closure`), and the original closure engine
    // must all be bit-identical to the golden executor on every paper
    // benchmark — in-core and through the bounded-memory streaming
    // path at the three characteristic chunk sizes (one row, one halo
    // height, the whole grid).
    for bench in paper_suite() {
        let extents = small_extents(&bench);
        let grid = test_grid(&extents);
        let golden = run_golden(&bench, &extents, &grid).expect("golden");
        let spec = bench.spec_for(&extents).expect("spec");
        let plan = MemorySystemPlan::generate(&spec).expect("plan");
        let kernel = CompiledKernel::for_benchmark(&bench)
            .expect("compile")
            .expect("every paper benchmark carries an expression");

        let in_idx = plan.input_domain().index().expect("input index");
        let in_vals = input_values(&plan, &grid);
        let input = InputGrid::new(&in_idx, &in_vals).expect("input");

        for tiles in [1usize, 3] {
            let closure = engine_outputs(&bench, &plan, &grid, ExecMode::Tiled { tiles }, 2);
            assert_eq!(closure, golden, "closure vs golden: {}", bench.name());

            let swept = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .mode(ExecMode::Tiled { tiles })
                .threads(2)
                .run(&input)
                .expect("compiled run");
            assert_eq!(
                swept.outputs,
                golden,
                "compiled sweep({tiles} tiles) vs golden: {}",
                bench.name()
            );

            let scalar = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .backend(KernelBackend::Closure)
                .mode(ExecMode::Tiled { tiles })
                .threads(2)
                .run(&input)
                .expect("scalar run");
            assert_eq!(
                scalar.outputs,
                golden,
                "scalar bytecode({tiles} tiles) vs golden: {}",
                bench.name()
            );
        }

        let halo_rows = {
            let lo = bench.window().iter().map(|f| f[0]).min().unwrap();
            let hi = bench.window().iter().map(|f| f[0]).max().unwrap();
            (hi - lo + 1) as u64
        };
        for chunk in [1u64, halo_rows, extents[0] as u64] {
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            let report = Session::new(&plan)
                .kernel(SessionKernel::Compiled(&kernel))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .threads(2)
                .run_streaming(&mut source, &mut sink)
                .expect("compiled streaming run");
            assert_eq!(
                sink.values,
                golden,
                "compiled streaming(chunk={chunk}) vs golden: {}",
                bench.name()
            );
            assert!(
                report.within_residency_bound(),
                "{} chunk={chunk}: peak {} > bound {}",
                bench.name(),
                report.peak_resident,
                report.resident_bound
            );
        }
    }
}

#[test]
fn engine_report_is_consistent_with_machine_stats() {
    let bench = stencil_kernels::denoise();
    let extents = [24i64, 30];
    let grid = test_grid(&extents);
    let spec = bench.spec_for(&extents).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");

    let machine = accelerate(&bench, &extents, &grid).expect("machine");
    let tile_plan = plan.tile_plan(1).expect("tile plan");
    let in_idx = plan.input_domain().index().expect("input index");
    let mut in_vals = Vec::with_capacity(in_idx.len() as usize);
    let mut c = in_idx.cursor();
    while let Some(p) = c.point(&in_idx) {
        in_vals.push(grid.value_at(&p).expect("covered"));
        c.advance(&in_idx);
    }
    let input = InputGrid::new(&in_idx, &in_vals).expect("input");
    let compute = bench.compute_fn();
    let run = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .tile_plan(&tile_plan)
        .threads(1)
        .run(&input)
        .expect("engine");
    let report = run.report.stages[0].engine.as_ref().expect("engine report");

    // Same outputs, and the single-band halo equals the full input
    // domain the machine streams.
    assert_eq!(run.outputs, machine.outputs);
    assert_eq!(report.outputs, machine.stats.outputs);
    assert_eq!(report.tiles, 1);
    assert_eq!(report.halo_elements, in_idx.len());
    let streamed: u64 = machine
        .stats
        .chains
        .iter()
        .map(|chain| chain.inputs_streamed)
        .sum();
    assert_eq!(report.halo_elements, streamed);
}

#[test]
fn skewed_grid_stays_exact_and_batched() {
    // The skewed DENOISE variant has a non-rectangular (parallelogram)
    // iteration domain. Because the input domain is the convex dilation
    // of the iteration domain, every shifted row remains contiguous in
    // the input stream — the engine must stay on the batched fast path
    // while remaining bit-exact against a direct loop.
    let spec = stencil_kernels::skewed_denoise(16, 12).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let in_idx = plan.input_domain().index().expect("input index");
    let in_vals: Vec<f64> = (0..in_idx.len())
        .map(|r| ((r * 37 + 11) % 101) as f64 * 0.125 - 5.0)
        .collect();
    let input = InputGrid::new(&in_idx, &in_vals).expect("input");
    let compute = |w: &[f64]| w[2] + 0.2 * (w[0] + w[1] + w[3] + w[4]);

    // Direct nested-loop reference in the spec's declared offset order.
    let iter_idx = spec.iteration_domain().index().expect("iter index");
    let mut expect = Vec::with_capacity(iter_idx.len() as usize);
    let mut c = iter_idx.cursor();
    while let Some(p) = c.point(&iter_idx) {
        let window: Vec<f64> = spec
            .offsets()
            .iter()
            .map(|f| input.value_at(&(p + *f)).expect("halo covered"))
            .collect();
        expect.push(compute(&window));
        c.advance(&iter_idx);
    }

    for tiles in [1usize, 3, 4] {
        let run = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Tiled { tiles })
            .run(&input)
            .expect("engine run");
        assert_eq!(run.outputs, expect, "skewed engine({tiles} tiles)");
        let report = run.report.stages[0].engine.as_ref().expect("engine report");
        let gathers: u64 = report.per_tile.iter().map(|t| t.gather_rows).sum();
        assert_eq!(gathers, 0, "convex halos keep every row on the fast path");
    }
}
