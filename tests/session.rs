//! Integration test: the `Session` layer is the one execution surface
//! for every mode × backend combination, and temporal chaining is
//! faithful.
//!
//! Two guarantees are certified here:
//!
//! * **Cross-mode parity.** For every paper benchmark, every `Session`
//!   configuration (in-core, explicitly tiled, precomputed tile plan,
//!   streaming at several chunk heights — each with the closure and,
//!   where the benchmark carries an expression, the compiled backend)
//!   produces bit-identical outputs.
//! * **Chained fidelity.** A 2- and 3-stage `Session::then` pipeline
//!   over the DENOISE window — and heterogeneous chains mixing the
//!   5-point cross with the 9-tap BLUR3X3 box, including mixed
//!   per-stage backends — matches running each stage to completion
//!   sequentially with fully materialised intermediates, while the
//!   chained run's peak residency stays within the planned per-stage
//!   halo-window bound (Sec. 2.3) instead of holding whole grids.

use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, KernelBackend, Session, SessionKernel, SliceSource,
    VecSink,
};
use stencil_kernels::{blur3x3, denoise, paper_suite, Benchmark};

/// Deterministic pseudo-random input values for `n` grid cells.
fn input_values(n: u64) -> Vec<f64> {
    let mut state = 0x00c0_ffee_u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 1024.0 - 8.0
        })
        .collect()
}

/// Builds a scaled plan and matching input grid values for `bench`.
fn plan_and_values(bench: &Benchmark) -> (MemorySystemPlan, Vec<f64>) {
    let extents = scaled_extents(bench, 4_000);
    let spec = bench.spec_for(&extents).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let n = plan.input_domain().index().expect("input index").len();
    (plan, input_values(n))
}

#[test]
fn session_modes_and_backends_agree_on_every_benchmark() {
    for bench in paper_suite() {
        let (plan, in_vals) = plan_and_values(&bench);
        let in_idx = plan.input_domain().index().expect("input index");
        let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
        let compute = bench.compute_fn();

        // Default in-core run: the golden reference for every other
        // configuration of the same benchmark.
        let golden = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)
            .expect("session in-core")
            .outputs;

        // Explicit band tiling with worker threads.
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Tiled { tiles: 3 })
            .threads(2)
            .run(&input)
            .expect("session tiled");
        assert_eq!(session.outputs, golden, "{}: tiled", bench.name());

        // Precomputed tile plan via Session::tile_plan.
        let tile_plan = plan.tile_plan(2).expect("tile plan");
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .tile_plan(&tile_plan)
            .threads(2)
            .run(&input)
            .expect("session tile_plan");
        assert_eq!(session.outputs, golden, "{}: tile plan", bench.name());

        // Streaming through endpoints at several chunk heights.
        for chunk in [1u64, 5] {
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            let report = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .threads(2)
                .run_streaming(&mut source, &mut sink)
                .expect("session streaming");
            assert_eq!(
                sink.values,
                golden,
                "{}: streaming chunk {chunk}",
                bench.name()
            );
            assert!(report.within_residency_bound());
        }

        // Compiled backend, where the benchmark carries an expression.
        let Some(kernel) = CompiledKernel::for_benchmark(&bench).expect("compile") else {
            continue;
        };

        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Tiled { tiles: 2 })
            .run(&input)
            .expect("session compiled");
        assert_eq!(session.outputs, golden, "{}: compiled", bench.name());

        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .tile_plan(&tile_plan)
            .threads(2)
            .run(&input)
            .expect("session compiled tile_plan");
        assert_eq!(
            session.outputs,
            golden,
            "{}: compiled tile plan",
            bench.name()
        );

        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Streaming {
                chunk_rows: Some(3),
            })
            .run_streaming(&mut source, &mut sink)
            .expect("session compiled streaming");
        assert_eq!(sink.values, golden, "{}: compiled streaming", bench.name());
    }
}

/// Runs `stages` sequentially with fully materialised intermediates,
/// returning the final stage's outputs. This is the golden reference a
/// chained `Session` must reproduce bit-for-bit.
fn sequential_reference(
    bench: &Benchmark,
    plan: &MemorySystemPlan,
    in_vals: &[f64],
    stages: &[stencil_kernels::KernelStage],
) -> Vec<f64> {
    let compute = bench.compute_fn();
    let mut cur_plan = plan.clone();
    let mut cur_vals = in_vals.to_vec();
    let in_idx = cur_plan.input_domain().index().expect("input index");
    let input = InputGrid::new(&in_idx, &cur_vals).expect("sized input");
    cur_vals = Session::new(&cur_plan)
        .kernel(SessionKernel::Closure(&compute))
        .run(&input)
        .expect("stage 0")
        .outputs;
    for stage in stages {
        cur_plan = cur_plan
            .chain_next(stage.name(), stage.window())
            .expect("chained plan");
        let idx = cur_plan.input_domain().index().expect("input index");
        let input = InputGrid::new(&idx, &cur_vals).expect("sized intermediate");
        let stage_compute = stage.compute_fn();
        cur_vals = Session::new(&cur_plan)
            .kernel(SessionKernel::Closure(&stage_compute))
            .run(&input)
            .expect("chained stage")
            .outputs;
    }
    cur_vals
}

#[test]
fn chained_session_matches_sequential_stages() {
    let bench = denoise();
    let (plan, in_vals) = plan_and_values(&bench);
    let in_idx = plan.input_domain().index().expect("input index");
    let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
    let compute = bench.compute_fn();

    for depth in [1usize, 2] {
        let stages: Vec<_> = (0..depth).map(|_| bench.stage()).collect();
        let golden = sequential_reference(&bench, &plan, &in_vals, &stages);

        // In-core chained run.
        let mut session = Session::new(&plan).kernel(SessionKernel::Closure(&compute));
        for stage in &stages {
            session = session.then(stage).expect("then");
        }
        let run = session.run(&input).expect("chained in-core");
        assert_eq!(run.outputs, golden, "in-core chain depth {}", depth + 1);
        assert_eq!(run.report.stages.len(), depth + 1);

        // Streaming chained run: bounded residency, identical outputs.
        for chunk in [1u64, 4] {
            let mut session = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .threads(2);
            for stage in &stages {
                session = session.then(stage).expect("then");
            }
            let bound = session
                .planned_residency_bound(Some(chunk))
                .expect("planned bound");
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            let report = session
                .run_streaming(&mut source, &mut sink)
                .expect("chained streaming");
            assert_eq!(
                sink.values,
                golden,
                "streaming chain depth {} chunk {chunk}",
                depth + 1
            );
            assert!(
                report.peak_resident <= bound,
                "chain depth {} chunk {chunk}: peak {} > planned bound {bound}",
                depth + 1,
                report.peak_resident
            );
            assert!(report.within_residency_bound());
            // Adjacent stages hand rows off demand-driven: each stage
            // consumes exactly what its upstream produced.
            for pair in report.stages.windows(2) {
                let up = pair[0].stream.as_ref().expect("upstream stream report");
                let down = pair[1].stream.as_ref().expect("downstream stream report");
                assert_eq!(down.values_in, up.outputs, "hand-off conservation");
            }
        }
    }
}

#[test]
fn mixed_window_chains_match_sequential_stages() {
    // Heterogeneous temporal chains: the DENOISE 5-point cross feeding
    // the 9-tap BLUR3X3 box (depth 2), then DENOISE again (depth 3).
    // Each stage erodes by its *own* halo and buffers by its own reuse
    // distances; the fused run must still be bit-identical to fully
    // materialised sequential stages at every chunk height.
    let bench = denoise();
    let blur = blur3x3();
    let (plan, in_vals) = plan_and_values(&bench);
    let in_idx = plan.input_domain().index().expect("input index");
    let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
    let compute = bench.compute_fn();

    let depth2 = vec![blur.stage()];
    let depth3 = vec![blur.stage(), bench.stage()];
    for stages in [&depth2, &depth3] {
        let golden = sequential_reference(&bench, &plan, &in_vals, stages);

        // In-core chained run, with per-stage windows in the report.
        let mut session = Session::new(&plan).kernel(SessionKernel::Closure(&compute));
        for stage in stages.iter() {
            session = session.then(stage).expect("then");
        }
        let run = session.run(&input).expect("mixed in-core chain");
        assert_eq!(run.outputs, golden, "in-core depth {}", stages.len() + 1);
        assert_eq!(run.report.stages[0].window_taps, 5);
        assert_eq!(run.report.stages[1].window_taps, 9);
        assert_eq!(run.report.stages[1].window_rows, 3);

        // Streaming at chunk heights 1, the halo (3 rows), and a chunk
        // larger than the whole grid (clamped to an in-core-like band).
        for chunk in [1u64, 3, 4096] {
            let mut session = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .threads(2);
            for stage in stages.iter() {
                session = session.then(stage).expect("then");
            }
            let bound = session
                .planned_residency_bound(Some(chunk))
                .expect("planned bound");
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            let report = session
                .run_streaming(&mut source, &mut sink)
                .expect("mixed streaming chain");
            assert_eq!(
                sink.values,
                golden,
                "streaming depth {} chunk {chunk}",
                stages.len() + 1
            );
            assert!(
                report.peak_resident <= bound,
                "depth {} chunk {chunk}: peak {} > planned bound {bound}",
                stages.len() + 1,
                report.peak_resident
            );
            assert!(report.within_residency_bound());
            // Every stage's observed peak honours its own declared
            // bound, and the declared bounds sum to at least the
            // session peak (the stage-wise Sec. 2.3 decomposition).
            let mut summed = 0u64;
            for s in &report.stages {
                let sm = s.stream.as_ref().expect("stream report");
                assert!(sm.peak_resident <= s.resident_bound, "{}", s.label);
                summed += s.resident_bound;
            }
            assert!(report.peak_resident <= summed);
            for pair in report.stages.windows(2) {
                let up = pair[0].stream.as_ref().expect("upstream stream report");
                let down = pair[1].stream.as_ref().expect("downstream stream report");
                assert_eq!(down.values_in, up.outputs, "hand-off conservation");
            }
        }
    }

    // Per-stage backend override: the blur stage carries an expression,
    // so it can run compiled while the closure base stage cannot — a
    // mixed-backend pipeline that must stay bit-identical.
    let stage2 = blur.stage();
    let mut source = SliceSource::new(&in_vals);
    let mut sink = VecSink::new();
    let report = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .backend(KernelBackend::Closure)
        .mode(ExecMode::Streaming {
            chunk_rows: Some(1),
        })
        .then(&stage2)
        .expect("then")
        .stage_backend(KernelBackend::Compiled)
        .run_streaming(&mut source, &mut sink)
        .expect("mixed-backend chain");
    assert_eq!(
        sink.values,
        sequential_reference(&bench, &plan, &in_vals, &depth2)
    );
    assert_eq!(report.stages[0].backend, KernelBackend::Closure);
    assert_eq!(report.stages[1].backend, KernelBackend::Compiled);
}

#[test]
fn chained_session_residency_stays_near_one_stage() {
    // The point of chaining: a 2-stage pipeline's peak residency is
    // about two stages' halo windows, far below holding a full
    // intermediate grid in memory.
    let bench = denoise();
    let (plan, in_vals) = plan_and_values(&bench);
    let compute = bench.compute_fn();
    let stage2 = bench.stage();

    let session = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(ExecMode::Streaming {
            chunk_rows: Some(1),
        })
        .then(&stage2)
        .expect("then");
    let mut source = SliceSource::new(&in_vals);
    let mut sink = VecSink::new();
    let report = session
        .run_streaming(&mut source, &mut sink)
        .expect("chained streaming");

    let full_intermediate = plan
        .iteration_domain()
        .index()
        .expect("iteration index")
        .len();
    assert!(
        report.peak_resident < full_intermediate,
        "peak {} should undercut a materialised intermediate of {}",
        report.peak_resident,
        full_intermediate
    );
}
