//! Integration test: the `Session` layer is a drop-in replacement for
//! every legacy engine entry point, and temporal chaining is faithful.
//!
//! Two guarantees are certified here:
//!
//! * **Entry-point parity.** For every paper benchmark, a `Session`
//!   configured like each of the six deprecated entry points
//!   (`run_plan`, `run_tiled`, `run_plan_compiled`,
//!   `run_tiled_compiled`, `run_streaming`, `run_streaming_compiled`)
//!   produces bit-identical outputs. The legacy functions are now thin
//!   delegates, so this pins the delegation down forever.
//! * **Chained fidelity.** A 2- and 3-stage `Session::then` pipeline
//!   over the DENOISE window matches running each stage to completion
//!   sequentially with fully materialised intermediates, while the
//!   chained run's peak residency stays within the planned per-stage
//!   halo-window bound (Sec. 2.3) instead of holding whole grids.

use stencil_bench::scaled_extents;
use stencil_core::MemorySystemPlan;
#[allow(deprecated)]
use stencil_engine::{
    run_plan, run_plan_compiled, run_streaming, run_streaming_compiled, run_tiled,
    run_tiled_compiled, EngineConfig, StreamConfig,
};
use stencil_engine::{
    CompiledKernel, ExecMode, InputGrid, Session, SessionKernel, SliceSource, VecSink,
};
use stencil_kernels::{denoise, paper_suite, Benchmark};

/// Deterministic pseudo-random input values for `n` grid cells.
fn input_values(n: u64) -> Vec<f64> {
    let mut state = 0x00c0_ffee_u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f64) / 1024.0 - 8.0
        })
        .collect()
}

/// Builds a scaled plan and matching input grid values for `bench`.
fn plan_and_values(bench: &Benchmark) -> (MemorySystemPlan, Vec<f64>) {
    let extents = scaled_extents(bench, 4_000);
    let spec = bench.spec_for(&extents).expect("spec");
    let plan = MemorySystemPlan::generate(&spec).expect("plan");
    let n = plan.input_domain().index().expect("input index").len();
    (plan, input_values(n))
}

#[test]
fn session_matches_every_legacy_entry_point() {
    for bench in paper_suite() {
        let (plan, in_vals) = plan_and_values(&bench);
        let in_idx = plan.input_domain().index().expect("input index");
        let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
        let compute = bench.compute_fn();

        // run_plan (default in-core) vs Session InCore.
        #[allow(deprecated)]
        let legacy = run_plan(&plan, &input, &compute, &EngineConfig::default()).expect("run_plan");
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .run(&input)
            .expect("session in-core");
        assert_eq!(session.outputs, legacy.outputs, "{}: in-core", bench.name());

        // run_plan with explicit tiling vs Session Tiled.
        #[allow(deprecated)]
        let legacy = run_plan(
            &plan,
            &input,
            &compute,
            &EngineConfig::new().tiles(3).threads(2),
        )
        .expect("run_plan tiled");
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .mode(ExecMode::Tiled { tiles: 3 })
            .threads(2)
            .run(&input)
            .expect("session tiled");
        assert_eq!(session.outputs, legacy.outputs, "{}: tiled", bench.name());

        // run_tiled with a precomputed tile plan vs Session::tile_plan.
        let tile_plan = plan.tile_plan(2).expect("tile plan");
        #[allow(deprecated)]
        let legacy = run_tiled(&plan, &tile_plan, &input, &compute, 2).expect("run_tiled");
        let session = Session::new(&plan)
            .kernel(SessionKernel::Closure(&compute))
            .tile_plan(&tile_plan)
            .threads(2)
            .run(&input)
            .expect("session tile_plan");
        assert_eq!(
            session.outputs,
            legacy.outputs,
            "{}: tile plan",
            bench.name()
        );

        // run_streaming vs Session Streaming.
        for chunk in [1u64, 5] {
            #[allow(deprecated)]
            let legacy_out = {
                let mut source = SliceSource::new(&in_vals);
                let mut sink = VecSink::new();
                run_streaming(
                    &plan,
                    &mut source,
                    &mut sink,
                    &compute,
                    &StreamConfig::new().chunk_rows(chunk).threads(2),
                )
                .expect("run_streaming");
                sink.values
            };
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .threads(2)
                .run_streaming(&mut source, &mut sink)
                .expect("session streaming");
            assert_eq!(
                sink.values,
                legacy_out,
                "{}: streaming chunk {chunk}",
                bench.name()
            );
        }

        // Compiled entry points, where the benchmark carries an expression.
        let Some(kernel) = CompiledKernel::for_benchmark(&bench).expect("compile") else {
            continue;
        };

        #[allow(deprecated)]
        let legacy = run_plan_compiled(&plan, &input, &kernel, &EngineConfig::new().tiles(2))
            .expect("run_plan_compiled");
        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Tiled { tiles: 2 })
            .run(&input)
            .expect("session compiled");
        assert_eq!(
            session.outputs,
            legacy.outputs,
            "{}: compiled",
            bench.name()
        );

        #[allow(deprecated)]
        let legacy = run_tiled_compiled(
            &plan,
            &tile_plan,
            &input,
            &kernel,
            &EngineConfig::new().threads(2),
        )
        .expect("run_tiled_compiled");
        let session = Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .tile_plan(&tile_plan)
            .threads(2)
            .run(&input)
            .expect("session compiled tile_plan");
        assert_eq!(
            session.outputs,
            legacy.outputs,
            "{}: compiled tile plan",
            bench.name()
        );

        #[allow(deprecated)]
        let legacy_out = {
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            run_streaming_compiled(
                &plan,
                &mut source,
                &mut sink,
                &kernel,
                &StreamConfig::new().chunk_rows(3),
            )
            .expect("run_streaming_compiled");
            sink.values
        };
        let mut source = SliceSource::new(&in_vals);
        let mut sink = VecSink::new();
        Session::new(&plan)
            .kernel(SessionKernel::Compiled(&kernel))
            .mode(ExecMode::Streaming {
                chunk_rows: Some(3),
            })
            .run_streaming(&mut source, &mut sink)
            .expect("session compiled streaming");
        assert_eq!(
            sink.values,
            legacy_out,
            "{}: compiled streaming",
            bench.name()
        );
    }
}

/// Runs `stages` sequentially with fully materialised intermediates,
/// returning the final stage's outputs. This is the golden reference a
/// chained `Session` must reproduce bit-for-bit.
fn sequential_reference(
    bench: &Benchmark,
    plan: &MemorySystemPlan,
    in_vals: &[f64],
    stages: &[stencil_kernels::KernelStage],
) -> Vec<f64> {
    let compute = bench.compute_fn();
    let mut cur_plan = plan.clone();
    let mut cur_vals = in_vals.to_vec();
    let in_idx = cur_plan.input_domain().index().expect("input index");
    let input = InputGrid::new(&in_idx, &cur_vals).expect("sized input");
    cur_vals = Session::new(&cur_plan)
        .kernel(SessionKernel::Closure(&compute))
        .run(&input)
        .expect("stage 0")
        .outputs;
    for stage in stages {
        cur_plan = cur_plan
            .chain_next(stage.name(), stage.window())
            .expect("chained plan");
        let idx = cur_plan.input_domain().index().expect("input index");
        let input = InputGrid::new(&idx, &cur_vals).expect("sized intermediate");
        let stage_compute = stage.compute_fn();
        cur_vals = Session::new(&cur_plan)
            .kernel(SessionKernel::Closure(&stage_compute))
            .run(&input)
            .expect("chained stage")
            .outputs;
    }
    cur_vals
}

#[test]
fn chained_session_matches_sequential_stages() {
    let bench = denoise();
    let (plan, in_vals) = plan_and_values(&bench);
    let in_idx = plan.input_domain().index().expect("input index");
    let input = InputGrid::new(&in_idx, &in_vals).expect("sized input");
    let compute = bench.compute_fn();

    for depth in [1usize, 2] {
        let stages: Vec<_> = (0..depth).map(|_| bench.stage()).collect();
        let golden = sequential_reference(&bench, &plan, &in_vals, &stages);

        // In-core chained run.
        let mut session = Session::new(&plan).kernel(SessionKernel::Closure(&compute));
        for stage in &stages {
            session = session.then(stage).expect("then");
        }
        let run = session.run(&input).expect("chained in-core");
        assert_eq!(run.outputs, golden, "in-core chain depth {}", depth + 1);
        assert_eq!(run.report.stages.len(), depth + 1);

        // Streaming chained run: bounded residency, identical outputs.
        for chunk in [1u64, 4] {
            let mut session = Session::new(&plan)
                .kernel(SessionKernel::Closure(&compute))
                .mode(ExecMode::Streaming {
                    chunk_rows: Some(chunk),
                })
                .threads(2);
            for stage in &stages {
                session = session.then(stage).expect("then");
            }
            let bound = session
                .planned_residency_bound(Some(chunk))
                .expect("planned bound");
            let mut source = SliceSource::new(&in_vals);
            let mut sink = VecSink::new();
            let report = session
                .run_streaming(&mut source, &mut sink)
                .expect("chained streaming");
            assert_eq!(
                sink.values,
                golden,
                "streaming chain depth {} chunk {chunk}",
                depth + 1
            );
            assert!(
                report.peak_resident <= bound,
                "chain depth {} chunk {chunk}: peak {} > planned bound {bound}",
                depth + 1,
                report.peak_resident
            );
            assert!(report.within_residency_bound());
            // Adjacent stages hand rows off demand-driven: each stage
            // consumes exactly what its upstream produced.
            for pair in report.stages.windows(2) {
                let up = pair[0].stream.as_ref().expect("upstream stream report");
                let down = pair[1].stream.as_ref().expect("downstream stream report");
                assert_eq!(down.values_in, up.outputs, "hand-off conservation");
            }
        }
    }
}

#[test]
fn chained_session_residency_stays_near_one_stage() {
    // The point of chaining: a 2-stage pipeline's peak residency is
    // about two stages' halo windows, far below holding a full
    // intermediate grid in memory.
    let bench = denoise();
    let (plan, in_vals) = plan_and_values(&bench);
    let compute = bench.compute_fn();
    let stage2 = bench.stage();

    let session = Session::new(&plan)
        .kernel(SessionKernel::Closure(&compute))
        .mode(ExecMode::Streaming {
            chunk_rows: Some(1),
        })
        .then(&stage2)
        .expect("then");
    let mut source = SliceSource::new(&in_vals);
    let mut sink = VecSink::new();
    let report = session
        .run_streaming(&mut source, &mut sink)
        .expect("chained streaming");

    let full_intermediate = plan
        .iteration_domain()
        .index()
        .expect("iteration index")
        .len();
    assert!(
        report.peak_resident < full_intermediate,
        "peak {} should undercut a materialised intermediate of {}",
        report.peak_resident,
        full_intermediate
    );
}
