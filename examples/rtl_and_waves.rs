//! From specification to artifacts: generate the synthesizable Verilog
//! of a memory system (including a self-checking testbench) and a VCD
//! waveform of its simulated fill process — the complete deliverable of
//! the paper's automation flow (Fig. 11) for one kernel.
//!
//! ```text
//! cargo run --release -p stencil-bench --example rtl_and_waves
//! ```
//!
//! Outputs land in `target/flow_demo/`.

use std::fs;
use std::path::PathBuf;

use stencil_core::MemorySystemPlan;
use stencil_kernels::denoise;
use stencil_rtl::generate;
use stencil_sim::{trace_to_vcd, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = PathBuf::from("target/flow_demo");
    fs::create_dir_all(&out)?;

    let bench = denoise();
    let spec = bench.spec_for(&[32, 48])?;
    let plan = MemorySystemPlan::generate(&spec)?;
    println!("{plan}");

    // Verilog (with testbench).
    let bundle = generate(&plan)?;
    assert!(bundle.lint().is_empty());
    bundle.write_to_dir(&out)?;
    println!(
        "wrote {} Verilog files to {} (try: iverilog -o tb {}/*.v && ./tb)",
        bundle.files().len(),
        out.display(),
        out.display()
    );

    // VCD of the automatic fill (§3.4.1 / Table 3).
    let mut machine = Machine::new(&plan)?;
    machine.enable_trace(0, 256);
    let stats = machine.run(1_000_000)?;
    let trace = machine.trace(0).expect("trace enabled");
    let vcd = trace_to_vcd(trace, "denoise", 5.0);
    let vcd_path = out.join("denoise_fill.vcd");
    fs::write(&vcd_path, &vcd)?;
    println!(
        "wrote {} ({} bytes) — open in GTKWave to watch the buffers fill",
        vcd_path.display(),
        vcd.len()
    );
    println!(
        "{} outputs in {} cycles; first output at cycle {}",
        stats.outputs, stats.cycles, stats.fill_latency
    );
    assert!(stats.fully_pipelined());
    println!("rtl_and_waves OK");
    Ok(())
}
