//! Bandwidth/memory tradeoff (Appendix 9.4, Figs. 14–15): sweep the
//! number of off-chip streams for the 19-point SEGMENTATION_3D window,
//! print the design curve, and cycle-accurately validate three points
//! on it (every configuration stays correct and fully pipelined).
//!
//! ```text
//! cargo run --release -p stencil-bench --example bandwidth_tradeoff
//! ```

use stencil_core::MemorySystemPlan;
use stencil_kernels::segmentation_3d;
use stencil_sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = segmentation_3d();

    // Design-curve exploration happens at full problem size (planning is
    // cheap; only simulation needs the scaled grid below).
    let full = MemorySystemPlan::generate(&bench.spec()?)?;
    println!("SEGMENTATION_3D bandwidth/memory design curve (full 96^3 grid):");
    println!("{:>9} {:>14} {:>7}", "streams", "buffer elems", "banks");
    for p in full.tradeoff_curve(18)? {
        println!(
            "{:>9} {:>14} {:>7}",
            p.offchip_streams, p.total_buffer_size, p.bank_count
        );
    }

    // Validate selected points cycle-accurately on a 20^3 grid.
    let spec = bench.spec_for(&[20, 20, 20])?;
    let small = MemorySystemPlan::generate(&spec)?;
    println!();
    println!("cycle-accurate validation (20^3 grid):");
    for streams in [1usize, 2, 6, 19] {
        let plan = small.with_offchip_streams(streams)?;
        let stats = Machine::new(&plan)?.run(10_000_000)?;
        println!(
            "  {streams:>2} streams: buffer {:>6}, {} outputs in {} cycles, bandwidth-limited {}",
            plan.total_buffer_size(),
            stats.outputs,
            stats.cycles,
            stats.fully_pipelined()
        );
        assert!(stats.fully_pipelined());
    }
    println!("bandwidth_tradeoff OK: every point on the curve is a working design");
    Ok(())
}
