//! Quickstart: specify a stencil, generate the non-uniform memory
//! system, verify its optimality, and run it cycle-accurately.
//!
//! ```text
//! cargo run --release -p stencil-bench --example quickstart
//! ```

use stencil_core::{verify_plan, MemorySystemPlan, ReuseAnalysis, StencilSpec};
use stencil_polyhedral::{Point, Polyhedron};
use stencil_sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the stencil: the DENOISE kernel of the paper's Fig. 1,
    //    on a small grid so the simulation below finishes instantly.
    let spec = StencilSpec::new(
        "denoise",
        Polyhedron::rect(&[(1, 62), (1, 94)]),
        vec![
            Point::new(&[-1, 0]), // A[i-1][j]
            Point::new(&[0, -1]), // A[i][j-1]
            Point::new(&[0, 0]),  // A[i][j]
            Point::new(&[0, 1]),  // A[i][j+1]
            Point::new(&[1, 0]),  // A[i+1][j]
        ],
    )?;

    // 2. Generate the microarchitecture: n-1 non-uniformly sized reuse
    //    FIFOs chained by splitters and filters (the paper's Fig. 7).
    let plan = MemorySystemPlan::generate(&spec)?;
    println!("{plan}");

    // 3. Verify the paper's optimality claims mechanically.
    let analysis = ReuseAnalysis::of(&spec)?;
    let report = verify_plan(&plan, &analysis);
    println!("{report}");
    assert!(report.is_optimal());

    // 4. Run the design cycle-accurately and confirm full pipelining.
    let stats = Machine::new(&plan)?.run(1_000_000)?;
    println!();
    println!("{stats}");
    assert!(stats.fully_pipelined());
    assert!(stats.chains[0].occupancy_reaches_capacity());
    println!("quickstart OK: II = 1, buffers minimal and fully used");
    Ok(())
}
