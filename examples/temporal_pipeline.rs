//! Temporal pipelining: run T time steps of an iterative stencil as T
//! chained accelerators, each with its own minimal non-uniform memory
//! system — the alternative to fusing T steps into one huge window
//! (the §2.1 loop-fusion scenario), enabled by the single-stream
//! in/out interface of the microarchitecture (Appendix 9.3).
//!
//! ```text
//! cargo run --release -p stencil-bench --example temporal_pipeline
//! ```

use stencil_core::{MemorySystemPlan, StencilSpec};
use stencil_polyhedral::{Point, Polyhedron};
use stencil_sim::{AcceleratorPipeline, Machine};

fn cross() -> Vec<Point> {
    vec![
        Point::new(&[-1, 0]),
        Point::new(&[0, -1]),
        Point::new(&[0, 0]),
        Point::new(&[0, 1]),
        Point::new(&[1, 0]),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (r, c) = (96i64, 128i64);
    let depth = 6usize;

    let mut stages = Vec::new();
    for k in 0..depth as i64 {
        let spec = StencilSpec::new(
            format!("step{k}"),
            Polyhedron::rect(&[(1 + k, r - 2 - k), (1 + k, c - 2 - k)]),
            cross(),
        )?;
        let plan = MemorySystemPlan::generate(&spec)?;
        stages.push(if k == 0 {
            Machine::new(&plan)?
        } else {
            Machine::with_external_input(&plan)?
        });
    }
    let mut pipeline = AcceleratorPipeline::new(stages)?;
    let stats = pipeline.run(100_000_000)?;

    println!("temporal pipeline: {depth} DENOISE steps on a {r}x{c} frame");
    println!();
    for (k, s) in stats.stages.iter().enumerate() {
        println!(
            "  step {k}: {:>6} outputs, fill latency {:>4}",
            s.outputs, s.fill_latency
        );
    }
    println!();
    let one_pass = (r * c) as u64;
    let sequential = depth as u64 * one_pass;
    println!(
        "pipelined total: {} cycles (one stream pass = {one_pass}; \
         sequential {depth} passes = {sequential}; speedup {:.2}x)",
        stats.cycles,
        sequential as f64 / stats.cycles as f64
    );
    println!(
        "inter-stage skid buffers: {:?} elements (no frame buffers anywhere)",
        stats.forward_backlogs
    );
    assert!(stats.cycles < one_pass + depth as u64 * (3 * c as u64 + 32));
    assert!(stats.forward_backlogs.iter().all(|&b| b <= 4));
    println!("temporal_pipeline OK");
    Ok(())
}
