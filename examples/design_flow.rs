//! The full design-automation flow (§4, Fig. 11) on a multi-array
//! kernel, plus the system-integration benefits of Appendix 9.3: the
//! accelerator consumes a single burst-friendly stream per array, and
//! two accelerators can be chained with direct data forwarding because
//! each produces and consumes data in the same lexicographic order.
//!
//! ```text
//! cargo run --release -p stencil-bench --example design_flow
//! ```

use stencil_core::{compile, ArrayAccesses, StencilProgram};
use stencil_fpga::estimate_nonuniform;
use stencil_kernels::KernelOps;
use stencil_polyhedral::{Point, Polyhedron};
use stencil_sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A RICIAN-style kernel reading two arrays: the image estimate `u`
    // through a 4-point cross and the raw acquisition `f` at the
    // center. Each array gets its own independent memory system (§2.2).
    let program = StencilProgram {
        name: "rician_step".to_owned(),
        iteration_domain: Polyhedron::rect(&[(1, 46), (1, 62)]),
        arrays: vec![
            ArrayAccesses::new(
                "u",
                vec![
                    Point::new(&[-1, 0]),
                    Point::new(&[0, -1]),
                    Point::new(&[0, 1]),
                    Point::new(&[1, 0]),
                ],
            ),
            ArrayAccesses::new("f", vec![Point::new(&[0, 0])]),
        ],
    };

    // Left branch: polyhedral analysis -> microarchitecture instance.
    let accelerator = compile(&program)?;
    println!("{accelerator}");

    // Right branch stand-in: estimate the complete design's resources.
    let ops = KernelOps {
        adds: 4,
        muls: 3,
        divs: 1,
        sqrts: 1,
        ..KernelOps::default()
    };
    let mut total_bram = 0;
    for ms in &accelerator.memory_systems {
        let est = estimate_nonuniform(ms, ops);
        println!("array {}: {est}", ms.array());
        total_bram += est.bram18k;
    }
    println!("total BRAMs across memory systems: {total_bram}");

    // Integration: run the whole two-array accelerator cycle-accurately.
    let mut machine = Machine::for_accelerator(&accelerator)?;
    let stats = machine.run(10_000_000)?;
    println!();
    println!("{stats}");
    assert!(stats.fully_pipelined());

    // Appendix 9.3: accelerator chaining with direct forwarding,
    // co-simulated. A second smoothing stage consumes this kernel's
    // output domain; the measured forwarding backlog is the skid-buffer
    // depth the integration needs (vs a whole frame buffer).
    use stencil_core::{MemorySystemPlan, StencilSpec};
    use stencil_sim::ChainedAccelerators;
    let stage2 = StencilSpec::new(
        "smooth",
        Polyhedron::rect(&[(2, 45), (2, 61)]),
        vec![
            Point::new(&[-1, 0]),
            Point::new(&[0, -1]),
            Point::new(&[0, 0]),
            Point::new(&[0, 1]),
            Point::new(&[1, 0]),
        ],
    )?;
    let producer = Machine::for_accelerator(&accelerator)?;
    let consumer = Machine::with_external_input(&MemorySystemPlan::generate(&stage2)?)?;
    let mut chained = ChainedAccelerators::new(producer, consumer)?;
    let cstats = chained.run(10_000_000)?;
    println!(
        "chained second stage: {} outputs, forwarding skid buffer = {} elements \
         (a conventional inter-block memory would hold {})",
        cstats.consumer.outputs, cstats.max_forward_backlog, cstats.producer.outputs
    );
    assert!(cstats.max_forward_backlog <= 4);

    // And the flow's final artifact: synthesizable Verilog for each
    // memory system.
    let bundle = stencil_rtl::generate(&accelerator.memory_systems[0])?;
    assert!(bundle.lint().is_empty());
    println!(
        "generated {} Verilog modules for array {} ({} bytes total)",
        bundle.files().len(),
        accelerator.memory_systems[0].array(),
        bundle.concat().len()
    );
    println!("design_flow OK");
    Ok(())
}
