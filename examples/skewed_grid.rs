//! Skewed-grid execution (Fig. 9): after 45° loop skewing the wavefront
//! rows change length, so reuse distances change dynamically. The
//! distributed memory system adapts its FIFO occupancy automatically —
//! there is no controller to reprogram.
//!
//! ```text
//! cargo run --release -p stencil-bench --example skewed_grid
//! ```

use stencil_core::{verify_plan, MemorySystemPlan, ReuseAnalysis};
use stencil_kernels::skewed_denoise;
use stencil_sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = skewed_denoise(32, 20)?;
    let analysis = ReuseAnalysis::of(&spec)?;
    let plan = MemorySystemPlan::generate(&spec)?;

    println!("{plan}");
    println!(
        "linearity of max reuse distances holds on this skewed grid: {}",
        analysis.linearity_holds()
    );
    let report = verify_plan(&plan, &analysis);
    println!("{report}");
    assert!(report.deadlock_free());

    let mut machine = Machine::new(&plan)?;
    let mut min_occ = vec![u64::MAX; plan.fifo_capacities().len()];
    let mut max_occ = vec![0u64; plan.fifo_capacities().len()];
    let mut warmed = false;
    while !machine.is_done() {
        machine.step()?;
        // Track occupancy once the pipeline has produced something.
        if machine.outputs() > 0 {
            warmed = true;
        }
        if warmed {
            for (k, occ) in machine.fifo_occupancies(0).iter().enumerate() {
                min_occ[k] = min_occ[k].min(*occ);
                max_occ[k] = max_occ[k].max(*occ);
            }
        }
    }
    let stats = machine.stats();
    println!();
    for (k, cap) in plan.fifo_capacities().iter().enumerate() {
        println!(
            "FIFO_{k}: capacity {:>4}, observed occupancy {}..{}",
            cap, min_occ[k], max_occ[k]
        );
    }
    println!(
        "{} outputs in {} cycles; occupancy stayed within capacity: {}",
        stats.outputs,
        stats.cycles,
        stats.chains[0].occupancy_within_capacity()
    );
    assert!(stats.chains[0].occupancy_within_capacity());
    // The big FIFOs must actually have adapted (range, not a constant).
    let adapted = (0..min_occ.len()).any(|k| max_occ[k] > min_occ[k] + 1);
    assert!(adapted, "no dynamic adjustment observed");
    println!("skewed_grid OK: distributed modules adjusted reuse amounts automatically");
    Ok(())
}
