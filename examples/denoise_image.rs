//! End-to-end medical-image denoising: run the DENOISE benchmark
//! through the simulated accelerator with a real synthetic image,
//! computing output *values* from the kernel's fire records, and check
//! them bit-exactly against the golden software stencil.
//!
//! ```text
//! cargo run --release -p stencil-bench --example denoise_image
//! ```

use stencil_core::MemorySystemPlan;
use stencil_kernels::{denoise, run_golden, GridValues};
use stencil_polyhedral::Polyhedron;
use stencil_sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = denoise();
    let extents = [96i64, 128];

    // A synthetic noisy image: smooth gradient + deterministic speckle.
    let image = GridValues::from_fn(&Polyhedron::grid(&extents), |p| {
        let (i, j) = (p[0] as f64, p[1] as f64);
        let base = (i / 12.0).sin() * 40.0 + (j / 17.0).cos() * 40.0 + 128.0;
        let speckle = (((p[0] * 7919 + p[1] * 104729) % 64) - 32) as f64 * 0.5;
        base + speckle
    })?;

    // Golden: the original loop nest run in software.
    let golden = run_golden(&bench, &extents, &image)?;

    // Accelerated: drive the cycle-accurate machine; on each kernel
    // firing, map the consumed element ranks back to pixel values and
    // apply the same datapath.
    let spec = bench.spec_for(&extents)?;
    let plan = MemorySystemPlan::generate(&spec)?;
    let mut machine = Machine::new(&plan)?;
    let port_offsets = machine.port_offsets(0).to_vec();
    let mut accelerated = Vec::with_capacity(golden.len());
    while !machine.is_done() {
        machine.step()?;
        if let Some(fire) = machine.last_fire() {
            let values: Vec<f64> = fire.ports[0]
                .iter()
                .map(|e| image.value_by_rank(e.id()).expect("rank in grid"))
                .collect();
            let ordered = bench.reorder_ports(&port_offsets, &values);
            accelerated.push(bench.compute(&ordered));
        }
    }
    let stats = machine.stats();

    // Compare bit-exactly.
    assert_eq!(golden.len(), accelerated.len());
    let mut max_err = 0.0f64;
    for (g, a) in golden.iter().zip(&accelerated) {
        max_err = max_err.max((g - a).abs());
    }
    println!(
        "denoised {} pixels in {} cycles (fill {}, steady II {:.4})",
        stats.outputs, stats.cycles, stats.fill_latency, stats.steady_ii
    );
    println!("max |golden - accelerated| = {max_err:e}");
    assert_eq!(max_err, 0.0, "accelerator must be bit-exact");

    // Show the denoising actually did something: speckle energy drops.
    let input_var = variance_of_laplacian(&image, &extents);
    let out_grid = GridValues::from_fn(&bench.iteration_domain_for(&extents), |p| {
        let idx = bench.iteration_domain_for(&extents).index().expect("index");
        accelerated[idx.rank_lt(p) as usize]
    })?;
    let output_var = variance_of_laplacian(&out_grid, &extents);
    println!("high-frequency energy: input {input_var:.2} -> output {output_var:.2}");
    assert!(output_var < input_var, "denoising must reduce speckle");
    println!("denoise_image OK: bit-exact vs golden, speckle reduced");
    Ok(())
}

/// Mean squared discrete Laplacian over interior points — a proxy for
/// speckle energy.
fn variance_of_laplacian(grid: &GridValues, extents: &[i64]) -> f64 {
    use stencil_polyhedral::Point;
    let mut acc = 0.0;
    let mut n = 0u64;
    for i in 2..extents[0] - 2 {
        for j in 2..extents[1] - 2 {
            let v = |di: i64, dj: i64| grid.value_at(&Point::new(&[i + di, j + dj])).unwrap_or(0.0);
            let lap = v(-1, 0) + v(1, 0) + v(0, -1) + v(0, 1) - 4.0 * v(0, 0);
            acc += lap * lap;
            n += 1;
        }
    }
    acc / n as f64
}
